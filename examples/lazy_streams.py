"""Compiling laziness away: the LAZY workload.

The LAZY interpreter passes arguments as thunks and builds lazy pairs, so
LAZY programs work with infinite streams.  Specializing the interpreter to
the primes-sieve program produces a residual program in which the
*interpretation* of laziness is gone but the laziness itself survives as
real closures — compiled thunks — which the object-code backend turns into
``MAKE_CLOSURE`` instructions over nested templates.

Run:  python examples/lazy_streams.py
"""

import time

from repro.lang import Lam, unparse_program, walk
from repro.rtcg import make_generating_extension
from repro.sexp import write
from repro.workloads import (
    LAZY_SIGNATURE,
    lazy_interpreter,
    lazy_primes_program,
    run_lazy,
)


def main() -> None:
    gen = make_generating_extension(lazy_interpreter(), LAZY_SIGNATURE)
    primes = lazy_primes_program()

    residual = gen.to_source([primes])
    n_lambdas = sum(
        isinstance(n, Lam)
        for d in residual.program.defs
        for n in walk(d.body)
    )
    print(
        f"residual program: {len(residual.program.defs)} definitions,"
        f" {n_lambdas} residual thunks (closures)"
    )

    compiled = gen.to_object_code([primes])
    print("\nfirst six primes, from compiled object code:")
    print(" ", [compiled.run([i]) for i in range(6)])

    # Check against direct interpretation, and time both.
    k = 5
    t0 = time.perf_counter()
    direct = run_lazy(primes, k)
    interpreted = time.perf_counter() - t0
    t0 = time.perf_counter()
    fast = compiled.run([k])
    specialized = time.perf_counter() - t0
    assert direct == fast
    print(
        f"\nprime({k}) = {fast}: interpreted {interpreted * 1000:.2f}ms,"
        f" compiled {specialized * 1000:.2f}ms"
        f" ({interpreted / specialized:.1f}x)"
    )


if __name__ == "__main__":
    main()
