"""Quickstart: specialize a tiny program, two ways.

The classic first example of partial evaluation: ``power(x, n)``
specialized to a known exponent.  We build a generating extension once,
then produce

1. a residual *source* program (classical partial evaluation), and
2. residual *object code* directly (the paper's composed system),

and check that both compute the same thing.

Run:  python examples/quickstart.py
"""

from repro.lang import unparse_program
from repro.rtcg import make_generating_extension
from repro.sexp import write
from repro.vm import disassemble

POWER = """
(define (power x n)
  (if (zero? n)
      1
      (* x (power x (- n 1)))))
"""


def main() -> None:
    # The binding-time signature: x is Dynamic, n is Static.
    gen = make_generating_extension(POWER, "DS", goal="power")

    # --- classical PE: residual source -------------------------------------
    residual = gen.to_source([5])
    print("Residual source program for n=5:")
    for d in unparse_program(residual.program):
        print(" ", write(d))
    print("  power_5(2) =", residual.run([2]))
    print()

    # --- the composed system: object code directly -------------------------
    rtcg = gen.to_object_code([5])
    print("Object code generated directly (no compiler run!):")
    goal_template = None
    # The machine holds the assembled template under the goal name.
    closure = rtcg.machine.procedure(rtcg.goal)
    print(disassemble(closure.template, indent="  "))
    print("  power_5(2) =", rtcg.run([2]))
    print()

    # --- same extension, different static input ----------------------------
    for n in (0, 1, 8):
        rp = gen.to_object_code([n])
        print(f"  power_{n}(3) = {rp.run([3])}")


if __name__ == "__main__":
    main()
