"""Incremental specialization: code generated from generated code.

"The system makes realistic incremental specialization feasible which not
only allows for the implementation of dynamically evolving programs, but
can also avoid termination problems in partial evaluation [60]." (§1)

A query engine compiles each query to object code the moment it arrives —
classic run-time code generation — and *keeps installing* new compiled
queries into one shared machine as the workload evolves (the specializer's
shared residual-name supply makes the incremental installation safe).

Run:  python examples/incremental_rtcg.py
"""

import time

from repro.lang import unparse_program, with_prelude
from repro.rtcg import GeneratingExtension
from repro.runtime.values import datum_to_value, value_to_datum
from repro.sexp import read, write

# A record is an association list ((field value) ...).  A query is a list
# of clauses (field op constant) with op in {eq lt gt}.
ENGINE = """
(define (field-value record field)
  (let ((hit (assq field record)))
    (if hit (cadr hit) '())))

(define (holds? op actual expected)
  (cond ((eq? op 'eq) (equal? actual expected))
        ((eq? op 'lt) (< actual expected))
        ((eq? op 'gt) (> actual expected))
        (else #f)))

(define (matches? query record)
  (if (null? query)
      #t
      (if (holds? (car (cdar query))
                  (field-value record (caar query))
                  (cadr (cdar query)))
          (matches? (cdr query) record)
          #f)))
"""


def main() -> None:
    # Stage 1: the query becomes known; records stay dynamic.
    gen = GeneratingExtension(ENGINE, "SD", goal="matches?")

    query = datum_to_value(
        read("((age gt 30) (dept eq engineering) (level lt 5))")
    )

    t0 = time.perf_counter()
    matcher = gen.to_object_code([query])
    print(
        f"stage 1+2: query compiled to object code in"
        f" {time.perf_counter() - t0:.4f}s"
    )

    records = [
        "((age 41) (dept engineering) (level 3))",
        "((age 29) (dept engineering) (level 3))",
        "((age 41) (dept sales) (level 3))",
        "((age 41) (dept engineering) (level 7))",
    ]
    for text in records:
        record = datum_to_value(read(text))
        print(f"  match {text} -> {matcher.run([record])}")

    # Show the residual source for the curious: the query interpretation
    # is gone; what remains is a chain of assq/comparison steps.
    residual = gen.to_source([query])
    print("\nresidual filter (first 400 chars):")
    text = "\n".join(write(d) for d in unparse_program(residual.program))
    print(text[:400], "...")

    # Several queries, one machine: incremental installation.
    from repro.compiler import ObjectCodeBackend
    from repro.pe import Specializer

    backend = ObjectCodeBackend()
    q1 = datum_to_value(read("((age gt 18))"))
    q2 = datum_to_value(read("((dept eq sales))"))
    m1 = Specializer(gen.bta.annotated, backend).run([q1])
    m2 = Specializer(gen.bta.annotated, backend).run([q2])
    rec = datum_to_value(read("((age 50) (dept sales))"))
    print(
        f"\ntwo filters in one machine: adult={m1.run([rec])},"
        f" sales={m2.run([rec])},"
        f" templates installed: {len(backend.templates)}"
    )


if __name__ == "__main__":
    main()
