"""The first Futamura projection: an interpreter becomes a compiler.

Specializing the MIXWELL interpreter with respect to a (static) MIXWELL
program yields that program *compiled* — either to Core Scheme source, or,
through the composed system, directly to executable VM object code.  "The
system facilitates the automatic construction of true compilers: It maps a
language description (an interpreter) to a compiler that directly
generates low-level object code." (§1)

Run:  python examples/mixwell_compiler.py
"""

import time

from repro.lang import unparse_program
from repro.runtime.values import datum_to_value, value_to_datum
from repro.rtcg import make_generating_extension
from repro.sexp import write
from repro.workloads import (
    MIXWELL_SIGNATURE,
    mixwell_interpreter,
    mixwell_tm_program,
    run_mixwell,
)


def main() -> None:
    # Build the generating extension for the interpreter once: this is a
    # *compiler* for MIXWELL (from the interpreter, automatically).
    compiler = make_generating_extension(
        mixwell_interpreter(), MIXWELL_SIGNATURE
    )

    tm = mixwell_tm_program()

    # Compile the Turing-machine program to object code.
    t0 = time.perf_counter()
    compiled = compiler.to_object_code([tm])
    print(f"compiled the TM program in {time.perf_counter() - t0:.4f}s")

    # The compiled program agrees with direct interpretation.
    tape = datum_to_value([1, 0, 1, 1])  # 11 in binary
    print("interpreted :", value_to_datum(run_mixwell(tm, tape)))
    print("compiled    :", value_to_datum(compiled.run([tape])))

    # Show a bit of the residual source the classical route would produce.
    residual = compiler.to_source([tm])
    print(f"\nresidual program: {len(residual.program.defs)} definitions")
    first = unparse_program(residual.program)[0]
    text = write(first)
    print(text[:300] + ("..." if len(text) > 300 else ""))

    # The payoff: the compiled program is much faster than interpreting.
    n_runs = 200
    t0 = time.perf_counter()
    for _ in range(n_runs):
        run_mixwell(tm, tape)
    interpreted = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(n_runs):
        compiled.run([tape])
    specialized = time.perf_counter() - t0

    print(
        f"\n{n_runs} runs: interpreted {interpreted:.3f}s,"
        f" compiled {specialized:.3f}s"
        f" -> speedup {interpreted / specialized:.1f}x"
    )


if __name__ == "__main__":
    main()
