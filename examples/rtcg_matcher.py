"""Run-time code generation for a classic RTCG workload: pattern matching.

"Our system allows the creation and execution of customized code at run
time, thereby performing some classic jobs of RTCG systems." (§1)

A generic matcher interprets a pattern against a subject on every call.
When one pattern is matched against many subjects, specializing the
matcher to the pattern *at run time* — directly to object code, no
compiler invocation — pays off.  Patterns support literals, ``?``
(wildcard) and named variables ``(? x)`` whose repeated occurrences must
match equal subjects.

The matcher is written worklist-style so that every dynamic conditional is
in tail position: the Fig. 3 specializer duplicates the continuation of a
dynamic ``if`` into both branches, so value-position conditionals in a
deeply unfolded program can blow up the residual code — a real
binding-time-improvement concern the PE literature discusses at length.

Run:  python examples/rtcg_matcher.py
"""

import time

from repro.runtime.values import datum_to_value
from repro.rtcg import make_generating_extension
from repro.sexp import read

MATCHER = """
;; (match pattern subject): #t iff pattern matches subject.
;;   ?        matches anything
;;   (? x)    matches anything; repeated (? x) must match equal subjects
;;   ()       matches the empty list
;;   literal  matches itself
;;
;; Worklist formulation: `pats` is a (static) stack of pattern parts,
;; `subjects` the matching (dynamic) stack of subject parts, `env` the
;; bindings so far or the symbol fail.

(define (match pattern subject)
  (not (equal? (match-work (cons pattern '()) (cons subject '()) '())
               'fail)))

(define (match-work pats subjects env)
  (if (null? pats)
      env
      (match-one (car pats) (car subjects)
                 (cdr pats) (cdr subjects) env)))

(define (match-one pat subject pats subjects env)
  (cond ((eq? pat '?)
         (match-work pats subjects env))
        ((null? pat)
         (if (null? subject)
             (match-work pats subjects env)
             'fail))
        ((not (pair? pat))
         (if (equal? pat subject)
             (match-work pats subjects env)
             'fail))
        ((eq? (car pat) '?)
         (match-binding (cadr pat) subject pats subjects env))
        (else
         ;; Split the pair: push car and cdr of both pattern and subject.
         (if (pair? subject)
             (match-work (cons (car pat) (cons (cdr pat) pats))
                         (cons (car subject) (cons (cdr subject) subjects))
                         env)
             'fail))))

(define (match-binding name subject pats subjects env)
  (let ((seen (assq name env)))
    (if seen
        (if (equal? (cadr seen) subject)
            (match-work pats subjects env)
            'fail)
        (match-work pats subjects (cons (list name subject) env)))))
"""


def main() -> None:
    # The pattern is static, the subject dynamic.
    gen = make_generating_extension(MATCHER, "SD", goal="match")

    pattern = datum_to_value(
        read("(config (host (? h)) (port (? p)) (host (? h)))")
    )

    t0 = time.perf_counter()
    matcher = gen.to_object_code([pattern])
    print(f"generated a matcher at run time in {time.perf_counter() - t0:.4f}s")

    subjects = {
        "(config (host a) (port 80) (host a))": True,
        "(config (host a) (port 80) (host b))": False,  # h mismatch
        "(config (host a) (port 80))": False,
        "(config (host a) (port 80) (host a) extra)": False,
    }
    for text, expected in subjects.items():
        subject = datum_to_value(read(text))
        result = matcher.run([subject])
        status = "ok" if result is expected else "WRONG"
        print(f"  [{status}] match {text} -> {result}")

    # Throughput: the generic matcher (compiled, but interpreting the
    # pattern on every call) vs the specialized code — both on the VM.
    from repro.compiler import compile_program
    from repro.lang import parse_program

    generic_matcher = compile_program(
        parse_program(MATCHER, goal="match"), compiler="auto"
    )
    machine = generic_matcher.machine()
    subject = datum_to_value(read("(config (host a) (port 80) (host a))"))

    n = 2000
    t0 = time.perf_counter()
    for _ in range(n):
        generic_matcher.run([pattern, subject], machine=machine)
    generic = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(n):
        matcher.run([subject])
    specialized = time.perf_counter() - t0

    print(
        f"\n{n} matches: generic {generic:.3f}s,"
        f" run-time-generated {specialized:.3f}s"
        f" -> {generic / specialized:.1f}x"
    )


if __name__ == "__main__":
    main()
