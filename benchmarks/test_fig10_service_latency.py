"""Figure 10 (ours): request latency of the specialization service.

The paper's run-time code generation is an in-process affair; this
table asks what survives when specialization moves behind a service
boundary (Sperber & Thiemann's "compilation server" reading of RTCG):
N concurrent clients, real sockets, one tenant, the §7 workloads.

The headline claims:

* **warm ≪ cold** — once the tenant's residual cache holds a key, the
  p50 request latency drops by at least 5x against the cold p50 (the
  cold path carries BTA + analysis + specialization + assembly; the
  warm path is freeze + L1 lookup + one frame round trip);
* **coalescing** — the cold stampede (all clients hitting one cold key
  at once) triggers exactly one specializer run per distinct key, so
  the service paid the generation cost once, not once per client;
* **zero errors** — admission, quotas and the frame codec stay out of
  the way of a well-behaved tenant at 10-way concurrency.
"""

import pytest

from repro.serve import SpecializationServer, TenantQuota

from repro.serve.loadgen import run_load

CLIENTS = 10
REQUESTS = 16
MIN_WARM_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    store = tmp_path_factory.mktemp("fig10-store")
    quota = TenantQuota(max_in_flight=CLIENTS)
    with SpecializationServer(
        port=0, store_dir=store, quota=quota, max_connections=CLIENTS + 4
    ) as server:
        # Latency mode: a small think time between requests, so the
        # clients (threads in this same process) measure the server's
        # latency instead of their own GIL-saturated queueing.
        yield run_load(
            "127.0.0.1", server.port, clients=CLIENTS, requests=REQUESTS,
            think_ms=5.0,
        )


class TestFig10ServiceLatency:
    def test_zero_errors_at_ten_way_concurrency(self, report):
        assert report["protocol_errors"] == 0
        assert report["errors"] == {}
        assert report["ok"] == CLIENTS * REQUESTS

    @pytest.mark.parametrize("workload", ["mixwell", "lazy"])
    def test_warm_p50_is_5x_below_cold_p50(self, report, workload):
        entry = report["workloads"][workload]
        cold, warm = entry["cold_ms"]["p50"], entry["warm_ms"]["p50"]
        assert entry["cold_ms"]["n"] == CLIENTS
        assert warm * MIN_WARM_SPEEDUP <= cold, (
            f"{workload}: warm p50 {warm:.2f} ms vs cold p50 {cold:.2f} ms"
            f" — expected at least {MIN_WARM_SPEEDUP}x"
        )

    @pytest.mark.parametrize("workload", ["mixwell", "lazy"])
    def test_cold_stampede_is_coalesced(self, report, workload):
        # Every client's first request per workload is cold, but the
        # single-flight cache admits one generator: all other cold
        # requests are recorded as waits that share the leader's result.
        entry = report["workloads"][workload]
        assert entry["provenance"].get("miss", 0) == 1
        assert entry["provenance"].get("l1", 0) == entry["requests"] - 1

    def test_server_side_specializer_run_count(self, report):
        coalescing = report["coalescing"]
        assert coalescing is not None
        assert coalescing["specializer_runs"] == coalescing["distinct_keys"]

    def test_throughput_is_positive(self, report):
        assert report["throughput_rps"] > 0
