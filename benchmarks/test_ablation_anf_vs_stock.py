"""Ablation A1: the cut-down ANF compiler vs the stock compiler (§6.1).

"Removing the compile-time continuation simplifies the compiler, and also
speeds up later code generation, as it could not be removed by fusion."

Both compilers compile the same residual (ANF) programs; the ANF compiler
should be at least as fast and produce code that is no larger — ANF's
explicit control flow means no join points and no redundant jumps.
"""

import pytest

from repro.compiler import ANFCompiler, StockCompiler
from repro.pe import SourceBackend


@pytest.fixture(scope="module")
def residual_programs(mixwell_ext, mixwell_static, lazy_ext, lazy_static):
    return {
        "mixwell": mixwell_ext.generate(
            [mixwell_static], backend=SourceBackend()
        ).program,
        "lazy": lazy_ext.generate(
            [lazy_static], backend=SourceBackend()
        ).program,
    }


def _compile_with(compiler, program):
    return {
        d.name: compiler.compile_procedure(d.params, d.body, name=d.name.name)
        for d in program.defs
    }


class TestA1CompilationSpeed:
    @pytest.mark.parametrize("workload", ["mixwell", "lazy"])
    def test_anf_compiler(self, benchmark, residual_programs, workload):
        compiler = ANFCompiler(check=False)
        templates = benchmark(
            _compile_with, compiler, residual_programs[workload]
        )
        assert templates

    @pytest.mark.parametrize("workload", ["mixwell", "lazy"])
    def test_stock_compiler(self, benchmark, residual_programs, workload):
        compiler = StockCompiler()
        templates = benchmark(
            _compile_with, compiler, residual_programs[workload]
        )
        assert templates


class TestA1CodeQuality:
    @pytest.mark.parametrize("workload", ["mixwell", "lazy"])
    def test_anf_compiler_emits_no_more_code(self, residual_programs, workload):
        program = residual_programs[workload]
        anf = _compile_with(ANFCompiler(check=False), program)
        stock = _compile_with(StockCompiler(), program)
        anf_count = sum(t.instruction_count() for t in anf.values())
        stock_count = sum(t.instruction_count() for t in stock.values())
        assert anf_count <= stock_count

    @pytest.mark.parametrize("workload", ["mixwell", "lazy"])
    def test_same_behaviour(self, residual_programs, workload):
        from repro.runtime.values import datum_to_value, scheme_equal
        from repro.vm import Machine, VmClosure

        program = residual_programs[workload]
        args = {
            "mixwell": [datum_to_value([1, 1, 0])],
            "lazy": [4],
        }[workload]
        results = []
        for templates in (
            _compile_with(ANFCompiler(check=False), program),
            _compile_with(StockCompiler(), program),
        ):
            m = Machine()
            for name, template in templates.items():
                m.define(name, VmClosure(template, ()))
            results.append(m.call_named(program.goal, args))
        assert scheme_equal(results[0], results[1])
