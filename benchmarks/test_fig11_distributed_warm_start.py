"""Figure 11 (ours): distributed warm starts over the remote L3 tier.

The paper's residual code dies with the Scheme 48 session; Figure 8
already measures how an on-disk image store (L2) turns restarts into
decode+verify.  This table asks the distributed version of that
question: a **second machine** — cold process, cold local store — that
shares a warm remote object server (L3) with the machine that already
paid for specialization.

Headline claims, per §7 workload (MIXWELL, LAZY):

* **≥3x** — the second machine's first-call latency with a warm L3 is
  at least 3x below the fully-cold first call (BTA + specialize +
  assemble), even though every remote image is re-verified on load
  (L3 is untrusted: the bytecode verifier is the trust anchor, not the
  network);
* **zero specializer runs** — the second machine never specializes:
  the image arrives over the wire, verifies, and replicates into its
  local L2 on the way through.
"""

from __future__ import annotations

import time

import pytest

from repro.image.remote import ObjectServer
from repro.rtcg import make_generating_extension
from repro.workloads import (
    LAZY_SIGNATURE,
    MIXWELL_SIGNATURE,
    lazy_interpreter,
    lazy_primes_program,
    mixwell_interpreter,
    mixwell_tm_program,
)

ROUNDS = 3
MIN_SPEEDUP = 3.0

WORKLOADS = {
    "mixwell": (mixwell_interpreter, MIXWELL_SIGNATURE, mixwell_tm_program),
    "lazy": (lazy_interpreter, LAZY_SIGNATURE, lazy_primes_program),
}


def _measure(workload, tmp_path_factory):
    """One workload's (cold_s, warm_s, machine-2 cache stats)."""
    interp_fn, sig, static_fn = WORKLOADS[workload]
    static = static_fn()
    l3_dir = tmp_path_factory.mktemp(f"fig11-{workload}-l3")
    with ObjectServer(l3_dir, port=0) as server:
        endpoint = ("127.0.0.1", server.port)
        # Machine 1 pays for specialization once and publishes the
        # image (write-behind; flush before "machine 2 boots").
        m1 = make_generating_extension(
            interp_fn(), sig,
            store_dir=tmp_path_factory.mktemp(f"fig11-{workload}-m1"),
            remote_store=endpoint,
        )
        m1.to_object_code([static])
        assert m1.flush_store()
        m1.close_store()

        # Both machines build the extension (BTA + congruence + safety
        # analysis) identically, so — as in Figure 8 — construction sits
        # outside the timed region and the table isolates what differs:
        # the first ``to_object_code`` call.  Fully cold that call is
        # specialize + optimize + assemble; on machine 2 it is a remote
        # fetch + decode + **verify** (L3 stays untrusted).
        def cold_first_call():
            gen = make_generating_extension(interp_fn(), sig)
            return _timed(lambda: gen.to_object_code([static]))

        stats = {}

        def warm_first_call():
            gen = make_generating_extension(
                interp_fn(), sig,
                store_dir=tmp_path_factory.mktemp(f"fig11-{workload}-m2"),
                remote_store=endpoint,
            )
            elapsed = _timed(lambda: gen.to_object_code([static]))
            stats.update(gen.cache_stats())
            gen.close_store(flush=False)
            return elapsed

        cold_s = min(cold_first_call() for _ in range(ROUNDS))
        warm_s = min(warm_first_call() for _ in range(ROUNDS))
        return cold_s, warm_s, stats


def _timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


@pytest.fixture(scope="module", params=sorted(WORKLOADS))
def measurement(request, tmp_path_factory):
    cold_s, warm_s, stats = _measure(request.param, tmp_path_factory)
    return request.param, cold_s, warm_s, stats


class TestFig11DistributedWarmStart:
    def test_warm_l3_beats_fully_cold_by_3x(self, measurement):
        workload, cold_s, warm_s, _ = measurement
        assert warm_s * MIN_SPEEDUP <= cold_s, (
            f"{workload}: warm-L3 first call {warm_s * 1e3:.2f} ms vs"
            f" fully-cold {cold_s * 1e3:.2f} ms — expected"
            f" at least {MIN_SPEEDUP}x"
        )

    def test_machine_two_never_specializes(self, measurement):
        workload, _, _, stats = measurement
        assert stats["specializer_runs"] == 0, workload
        remote = stats["store"]["remote"]
        assert remote["remote_hits"] == 1
        assert remote["remote_errors"] == 0
        assert remote["remote_verify_failures"] == 0

    def test_image_replicated_into_machine_twos_l2(self, measurement):
        _, _, _, stats = measurement
        assert stats["store"]["adopts"] == 1
