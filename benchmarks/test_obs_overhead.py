"""Disabled-mode observability overhead on the Figure 6 cold path.

The tentpole contract for :mod:`repro.obs` is that instrumentation is
free when no tracer is installed: every ``obs.span``/``obs.count`` site
reduces to one global load plus a ``None`` test.  This suite makes the
contract a regression assertion instead of a comment.

Methodology: run one cold object-code generation (the Figure 6 MIXWELL
cold path) under a real tracer and count every observability event it
emits — K spans plus M counter/histogram updates.  Then time K+M
disabled facade calls back-to-back and compare against the measured
cold-generation time itself.  The disabled facade must cost less than
3% of the work it instruments.
"""

from __future__ import annotations

import time

from repro import obs
from repro.rtcg import make_generating_extension
from repro.workloads import (
    MIXWELL_SIGNATURE,
    mixwell_interpreter,
    mixwell_tm_program,
)

OVERHEAD_BUDGET = 0.03
ROUNDS = 5


def _best_of(fn, rounds=ROUNDS):
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def _cold_generate(gen, static):
    gen.cache_clear()
    return gen.to_object_code([static])


class TestDisabledOverhead:
    def test_disabled_facade_under_three_percent_of_fig6_cold_path(self):
        gen = make_generating_extension(
            mixwell_interpreter(), MIXWELL_SIGNATURE
        )
        static = mixwell_tm_program()
        _cold_generate(gen, static)  # JIT-warm caches, import costs, etc.

        # Count the observability events one cold generation emits.
        with obs.tracing() as (tracer, metrics):
            _cold_generate(gen, static)
        snapshot = metrics.snapshot()
        spans = len(tracer)
        updates = sum(snapshot["counters"].values()) + sum(
            h["count"] for h in snapshot["histograms"].values()
        )
        assert spans > 0 and updates > 0

        assert not obs.enabled()
        cold = _best_of(lambda: _cold_generate(gen, static))

        def disabled_facade():
            for _ in range(spans):
                with obs.span("bench.noop", key="value"):
                    pass
            for _ in range(updates):
                obs.count("bench.noop")

        disabled = _best_of(disabled_facade)

        assert disabled < OVERHEAD_BUDGET * cold, (
            f"disabled obs facade cost {disabled * 1e6:.1f}us for "
            f"{spans} spans + {updates} updates, against a "
            f"{cold * 1e3:.2f}ms cold generation "
            f"({disabled / cold:.1%} > {OVERHEAD_BUDGET:.0%})"
        )

    def test_disabled_span_is_a_shared_noop(self):
        # The mechanism behind the budget: no allocation per call site.
        assert obs.span("a") is obs.span("b", attr=1)
