"""Ablation A4: characterizing the VM substrate.

The paper's numbers are all relative to the Scheme 48 byte-code VM.  This
bench pins down our substrate's basic costs so the other figures can be
read in context: the bytecode VM vs the tree-walking reference
interpreter on the same programs, and raw dispatch cost.
"""

import pytest

from repro.compiler import compile_program
from repro.interp import Interpreter, run_program
from repro.lang import parse_program

FIB = "(define (fib n) (if (< n 2) n (+ (fib (- n 1)) (fib (- n 2)))))"
LOOP = "(define (loop n acc) (if (zero? n) acc (loop (- n 1) (+ acc n))))"
LISTS = """
(define (build n) (if (zero? n) '() (cons n (build (- n 1)))))
(define (total xs acc) (if (null? xs) acc (total (cdr xs) (+ acc (car xs)))))
(define (main n) (total (build n) 0))
"""

CASES = {
    "fib": (FIB, [15]),
    "tail-loop": (LOOP, [5000, 0]),
    "lists": (LISTS, [150]),
}


@pytest.mark.parametrize("case", list(CASES))
class TestA4InterpreterVsVM:
    def test_reference_interpreter(self, benchmark, case):
        src, args = CASES[case]
        program = parse_program(src)
        interp = Interpreter(program)
        benchmark(interp.call, program.goal, args)

    def test_bytecode_vm(self, benchmark, case):
        src, args = CASES[case]
        program = parse_program(src)
        compiled = compile_program(program, compiler="auto")
        machine = compiled.machine()
        benchmark(compiled.run, args, machine)


class TestA4Consistency:
    @pytest.mark.parametrize("case", list(CASES))
    def test_same_results(self, case):
        src, args = CASES[case]
        program = parse_program(src)
        compiled = compile_program(program, compiler="auto")
        assert compiled.run(args) == run_program(program, args)
