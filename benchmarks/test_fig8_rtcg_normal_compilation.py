"""Figure 8: Using RTCG for normal compilation.

Paper (seconds)::

               BTA     Load   Generate   Compile
    MIXWELL   2.730   4.026    0.652      0.964
    LAZY      2.253   3.217    0.568      0.604

"For normal compilation, the system takes all inputs to a program as
dynamic. ...  The BTA column shows the time needed for binding-time
analysis and creation of the object code generator, Load is the time
needed for loading (and compiling) the object code generator, and Generate
the time for running it.  Compile is the time needed to load and compile
the original interpreter using the stock Scheme 48 compiler."

Correspondence here, with every input dynamic (signature ``DD``):

* **BTA** — front end + binding-time analysis of the interpreter;
* **Load** — building the compiled generating extension (the cogen path:
  our analogue of loading/compiling the generator);
* **Generate** — running the extension with the fused object-code backend;
* **Compile** — the stock (compile-time-continuation) compiler on the
  interpreter.

Expected shape: BTA + Load is a one-time cost, clearly larger than a
single Generate; Generate and Compile are the same order of magnitude.
"""

import pytest

from repro.compiler import ObjectCodeBackend, StockCompiler
from repro.pe import analyze
from repro.pe.cogen import compile_generating_extension
from repro.runtime.values import datum_to_value, value_to_datum
from repro.workloads import (
    lazy_interpreter,
    lazy_primes_program,
    mixwell_interpreter,
    mixwell_tm_program,
)

_INTERPRETERS = {
    "mixwell": mixwell_interpreter,
    "lazy": lazy_interpreter,
}


@pytest.fixture(scope="module", params=["mixwell", "lazy"])
def workload(request):
    program = _INTERPRETERS[request.param]()
    bta = analyze(program, "DD")
    extension = compile_generating_extension(bta.annotated)
    return request.param, program, bta, extension


class TestFig8Columns:
    def test_bta(self, benchmark, workload):
        name, program, _, _ = workload
        result = benchmark(analyze, program, "DD")
        assert result.annotated.defs

    def test_load(self, benchmark, workload):
        name, _, bta, _ = workload
        extension = benchmark(compile_generating_extension, bta.annotated)
        assert extension is not None

    def test_generate(self, benchmark, workload):
        name, _, _, extension = workload

        def generate():
            return extension.generate([], backend=ObjectCodeBackend())

        rp = benchmark(generate)
        assert rp.machine is not None

    def test_generate_cached(self, benchmark, workload):
        """The residual-cache column: the same Generate, served from the
        cross-invocation residual cache once the static input (here:
        none — normal compilation) has been seen."""
        name, _, _, extension = workload

        def generate_cached():
            return extension.generate(
                [], backend=ObjectCodeBackend(), use_cache=True
            )

        generate_cached()  # warm
        rp = benchmark(generate_cached)
        assert rp.machine is not None
        assert rp.stats["cache_hit"]

    def test_generate_warm_start(self, benchmark, workload, tmp_path_factory):
        """The warm-start column: Generate served from a populated
        on-disk image store — what a *fresh process* pays (index lookup,
        decode, bytecode re-verification) instead of BTA + Load +
        Generate."""
        from repro.rtcg import make_generating_extension

        name, program, _, _ = workload
        store = tmp_path_factory.mktemp(f"fig8-{name}-store")
        make_generating_extension(
            program, "DD", store_dir=store
        ).to_object_code([])  # populate

        gen = make_generating_extension(program, "DD", store_dir=store)

        def generate_from_disk():
            gen.cache_clear()
            return gen.to_object_code([])

        rp = benchmark(generate_from_disk)
        assert rp.machine is not None
        assert rp.stats["disk_hit"]
        assert gen.cache_stats()["specializer_runs"] == 0

    def test_compile(self, benchmark, workload):
        name, program, _, _ = workload
        stock = StockCompiler(globals_=frozenset(d.name for d in program.defs))

        def compile_all():
            return {
                d.name: stock.compile_procedure(
                    d.params, d.body, name=d.name.name
                )
                for d in program.defs
            }

        templates = benchmark(compile_all)
        assert templates


class TestFig8Correctness:
    """The RTCG-compiled interpreter behaves like the stock-compiled one."""

    def test_mixwell_rtcg_compilation_is_a_compiler(self):
        program = mixwell_interpreter()
        bta = analyze(program, "DD")
        ext = compile_generating_extension(bta.annotated)
        rp = ext.generate([], backend=ObjectCodeBackend())
        tape = datum_to_value([1, 0, 1])
        out = rp.run([mixwell_tm_program(), tape])
        assert value_to_datum(out) == [1, 1, 0]

    def test_lazy_rtcg_compilation_is_a_compiler(self):
        program = lazy_interpreter()
        bta = analyze(program, "DD")
        ext = compile_generating_extension(bta.annotated)
        rp = ext.generate([], backend=ObjectCodeBackend())
        assert rp.run([lazy_primes_program(), 3]) == 7

    def test_one_time_cost_amortizes(self, workload):
        # BTA+Load happen once; Generate repeats.  The amortized story of
        # the paper requires Generate to be much cheaper than BTA+Load
        # would be per use.
        import time

        name, program, _, extension = workload

        t0 = time.perf_counter()
        analyze(program, "DD")
        compile_generating_extension(analyze(program, "DD").annotated)
        setup = time.perf_counter() - t0

        times = []
        for _ in range(3):
            t0 = time.perf_counter()
            extension.generate([], backend=ObjectCodeBackend())
            times.append(time.perf_counter() - t0)
        generate = min(times)
        assert generate < setup * 3, (
            f"{name}: generate {generate:.4f}s vs one-time setup"
            f" {setup:.4f}s"
        )
