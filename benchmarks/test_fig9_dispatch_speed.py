"""Figure 9 (ours): dynamic dispatch speed of superinstruction residuals.

The paper's evaluation stops at generation and compilation speed; this
table extends it one step into *run* speed.  PR 6's dataflow optimizer
shrank the residual programs statically; the profile-guided
superinstruction pass (:mod:`repro.vm.superinst`) attacks the dynamic
cost that remains: every fused pair/triple retires one/two fewer
dispatches.  Benchmarked per workload, on the §7 hot inputs:

* **dispatches retired** — instruction counts from the counting loop,
  base machine vs fused machine; the headline assertion is a >= 15%
  reduction;
* **wall-clock** — best-of-N of the production loops; the fused machine
  must be no slower than the base machine;
* **trust** — every fused template passes translation validation
  (round-trip lowering + base-ISA re-verification) before any fused
  code runs, and both machines agree on the workload's answer.
"""

import time

import pytest

from repro.lang.prims import write_value
from repro.runtime.values import datum_to_value
from repro.vm import VMProfile, VmClosure, call_named_profiled
from repro.vm.superinst import (
    fuse_machine,
    lower_template,
    select_superinstructions,
    structurally_equal,
    validate_fusion,
)

MIN_DISPATCH_REDUCTION = 0.15
# Generous noise ceiling: the fused loop must not be slower; in practice
# it is ~1.5-2x faster on these workloads.
MAX_WALLCLOCK_RATIO = 1.10
ROUNDS = 5


def _best_of(fn, rounds=ROUNDS):
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


@pytest.fixture(scope="module", params=["mixwell", "lazy"])
def workload(request, mixwell_gen, lazy_gen, mixwell_static, lazy_static):
    if request.param == "mixwell":
        gen, static = mixwell_gen, mixwell_static
        dynamics = [datum_to_value([1, 0, 1, 1, 0, 1])]
    else:
        gen, static = lazy_gen, lazy_static
        dynamics = [4]
    base = gen.to_object_code([static])
    base_profile = VMProfile()
    base_value = base.run_profiled(dynamics, base_profile)
    plan = select_superinstructions(base_profile, max_fused=8)
    sites: dict[str, int] = {}
    # validate=True: translation validation for every fused template
    # happens here, before any fused code runs.
    fused = fuse_machine(base.machine, plan, validate=True, stats=sites)
    return {
        "name": request.param,
        "base": base,
        "dynamics": dynamics,
        "base_profile": base_profile,
        "base_value": base_value,
        "plan": plan,
        "sites": sites,
        "fused": fused,
    }


class TestFig9DispatchSpeed:
    def test_plan_is_nonempty_and_fused(self, workload):
        assert workload["plan"]
        assert sum(workload["sites"].values()) > 0

    def test_dispatch_reduction_at_least_15_percent(self, workload):
        base_dispatches = sum(
            workload["base_profile"].opcode_counts.values()
        )
        fused_profile = VMProfile()
        value = call_named_profiled(
            workload["fused"], workload["base"].goal,
            list(workload["dynamics"]), fused_profile,
        )
        assert write_value(value) == write_value(workload["base_value"])
        fused_dispatches = sum(fused_profile.opcode_counts.values())
        reduction = (base_dispatches - fused_dispatches) / base_dispatches
        assert reduction >= MIN_DISPATCH_REDUCTION, (
            f"{workload['name']}: only {reduction:.1%} fewer dispatches"
            f" ({base_dispatches} -> {fused_dispatches})"
        )

    def test_wallclock_not_slower_than_baseline(self, workload):
        base, fused = workload["base"], workload["fused"]
        goal, dynamics = base.goal, workload["dynamics"]
        t_base = _best_of(lambda: base.machine.call_named(goal, list(dynamics)))
        t_fused = _best_of(lambda: fused.call_named(goal, list(dynamics)))
        assert t_fused <= t_base * MAX_WALLCLOCK_RATIO, (
            f"{workload['name']}: fused loop slower than base"
            f" ({t_fused * 1e3:.2f}ms vs {t_base * 1e3:.2f}ms)"
        )

    def test_every_fused_template_passes_translation_validation(
        self, workload
    ):
        base, fused = workload["base"], workload["fused"]
        checked = 0
        for name, value in fused.globals.items():
            if not isinstance(value, VmClosure):
                continue
            original = base.machine.globals[name].template
            validate_fusion(
                original, value.template, closed_count=len(value.env)
            )
            assert structurally_equal(
                lower_template(value.template), original
            )
            checked += 1
        assert checked > 0

    def test_differential_agreement_on_production_loops(self, workload):
        base, fused = workload["base"], workload["fused"]
        goal, dynamics = base.goal, workload["dynamics"]
        assert write_value(
            fused.call_named(goal, list(dynamics))
        ) == write_value(base.machine.call_named(goal, list(dynamics)))
