"""Ablation A3: compiled generating extensions vs interpreting annotations.

The PGG path [59] compiles the annotated program into a generating
extension once; the plain specializer re-traverses the annotated syntax on
every specialization.  The compiled extension should generate residual
code faster — this is the staging benefit that §9 wants to push further
("generate the generating extensions as object code themselves").
"""

import pytest

from repro.pe import SourceBackend, Specializer


class TestA3GenerationSpeed:
    @pytest.mark.parametrize("workload", ["mixwell", "lazy"])
    def test_interpreted_annotations(
        self, benchmark, workload, mixwell_gen, mixwell_static, lazy_gen,
        lazy_static,
    ):
        gen, static = {
            "mixwell": (mixwell_gen, mixwell_static),
            "lazy": (lazy_gen, lazy_static),
        }[workload]

        def run():
            return Specializer(gen.bta.annotated, SourceBackend()).run(
                [static]
            )

        rp = benchmark(run)
        assert rp.program is not None

    @pytest.mark.parametrize("workload", ["mixwell", "lazy"])
    def test_compiled_extension(
        self, benchmark, workload, mixwell_ext, mixwell_static, lazy_ext,
        lazy_static,
    ):
        ext, static = {
            "mixwell": (mixwell_ext, mixwell_static),
            "lazy": (lazy_ext, lazy_static),
        }[workload]

        rp = benchmark(lambda: ext.generate([static]))
        assert rp.program is not None


class TestA3Shape:
    @pytest.mark.parametrize("workload", ["mixwell", "lazy"])
    def test_compiled_extension_not_slower(
        self, workload, mixwell_gen, mixwell_ext, mixwell_static, lazy_gen,
        lazy_ext, lazy_static,
    ):
        import time

        gen, ext, static = {
            "mixwell": (mixwell_gen, mixwell_ext, mixwell_static),
            "lazy": (lazy_gen, lazy_ext, lazy_static),
        }[workload]

        def best_of(fn, n=5):
            times = []
            for _ in range(n):
                t0 = time.perf_counter()
                fn()
                times.append(time.perf_counter() - t0)
            return min(times)

        t_interp = best_of(
            lambda: Specializer(gen.bta.annotated, SourceBackend()).run(
                [static]
            )
        )
        t_cogen = best_of(lambda: ext.generate([static]))
        # Allow 10% noise; the point is the compiled path is not slower.
        assert t_cogen < 1.1 * t_interp, (
            f"{workload}: cogen {t_cogen:.4f}s vs specializer"
            f" {t_interp:.4f}s"
        )
