"""Ablation A2: specialization removes interpretation overhead.

The implicit claim behind the whole enterprise (§3: "Often, the residual
program is faster than the source program"): running the *specialized*
program on the VM must beat running the *interpreter* on the VM applied to
(program, input).  This is the first Futamura projection's payoff.
"""

import pytest

from repro.compiler import ObjectCodeBackend, compile_program
from repro.runtime.values import datum_to_value
from repro.workloads import (
    lazy_interpreter,
    mixwell_interpreter,
)

MIXWELL_TAPE = [1, 0, 1, 1, 0, 1]
LAZY_INDEX = 4


@pytest.fixture(scope="module")
def mixwell_setup(mixwell_ext, mixwell_static):
    interp_compiled = compile_program(mixwell_interpreter(), compiler="auto")
    machine = interp_compiled.machine()
    specialized = mixwell_ext.generate(
        [mixwell_static], backend=ObjectCodeBackend()
    )
    return interp_compiled, machine, specialized, mixwell_static


@pytest.fixture(scope="module")
def lazy_setup(lazy_ext, lazy_static):
    interp_compiled = compile_program(lazy_interpreter(), compiler="auto")
    machine = interp_compiled.machine()
    specialized = lazy_ext.generate([lazy_static], backend=ObjectCodeBackend())
    return interp_compiled, machine, specialized, lazy_static


class TestA2MIXWELL:
    def test_mixwell_interpreted_on_vm(self, benchmark, mixwell_setup):
        interp, machine, _, static = mixwell_setup
        tape = datum_to_value(MIXWELL_TAPE)
        benchmark(interp.run, [static, tape], machine)

    def test_mixwell_specialized_on_vm(self, benchmark, mixwell_setup):
        _, _, specialized, _ = mixwell_setup
        tape = datum_to_value(MIXWELL_TAPE)
        benchmark(specialized.run, [tape])

    def test_speedup_holds(self, mixwell_setup):
        import time

        interp, machine, specialized, static = mixwell_setup
        tape = datum_to_value(MIXWELL_TAPE)

        def best_of(fn, n=7):
            return min(
                _timed(fn) for _ in range(n)
            )

        def _timed(fn):
            t0 = time.perf_counter()
            fn()
            return time.perf_counter() - t0

        t_interp = best_of(lambda: interp.run([static, tape], machine))
        t_spec = best_of(lambda: specialized.run([tape]))
        assert t_spec < t_interp, (
            f"specialized {t_spec:.5f}s should beat interpreted"
            f" {t_interp:.5f}s"
        )


class TestA2LAZY:
    def test_lazy_interpreted_on_vm(self, benchmark, lazy_setup):
        interp, machine, _, static = lazy_setup
        benchmark(interp.run, [static, LAZY_INDEX], machine)

    def test_lazy_specialized_on_vm(self, benchmark, lazy_setup):
        _, _, specialized, _ = lazy_setup
        benchmark(specialized.run, [LAZY_INDEX])

    def test_speedup_holds(self, lazy_setup):
        import time

        interp, machine, specialized, static = lazy_setup

        def timed(fn):
            t0 = time.perf_counter()
            fn()
            return time.perf_counter() - t0

        t_interp = min(timed(lambda: interp.run([static, LAZY_INDEX], machine)) for _ in range(3))
        t_spec = min(timed(lambda: specialized.run([LAZY_INDEX])) for _ in range(3))
        assert t_spec < t_interp
