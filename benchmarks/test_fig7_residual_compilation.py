"""Figure 7: Compilation times for the specialization output.

"Still, loading the generated source code back into the Scheme system is
by far more expensive than direct object code generation, as in Fig. 7.
Here, we used our own ANF compiler, not the (slower) stock Scheme 48
compiler.  To fully appreciate the timing data, note that in order to
produce object code for a specialized program from an ordinary
specializer, we have to add the timings for source code generation in
Fig. 6 and the compilation times in Fig. 7."

Benchmarked here, per workload:

* **load** — the classical route's second pass: printing the residual
  source, reading it back, and compiling it with the ANF compiler (what
  "loading the generated source code back into the system" costs);
* **compile-only** — just the ANF compilation of the in-memory residual
  program (the optimistic lower bound for the two-pass route);
* the **headline** assertion: source generation + load is more expensive
  than direct object-code generation through the fused backend.
"""

import time

import pytest

from repro.compiler import ObjectCodeBackend, compile_program
from repro.lang import parse_program, unparse_program
from repro.pe import SourceBackend
from repro.sexp import write


@pytest.fixture(scope="module")
def mixwell_residual_source(mixwell_ext, mixwell_static):
    return mixwell_ext.generate([mixwell_static], backend=SourceBackend())


@pytest.fixture(scope="module")
def lazy_residual_source(lazy_ext, lazy_static):
    return lazy_ext.generate([lazy_static], backend=SourceBackend())


def _load_route(residual):
    """Print the residual program, read it back, compile it."""
    text = "\n".join(write(d) for d in unparse_program(residual.program))
    program = parse_program(text, goal=residual.goal.name)
    return compile_program(program, compiler="anf")


class TestFig7ResidualCompilation:
    def test_mixwell_load_residual(self, benchmark, mixwell_residual_source):
        compiled = benchmark(_load_route, mixwell_residual_source)
        assert compiled.instruction_count() > 0

    def test_lazy_load_residual(self, benchmark, lazy_residual_source):
        compiled = benchmark(_load_route, lazy_residual_source)
        assert compiled.instruction_count() > 0

    def test_mixwell_compile_only(self, benchmark, mixwell_residual_source):
        compiled = benchmark(
            compile_program, mixwell_residual_source.program, compiler="anf"
        )
        assert compiled.instruction_count() > 0

    def test_lazy_compile_only(self, benchmark, lazy_residual_source):
        compiled = benchmark(
            compile_program, lazy_residual_source.program, compiler="anf"
        )
        assert compiled.instruction_count() > 0


class TestFig7Headline:
    """source generation + load > direct object generation."""

    @pytest.mark.parametrize("workload", ["mixwell", "lazy"])
    def test_two_pass_route_is_slower(
        self, workload, mixwell_ext, mixwell_static, lazy_ext, lazy_static
    ):
        ext, static = {
            "mixwell": (mixwell_ext, mixwell_static),
            "lazy": (lazy_ext, lazy_static),
        }[workload]

        def best_of(fn, n=7):
            times = []
            for _ in range(n):
                t0 = time.perf_counter()
                fn()
                times.append(time.perf_counter() - t0)
            return min(times)

        def two_pass():
            rp = ext.generate([static], backend=SourceBackend())
            _load_route(rp)

        def direct():
            ext.generate([static], backend=ObjectCodeBackend())

        t_two_pass = best_of(two_pass)
        t_direct = best_of(direct)
        # Substrate note: in the paper, loading source back into Scheme 48
        # dwarfed direct generation.  Our Python substrate compresses that
        # margin (reading/parsing is cheap relative to the shared
        # specialization core), so we assert the direct route is at least
        # competitive — it eliminates the separate compile pass without
        # costing more than a small factor — and report exact ratios in
        # EXPERIMENTS.md.
        assert t_direct < 1.25 * t_two_pass, (
            f"{workload}: direct {t_direct:.4f}s vs two-pass"
            f" {t_two_pass:.4f}s"
        )

    @pytest.mark.parametrize("workload", ["mixwell", "lazy"])
    def test_routes_agree(
        self, workload, mixwell_ext, mixwell_static, lazy_ext, lazy_static
    ):
        from repro.runtime.values import datum_to_value, scheme_equal

        ext, static, args = {
            "mixwell": (mixwell_ext, mixwell_static, [datum_to_value([1, 0, 1])]),
            "lazy": (lazy_ext, lazy_static, [3]),
        }[workload]
        two_pass = _load_route(ext.generate([static], backend=SourceBackend()))
        direct = ext.generate([static], backend=ObjectCodeBackend())
        assert scheme_equal(two_pass.run(list(args)), direct.run(list(args)))


class TestFig7OptimizerReduction:
    """The dataflow bytecode optimizer's static payoff on fig7 residuals.

    Specialization leaves mechanically generated slack in the residual
    templates (single-use temporaries, copies through locals, constant
    branches).  The optimizer must recover a real fraction of it: in
    aggregate over both fig6/fig7 workloads, static instruction count
    (recursive over nested closure templates) drops by at least 10%.
    """

    def test_static_instruction_count_drops_at_least_10_percent(
        self, mixwell_ext, mixwell_static, lazy_ext, lazy_static
    ):
        before = after = 0
        for ext, static in (
            (mixwell_ext, mixwell_static),
            (lazy_ext, lazy_static),
        ):
            plain = ObjectCodeBackend(verify=True, optimize=False)
            ext.generate([static], backend=plain)
            optimized = ObjectCodeBackend(verify=True, optimize=True)
            ext.generate([static], backend=optimized)
            before += sum(
                t.instruction_count() for t in plain.templates.values()
            )
            after += sum(
                t.instruction_count() for t in optimized.templates.values()
            )
        assert before > 0
        reduction = (before - after) / before
        assert reduction >= 0.10, (
            f"optimizer removed only {reduction:.1%} of {before} residual"
            f" instructions in aggregate ({before} -> {after})"
        )


class TestFig7DivisionPayoff:
    """The polyvariant division's static payoff on fig7 residuals.

    The monovariant join forces one division per function, so a single
    dynamic caller poisons every static use of a shared helper and the
    residual code keeps work the specializer could have done.  Comparing
    residual object code generated under ``bta="mono"`` vs the default
    ``bta="poly"`` (same program, same static input, join dif-strategy
    so the mono residual stays polynomial), the best §7 workload must
    shed at least 5% of its residual instructions.
    """

    @staticmethod
    def _residual_instructions(program, signature, static, mode):
        from repro.rtcg import GeneratingExtension
        from repro.vm.machine import VmClosure

        gen = GeneratingExtension(program, signature, bta=mode)
        rp = gen.to_object_code([static], dif_strategy="join", optimize=False)
        return sum(
            value.template.instruction_count()
            for value in rp.machine.globals.values()
            if isinstance(value, VmClosure)
        )

    def test_poly_sheds_at_least_5_percent_on_best_workload(
        self, mixwell_static, lazy_static
    ):
        from repro.workloads import (
            LAZY_SIGNATURE,
            MIXWELL_SIGNATURE,
            lazy_interpreter,
            mixwell_interpreter,
        )

        reductions = {}
        for name, program, sig, static in (
            ("mixwell", mixwell_interpreter(), MIXWELL_SIGNATURE,
             mixwell_static),
            ("lazy", lazy_interpreter(), LAZY_SIGNATURE, lazy_static),
        ):
            mono = self._residual_instructions(program, sig, static, "mono")
            poly = self._residual_instructions(program, sig, static, "poly")
            assert mono > 0 and poly > 0
            reductions[name] = (mono - poly) / mono
        best = max(reductions, key=reductions.get)
        assert reductions[best] >= 0.05, (
            f"polyvariant division shed only {reductions[best]:.1%} on"
            f" {best} (all: {reductions})"
        )
