"""Figure 6: Generation speed.

Paper (Pentium/90, Scheme 48 0.46, cumulative seconds)::

                source code    object code
    MIXWELL        3.072          3.770
    LAZY           1.832          3.451

"Figure 6 shows timings for generating both Scheme source and object code
directly for compilers generated from the interpreters ...  Object code
generation is up to a factor of 2 slower than generating source, since
Scheme 48 uses a higher-order representation for the object code that
still needs to be converted to actual byte codes — that conversion is also
part of the timings."

Here: the compiled generating extension (the compiler generated from the
interpreter) runs once per round, emitting residual source through the
source backend and residual object code through the fused backend.  The
object-code timing includes the assembly/relocation step, exactly as in
the paper.  Expected shape: object code generation slower than source,
within a small constant factor.

A third column measures the bytecode verifier's overhead: object-code
generation with every emitted template verified at generation time
(``ObjectCodeBackend(verify=True)``) against the bare paper-faithful
timing (``verify=False``).

A fourth column measures the **residual cache**: applying the extension
to an already-seen static input through the cross-invocation cache
(``use_cache=True``) — the amortized cost of the paper's "applied any
number of times" once the memo table is warm.

A fifth column measures the **warm start** from the on-disk image store:
the in-memory cache is dropped before every application, so each one
decodes (and re-verifies) the persisted image — the cost a fresh process
pays when the store is already populated, instead of specializing.

A sixth column measures the **specialization-safety analysis**
(``repro.analysis``): the one-time, per-program cost of proving the
extension safe to specialize, which `GeneratingExtension` pays at
construction.  The shape suite asserts it stays well under a single
cold specialization run.

A seventh column measures the **dataflow bytecode optimizer**
(``repro.vm.opt``), on by default in the production pipeline: object
code generation with every template verified *and* optimized (with
translation validation).  The bare/verified columns pin
``optimize=False`` so each column still isolates one cost; the shape
suite bounds the optimizer's wall-clock share of cold generation.
"""

import pytest

from repro.analysis import analyze_bta
from repro.compiler import ObjectCodeBackend
from repro.pe import SourceBackend


def _generate_source(ext, static):
    return ext.generate([static], backend=SourceBackend())


def _generate_object(ext, static):
    return ext.generate(
        [static], backend=ObjectCodeBackend(verify=False, optimize=False)
    )


def _generate_object_verified(ext, static):
    return ext.generate(
        [static], backend=ObjectCodeBackend(verify=True, optimize=False)
    )


def _generate_object_optimized(ext, static):
    return ext.generate(
        [static], backend=ObjectCodeBackend(verify=True, optimize=True)
    )


def _generate_object_cached(ext, static):
    return ext.generate(
        [static], backend=ObjectCodeBackend(verify=True), use_cache=True
    )


def _generate_object_disk(gen, static):
    # Dropping L1 before each application forces the store (L2) path:
    # index lookup, decode, bytecode re-verification.
    gen.cache_clear()
    return gen.to_object_code([static])


class TestFig6MIXWELL:
    def test_mixwell_source_code(self, benchmark, mixwell_ext, mixwell_static):
        result = benchmark(_generate_source, mixwell_ext, mixwell_static)
        assert result.program is not None

    def test_mixwell_object_code(self, benchmark, mixwell_ext, mixwell_static):
        result = benchmark(_generate_object, mixwell_ext, mixwell_static)
        assert result.machine is not None

    def test_mixwell_object_code_verified(
        self, benchmark, mixwell_ext, mixwell_static
    ):
        result = benchmark(
            _generate_object_verified, mixwell_ext, mixwell_static
        )
        assert result.machine is not None

    def test_mixwell_object_code_optimized(
        self, benchmark, mixwell_ext, mixwell_static
    ):
        result = benchmark(
            _generate_object_optimized, mixwell_ext, mixwell_static
        )
        assert result.machine is not None

    def test_mixwell_object_code_cached(
        self, benchmark, mixwell_ext, mixwell_static
    ):
        _generate_object_cached(mixwell_ext, mixwell_static)  # warm
        result = benchmark(
            _generate_object_cached, mixwell_ext, mixwell_static
        )
        assert result.machine is not None
        assert result.stats["cache_hit"]

    def test_mixwell_object_code_disk_hit(
        self, benchmark, mixwell_store_gen, mixwell_static
    ):
        mixwell_store_gen.to_object_code([mixwell_static])  # populate store
        result = benchmark(
            _generate_object_disk, mixwell_store_gen, mixwell_static
        )
        assert result.machine is not None
        assert result.stats["disk_hit"]

    def test_mixwell_safety_analysis(self, benchmark, mixwell_gen):
        report = benchmark(analyze_bta, mixwell_gen.bta)
        assert report.safe


class TestFig6LAZY:
    def test_lazy_source_code(self, benchmark, lazy_ext, lazy_static):
        result = benchmark(_generate_source, lazy_ext, lazy_static)
        assert result.program is not None

    def test_lazy_object_code(self, benchmark, lazy_ext, lazy_static):
        result = benchmark(_generate_object, lazy_ext, lazy_static)
        assert result.machine is not None

    def test_lazy_object_code_verified(self, benchmark, lazy_ext, lazy_static):
        result = benchmark(_generate_object_verified, lazy_ext, lazy_static)
        assert result.machine is not None

    def test_lazy_object_code_optimized(
        self, benchmark, lazy_ext, lazy_static
    ):
        result = benchmark(_generate_object_optimized, lazy_ext, lazy_static)
        assert result.machine is not None

    def test_lazy_object_code_cached(self, benchmark, lazy_ext, lazy_static):
        _generate_object_cached(lazy_ext, lazy_static)  # warm
        result = benchmark(_generate_object_cached, lazy_ext, lazy_static)
        assert result.machine is not None
        assert result.stats["cache_hit"]

    def test_lazy_object_code_disk_hit(
        self, benchmark, lazy_store_gen, lazy_static
    ):
        lazy_store_gen.to_object_code([lazy_static])  # populate store
        result = benchmark(_generate_object_disk, lazy_store_gen, lazy_static)
        assert result.machine is not None
        assert result.stats["disk_hit"]

    def test_lazy_safety_analysis(self, benchmark, lazy_gen):
        report = benchmark(analyze_bta, lazy_gen.bta)
        assert report.safe


class TestFig6Shape:
    """The paper's qualitative claim, asserted (not just reported)."""

    @pytest.mark.parametrize("workload", ["mixwell", "lazy"])
    def test_object_generation_within_small_factor_of_source(
        self, workload, mixwell_ext, mixwell_static, lazy_ext, lazy_static
    ):
        import time

        ext, static = {
            "mixwell": (mixwell_ext, mixwell_static),
            "lazy": (lazy_ext, lazy_static),
        }[workload]

        def best_of(fn, n=5):
            times = []
            for _ in range(n):
                t0 = time.perf_counter()
                fn(ext, static)
                times.append(time.perf_counter() - t0)
            return min(times)

        t_source = best_of(_generate_source)
        t_object = best_of(_generate_object)
        # Paper: object up to 2x slower than source.  Allow headroom for
        # host noise, but object generation must not be an order of
        # magnitude off source generation.
        assert t_object < 4.0 * t_source, (
            f"{workload}: object {t_object:.4f}s vs source {t_source:.4f}s"
        )

    @pytest.mark.parametrize("workload", ["mixwell", "lazy"])
    def test_verifier_overhead_is_bounded(
        self, workload, mixwell_ext, mixwell_static, lazy_ext, lazy_static
    ):
        """Verifying generated templates stays a small constant factor.

        The verifier is one structural scan plus a linear worklist
        fixpoint per template, so verified generation must stay within a
        small multiple of bare generation — it is cheap enough to leave
        on by default.
        """
        import time

        ext, static = {
            "mixwell": (mixwell_ext, mixwell_static),
            "lazy": (lazy_ext, lazy_static),
        }[workload]

        def best_of(fn, n=5):
            times = []
            for _ in range(n):
                t0 = time.perf_counter()
                fn(ext, static)
                times.append(time.perf_counter() - t0)
            return min(times)

        t_bare = best_of(_generate_object)
        t_verified = best_of(_generate_object_verified)
        assert t_verified < 3.0 * t_bare, (
            f"{workload}: verified {t_verified:.4f}s"
            f" vs bare {t_bare:.4f}s"
        )

    def test_optimizer_overhead_under_15_percent_of_cold_generation(
        self, mixwell_gen, mixwell_static, lazy_gen, lazy_static
    ):
        """The optimizer must ride along nearly for free: in aggregate
        over both fig6 workloads, its wall-clock stays under 15% of cold
        object-code generation — cheap enough to leave ``optimize=True``
        on by default.

        Methodology: "cold generation" is the production path the rest
        of fig6 uses for cold starts — ``gen.to_object_code`` after
        ``gen.cache_clear()``, with the optimizer pinned off.  The
        optimizer's own cost is read back from the pipeline's stage
        accounting (``cache_stats()["stages"]["optimize"]``) on an
        identical cold run with the default ``optimize=True``, with the
        content memo cleared so every template is optimized from
        scratch.  Both quantities are min-of-5 per workload and summed
        across workloads before comparing: the bound is an aggregate
        property of the fig6 suite (per-template fixed costs make tiny
        workloads noisier), matching how the reduction criterion in
        fig7 is stated.
        """
        import time

        from repro.vm import opt

        t_cold = 0.0
        t_opt = 0.0
        for gen, static in (
            (mixwell_gen, mixwell_static),
            (lazy_gen, lazy_static),
        ):
            colds = []
            for _ in range(5):
                gen.cache_clear()
                t0 = time.perf_counter()
                gen.to_object_code([static], optimize=False)
                colds.append(time.perf_counter() - t0)
            opts = []
            for _ in range(5):
                gen.cache_clear()
                opt.clear_memo()
                stages = gen.cache_stats()["stages"]
                before = stages.get("optimize", {}).get("seconds", 0.0)
                gen.to_object_code([static])
                after = gen.cache_stats()["stages"]["optimize"]["seconds"]
                opts.append(after - before)
            t_cold += min(colds)
            t_opt += min(opts)
        assert t_opt < 0.15 * t_cold, (
            f"optimizer {t_opt:.4f}s vs cold generation {t_cold:.4f}s"
            f" ({t_opt / t_cold:.1%} aggregate share)"
        )

    @pytest.mark.parametrize("workload", ["mixwell", "lazy"])
    def test_cache_hit_is_10x_faster_than_regeneration(
        self, workload, mixwell_ext, mixwell_static, lazy_ext, lazy_static
    ):
        """The amortization claim, asserted: applying a generating
        extension to an already-seen static input through the residual
        cache must be at least an order of magnitude faster than
        regenerating the object code."""
        import time

        ext, static = {
            "mixwell": (mixwell_ext, mixwell_static),
            "lazy": (lazy_ext, lazy_static),
        }[workload]

        def best_of(fn, n=5):
            times = []
            for _ in range(n):
                t0 = time.perf_counter()
                fn(ext, static)
                times.append(time.perf_counter() - t0)
            return min(times)

        _generate_object_cached(ext, static)  # warm the cache
        t_regen = best_of(_generate_object_verified)
        t_hit = best_of(_generate_object_cached)
        assert t_hit * 10.0 < t_regen, (
            f"{workload}: cache hit {t_hit:.6f}s"
            f" vs regeneration {t_regen:.6f}s"
        )

    @pytest.mark.parametrize("workload", ["mixwell", "lazy"])
    def test_warm_start_beats_cold_start(
        self,
        workload,
        mixwell_store_gen,
        mixwell_static,
        lazy_store_gen,
        lazy_static,
    ):
        """The persistence claim, asserted: a process that finds the image
        store populated (decode + re-verify) starts faster than one that
        must run the specializer — even ignoring cold BTA costs."""
        import time

        gen, static = {
            "mixwell": (mixwell_store_gen, mixwell_static),
            "lazy": (lazy_store_gen, lazy_static),
        }[workload]
        gen.to_object_code([static])  # populate the store

        def best_of(fn, n=5):
            times = []
            for _ in range(n):
                t0 = time.perf_counter()
                fn()
                times.append(time.perf_counter() - t0)
            return min(times)

        def warm():
            gen.cache_clear()
            rp = gen.to_object_code([static])
            assert rp.stats["disk_hit"]
            return rp

        # Cold timing uses an extension without a store so its produce()
        # path cannot probe L2 — it always runs the specializer.
        from repro.rtcg import make_generating_extension
        from repro.workloads import (
            LAZY_SIGNATURE,
            MIXWELL_SIGNATURE,
            lazy_interpreter,
            mixwell_interpreter,
        )

        cold_gen = {
            "mixwell": lambda: make_generating_extension(
                mixwell_interpreter(), MIXWELL_SIGNATURE
            ),
            "lazy": lambda: make_generating_extension(
                lazy_interpreter(), LAZY_SIGNATURE
            ),
        }[workload]()
        t_cold = best_of(
            lambda: cold_gen.to_object_code([static], use_cache=False)
        )
        t_warm = best_of(warm)
        assert t_warm < t_cold, (
            f"{workload}: warm start {t_warm:.4f}s"
            f" vs cold specialization {t_cold:.4f}s"
        )

    @pytest.mark.parametrize("workload", ["mixwell", "lazy"])
    def test_analysis_overhead_under_quarter_of_cold_spec(
        self, workload, mixwell_gen, mixwell_static, lazy_gen, lazy_static
    ):
        """The safety analysis must stay cheap relative to the work it
        rides along with: `GeneratingExtension` runs it once at
        construction, so the relevant baseline is the cold path from
        interpreter source to residual object code (BTA + congruence +
        specialization) on a fresh extension.  One whole-program
        analysis run must cost less than a quarter of that — leaving
        ``analyze="warn"`` on by default is a fraction of the first
        generation."""
        import time

        from repro.rtcg import make_generating_extension
        from repro.workloads import (
            LAZY_SIGNATURE,
            MIXWELL_SIGNATURE,
            lazy_interpreter,
            mixwell_interpreter,
        )

        gen, static = {
            "mixwell": (mixwell_gen, mixwell_static),
            "lazy": (lazy_gen, lazy_static),
        }[workload]
        program, signature = {
            "mixwell": (mixwell_interpreter, MIXWELL_SIGNATURE),
            "lazy": (lazy_interpreter, LAZY_SIGNATURE),
        }[workload]

        def best_of(fn, n=5):
            times = []
            for _ in range(n):
                t0 = time.perf_counter()
                fn()
                times.append(time.perf_counter() - t0)
            return min(times)

        def cold_spec():
            cold = make_generating_extension(
                program(), signature, analyze="off"
            )
            return cold.to_object_code([static], use_cache=False)

        t_analysis = best_of(lambda: analyze_bta(gen.bta))
        t_cold_spec = best_of(cold_spec)
        assert t_analysis < 0.25 * t_cold_spec, (
            f"{workload}: analysis {t_analysis:.4f}s"
            f" vs cold specialization {t_cold_spec:.4f}s"
        )
