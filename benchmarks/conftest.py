"""Shared fixtures for the benchmark suite.

Each fixture is session-scoped: binding-time analysis and extension
construction happen once, mirroring the paper's methodology where the
program generator is built ahead of the timed generation runs.
"""

from __future__ import annotations

import pytest

from repro.rtcg import make_generating_extension
from repro.workloads import (
    LAZY_SIGNATURE,
    lazy_interpreter,
    lazy_primes_program,
    mixwell_interpreter,
    mixwell_tm_program,
    MIXWELL_SIGNATURE,
)


def pytest_collection_modifyitems(items):
    """Every test in this directory is a benchmark: mark it ``bench`` so
    CI (and quick local runs) can deselect with ``-m "not bench"``."""
    bench = pytest.mark.bench
    for item in items:
        item.add_marker(bench)


@pytest.fixture(scope="session")
def mixwell_gen():
    return make_generating_extension(mixwell_interpreter(), MIXWELL_SIGNATURE)


@pytest.fixture(scope="session")
def lazy_gen():
    return make_generating_extension(lazy_interpreter(), LAZY_SIGNATURE)


@pytest.fixture(scope="session")
def mixwell_ext(mixwell_gen):
    return mixwell_gen.compiled()


@pytest.fixture(scope="session")
def lazy_ext(lazy_gen):
    return lazy_gen.compiled()


@pytest.fixture(scope="session")
def mixwell_static():
    return mixwell_tm_program()


@pytest.fixture(scope="session")
def lazy_static():
    return lazy_primes_program()


# Store-backed extensions for the warm-start columns: the on-disk image
# store (L2) is shared per session, so tests can model a fresh process
# that finds the store already populated.


@pytest.fixture(scope="session")
def mixwell_store_gen(tmp_path_factory):
    store = tmp_path_factory.mktemp("mixwell-image-store")
    return make_generating_extension(
        mixwell_interpreter(), MIXWELL_SIGNATURE, store_dir=store
    )


@pytest.fixture(scope="session")
def lazy_store_gen(tmp_path_factory):
    store = tmp_path_factory.mktemp("lazy-image-store")
    return make_generating_extension(
        lazy_interpreter(), LAZY_SIGNATURE, store_dir=store
    )
