"""Regenerate the paper's evaluation tables (Figs. 6-10) in one run.

Usage::

    python benchmarks/paper_tables.py [--rounds N]

Prints Markdown tables in the shape of the paper's figures, with the
paper's original numbers alongside for comparison.  EXPERIMENTS.md is
produced from this script's output.
"""

from __future__ import annotations

import argparse
import tempfile
import time
from pathlib import Path

from repro.compiler import ObjectCodeBackend, StockCompiler, compile_program
from repro.lang import parse_program, unparse_program
from repro.pe import SourceBackend, analyze
from repro.pe.cogen import compile_generating_extension
from repro.rtcg import make_generating_extension
from repro.runtime.values import datum_to_value
from repro.sexp import write
from repro.workloads import (
    LAZY_SIGNATURE,
    MIXWELL_SIGNATURE,
    lazy_interpreter,
    lazy_primes_program,
    mixwell_interpreter,
    mixwell_tm_program,
)

ROUNDS = 7


def best_of(fn, rounds=None):
    times = []
    for _ in range(rounds or ROUNDS):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


def ms(seconds: float) -> str:
    return f"{seconds * 1000:8.2f}"


def workloads():
    return [
        ("MIXWELL", mixwell_interpreter(), MIXWELL_SIGNATURE, mixwell_tm_program()),
        ("LAZY", lazy_interpreter(), LAZY_SIGNATURE, lazy_primes_program()),
    ]


def stage_breakdown(rows) -> None:
    """Per-stage wall-clock totals from ``cache_stats()["stages"]``.

    ``GeneratingExtension`` times every pipeline stage it drives (BTA,
    congruence lint, safety analysis, specialization, store traffic)
    with cheap always-on counters; fold them under the figure so the
    headline numbers come with their decomposition.
    """
    print("stage breakdown (from `cache_stats()[\"stages\"]`):")
    print()
    print("| workload | stage | calls | total (ms) |")
    print("|---|---|---|---|")
    for name, stages in rows:
        for stage, entry in sorted(stages.items()):
            print(
                f"| {name} | {stage} | {entry['count']} |"
                f" {ms(entry['seconds'])} |"
            )
    print()


def fig6(store_root=None) -> None:
    print("## Figure 6 — Generation speed (ms, best of N)")
    print()
    print(
        "| workload | source code | object code | ratio |"
        " object+verify | verify overhead | object+optimize | opt share |"
        " disk hit (warm start) |"
        " paper src (s) | paper obj (s) | paper ratio |"
    )
    print("|---|---|---|---|---|---|---|---|---|---|---|---|")
    paper = {"MIXWELL": (3.072, 3.770), "LAZY": (1.832, 3.451)}
    store_root = Path(store_root or tempfile.mkdtemp(prefix="repro-fig6-"))
    stage_rows = []
    for name, interp, sig, static in workloads():
        gen = make_generating_extension(interp, sig)
        ext = gen.compiled()
        t_src = best_of(lambda: ext.generate([static], backend=SourceBackend()))
        # Bare and verified columns pin ``optimize=False`` so each column
        # isolates one cost; the optimizer gets its own column.
        t_obj = best_of(
            lambda: ext.generate(
                [static], backend=ObjectCodeBackend(verify=False, optimize=False)
            )
        )
        t_ver = best_of(
            lambda: ext.generate(
                [static], backend=ObjectCodeBackend(verify=True, optimize=False)
            )
        )
        # The optimizer's own wall-clock, as a share of the full
        # verified+optimized generation (content memo cleared so every
        # template is optimized from scratch each round).
        from repro.vm import opt as vm_opt

        t_opt_total = None
        opt_share = 0.0
        for _ in range(ROUNDS):
            vm_opt.clear_memo()
            backend = ObjectCodeBackend(verify=True, optimize=True)
            t0 = time.perf_counter()
            ext.generate([static], backend=backend)
            elapsed = time.perf_counter() - t0
            if t_opt_total is None or elapsed < t_opt_total:
                t_opt_total = elapsed
                opt_share = backend.optimize_seconds / elapsed
        # Warm start: the store is populated, L1 dropped each round, so
        # every application decodes + re-verifies the persisted image.
        store_gen = make_generating_extension(
            interp, sig, store_dir=store_root / name.lower()
        )
        store_gen.to_object_code([static])

        def from_disk():
            store_gen.cache_clear()
            rp = store_gen.to_object_code([static])
            assert rp.stats["disk_hit"]

        t_disk = best_of(from_disk)
        p_src, p_obj = paper[name]
        print(
            f"| {name} | {ms(t_src)} | {ms(t_obj)} |"
            f" {t_obj / t_src:.2f}x | {ms(t_ver)} |"
            f" {t_ver / t_obj:.2f}x | {ms(t_opt_total)} |"
            f" {opt_share:.1%} | {ms(t_disk)} |"
            f" {p_src} | {p_obj} |"
            f" {p_obj / p_src:.2f}x |"
        )
        # One cold generation through the uncompiled extension so the
        # specialize stage shows up next to BTA/lint/safety from
        # construction.
        gen.cache_clear()
        gen.to_object_code([static])
        stage_rows.append((name, gen.cache_stats()["stages"]))
    print()
    stage_breakdown(stage_rows)


def fig7() -> None:
    print("## Figure 7 — Compilation times for the specialization output (ms)")
    print()
    print(
        "| workload | load residual source (print+read+compile) |"
        " src gen + load | direct object gen | direct/two-pass |"
        " residual instrs | optimized instrs | reduction |"
    )
    print("|---|---|---|---|---|---|---|---|")
    for name, interp, sig, static in workloads():
        ext = make_generating_extension(interp, sig).compiled()
        rp = ext.generate([static], backend=SourceBackend())

        def load_route():
            text = "\n".join(write(d) for d in unparse_program(rp.program))
            program = parse_program(text, goal=rp.goal.name)
            compile_program(program, compiler="anf")

        t_src = best_of(lambda: ext.generate([static], backend=SourceBackend()))
        t_load = best_of(load_route)
        t_obj = best_of(
            lambda: ext.generate([static], backend=ObjectCodeBackend())
        )
        # Static payoff of the bytecode optimizer on the residual
        # templates (recursive over nested closure templates).
        plain = ObjectCodeBackend(verify=True, optimize=False)
        ext.generate([static], backend=plain)
        optimized = ObjectCodeBackend(verify=True, optimize=True)
        ext.generate([static], backend=optimized)
        n_before = sum(
            t.instruction_count() for t in plain.templates.values()
        )
        n_after = sum(
            t.instruction_count() for t in optimized.templates.values()
        )
        print(
            f"| {name} | {ms(t_load)} | {ms(t_src + t_load)} |"
            f" {ms(t_obj)} | {t_obj / (t_src + t_load):.2f} |"
            f" {n_before} | {n_after} |"
            f" {(n_before - n_after) / n_before:.1%} |"
        )
    print()


def fig8(store_root=None) -> None:
    print("## Figure 8 — Using RTCG for normal compilation (ms)")
    print()
    print("| workload | BTA | Load | Generate | Compile | Warm start |")
    print("|---|---|---|---|---|---|")
    store_root = Path(store_root or tempfile.mkdtemp(prefix="repro-fig8-"))
    stage_rows = []
    for name, interp, sig, static in workloads():
        t_bta = best_of(lambda: analyze(interp, "DD"), rounds=5)
        bta = analyze(interp, "DD")
        t_load = best_of(
            lambda: compile_generating_extension(bta.annotated), rounds=5
        )
        ext = compile_generating_extension(bta.annotated)
        t_gen = best_of(
            lambda: ext.generate([], backend=ObjectCodeBackend()), rounds=5
        )
        stock = StockCompiler(globals_=frozenset(d.name for d in interp.defs))
        t_compile = best_of(
            lambda: [
                stock.compile_procedure(d.params, d.body, name=d.name.name)
                for d in interp.defs
            ],
            rounds=5,
        )
        # Warm start: what a fresh process pays when the image store is
        # already populated — decode + re-verify instead of BTA + Load +
        # Generate.
        store = store_root / name.lower()
        make_generating_extension(interp, "DD", store_dir=store).to_object_code([])
        warm_gen = make_generating_extension(interp, "DD", store_dir=store)

        def from_disk():
            warm_gen.cache_clear()
            rp = warm_gen.to_object_code([])
            assert rp.stats["disk_hit"]

        t_warm = best_of(from_disk, rounds=5)
        print(
            f"| {name} | {ms(t_bta)} | {ms(t_load)} |"
            f" {ms(t_gen)} | {ms(t_compile)} | {ms(t_warm)} |"
        )
        stage_rows.append((name, warm_gen.cache_stats()["stages"]))
    print()
    stage_breakdown(stage_rows)
    print("paper (s): MIXWELL 2.730 / 4.026 / 0.652 / 0.964;"
          " LAZY 2.253 / 3.217 / 0.568 / 0.604"
          " (warm start has no paper analogue: residual code did not"
          " survive the Scheme 48 session)")
    print()


def fig9() -> None:
    print("## Figure 9 (ours) — Superinstruction dispatch speed")
    print()
    print(
        "| workload | dispatches (base) | dispatches (fused) | reduction |"
        " run base (ms) | run fused (ms) | fused ops |"
    )
    print("|---|---|---|---|---|---|---|")
    from repro.vm import VMProfile, call_named_profiled
    from repro.vm.superinst import fuse_machine, select_superinstructions

    cases = {
        "MIXWELL": (
            mixwell_interpreter(),
            MIXWELL_SIGNATURE,
            mixwell_tm_program(),
            [datum_to_value([1, 0, 1, 1, 0, 1])],
        ),
        "LAZY": (lazy_interpreter(), LAZY_SIGNATURE, lazy_primes_program(), [4]),
    }
    for name, (interp, sig, static, dyn_args) in cases.items():
        gen = make_generating_extension(interp, sig)
        base = gen.to_object_code([static])
        base_profile = VMProfile()
        base.run_profiled(list(dyn_args), base_profile)
        plan = select_superinstructions(base_profile, max_fused=8)
        fused = fuse_machine(base.machine, plan, validate=True)
        fused_profile = VMProfile()
        call_named_profiled(
            fused, base.goal, list(dyn_args), fused_profile
        )
        before = sum(base_profile.opcode_counts.values())
        after = sum(fused_profile.opcode_counts.values())
        t_base = best_of(
            lambda: base.machine.call_named(base.goal, list(dyn_args))
        )
        t_fused = best_of(
            lambda: fused.call_named(base.goal, list(dyn_args))
        )
        print(
            f"| {name} | {before} | {after} |"
            f" {(before - after) / before * 100:.1f}% |"
            f" {ms(t_base)} | {ms(t_fused)} | {len(plan.fused)} |"
        )
    print()
    print(
        "(no paper analogue: the paper's evaluation stops at generation"
        " and compilation speed; this table extends it to the dynamic"
        " dispatch cost of the residual code)"
    )
    print()


def fig10() -> None:
    print("## Figure 10 (ours) — Specialization service latency")
    print()
    print(
        "| workload | cold p50 (ms) | warm p50 (ms) | warm p99 (ms) |"
        " warm speedup | specializer runs |"
    )
    print("|---|---|---|---|---|---|")
    from repro.serve import SpecializationServer, TenantQuota
    from repro.serve.loadgen import run_load

    clients = 10
    with tempfile.TemporaryDirectory(prefix="repro-fig10-") as store:
        with SpecializationServer(
            port=0,
            store_dir=store,
            quota=TenantQuota(max_in_flight=clients),
            max_connections=clients + 4,
        ) as server:
            report = run_load(
                "127.0.0.1", server.port, clients=clients, requests=16,
                think_ms=5.0,
            )
    runs = (report.get("coalescing") or {}).get("specializer_runs", "?")
    for name, entry in report["workloads"].items():
        cold, warm = entry["cold_ms"], entry["warm_ms"]
        speedup = (
            f"{entry['p50_speedup']:.1f}x" if "p50_speedup" in entry else "?"
        )
        print(
            f"| {name.upper()} | {ms(cold['p50'] / 1e3)} |"
            f" {ms(warm['p50'] / 1e3)} | {ms(warm['p99'] / 1e3)} |"
            f" {speedup} | {runs} total |"
        )
    print()
    print(
        f"({clients} concurrent clients x 16 requests over real sockets,"
        f" one tenant; {report['ok']}/{report['total_requests']} ok,"
        f" {report['throughput_rps']:.0f} req/s."
        " Cold = each client's first request per workload — the"
        " stampede is coalesced by the single-flight cache into one"
        " specializer run per key; warm = every later request, an L1"
        " hit.  No paper analogue: the paper's extensions are"
        " in-process; this table prices the same amortization claim"
        " behind a service boundary.)"
    )
    print()


def fig11() -> None:
    print("## Figure 11 (ours) — Distributed warm starts (remote L3 tier)")
    print()
    print(
        "| workload | fully cold (ms) | warm L3, cold local (ms) |"
        " speedup | specializer runs (machine 2) |"
    )
    print("|---|---|---|---|---|")
    from repro.image.remote import ObjectServer

    rounds = min(ROUNDS, 5)
    root = Path(tempfile.mkdtemp(prefix="repro-fig11-"))
    for name, interp, sig, static in workloads():
        with ObjectServer(root / f"{name.lower()}-l3", port=0) as server:
            endpoint = ("127.0.0.1", server.port)
            m1 = make_generating_extension(
                interp, sig, store_dir=root / f"{name.lower()}-m1",
                remote_store=endpoint,
            )
            m1.to_object_code([static])
            assert m1.flush_store()
            m1.close_store()

            def cold(interp=interp, sig=sig, static=static):
                gen = make_generating_extension(interp, sig)
                return best_of(
                    lambda: gen.to_object_code([static]), rounds=1
                )

            t_cold = min(cold() for _ in range(rounds))
            stats = {}
            machines = iter(range(10_000))

            def warm(
                interp=interp, sig=sig, static=static, name=name,
                endpoint=endpoint, stats=stats, machines=machines,
            ):
                gen = make_generating_extension(
                    interp, sig,
                    store_dir=root / f"{name.lower()}-m2-{next(machines)}",
                    remote_store=endpoint,
                )
                t = best_of(lambda: gen.to_object_code([static]), rounds=1)
                stats.update(gen.cache_stats())
                gen.close_store(flush=False)
                return t

            t_warm = min(warm() for _ in range(rounds))
        runs = stats["specializer_runs"]
        print(
            f"| {name} | {ms(t_cold)} | {ms(t_warm)} |"
            f" {t_cold / t_warm:7.1f}x | {runs} |"
        )
    print()
    print(
        "(Machine 1 specializes once and publishes the image to a"
        " shared object server; machine 2 boots with a cold process"
        " AND a cold local store, and its first call is a remote fetch"
        " + decode + re-verify — the network is untrusted, so the"
        " bytecode verifier runs on every remote image before it can"
        " reach the machine.  Extension construction (BTA, congruence,"
        " safety analysis) is identical on both machines and sits"
        " outside the timed region, as in Figure 8.  No paper analogue:"
        " residual code did not leave the Scheme 48 heap, let alone the"
        " machine.)"
    )
    print()


def ablations() -> None:
    print("## Ablations")
    print()
    # A2: specialization speedup.
    print("### A2 — specialization speedup (interpreter vs residual, on the VM)")
    print()
    print("| workload | interpreted (ms) | specialized (ms) | speedup |")
    print("|---|---|---|---|")
    cases = {
        "MIXWELL": (
            mixwell_interpreter(),
            MIXWELL_SIGNATURE,
            mixwell_tm_program(),
            [datum_to_value([1, 0, 1, 1, 0, 1])],
        ),
        "LAZY": (lazy_interpreter(), LAZY_SIGNATURE, lazy_primes_program(), [4]),
    }
    for name, (interp, sig, static, dyn_args) in cases.items():
        compiled_interp = compile_program(interp, compiler="auto")
        machine = compiled_interp.machine()
        ext = make_generating_extension(interp, sig).compiled()
        specialized = ext.generate([static], backend=ObjectCodeBackend())
        t_i = best_of(
            lambda: compiled_interp.run([static, *dyn_args], machine)
        )
        t_s = best_of(lambda: specialized.run(list(dyn_args)))
        print(f"| {name} | {ms(t_i)} | {ms(t_s)} | {t_i / t_s:.1f}x |")
    print()

    # A3: cogen vs interpreted annotations.
    from repro.pe import Specializer

    print("### A3 — compiled generating extension vs interpreting annotations (ms)")
    print()
    print("| workload | specializer | compiled extension | speedup |")
    print("|---|---|---|---|")
    for name, interp, sig, static in workloads():
        gen = make_generating_extension(interp, sig)
        ext = gen.compiled()
        t_interp = best_of(
            lambda: Specializer(gen.bta.annotated, SourceBackend()).run([static])
        )
        t_cogen = best_of(lambda: ext.generate([static]))
        print(f"| {name} | {ms(t_interp)} | {ms(t_cogen)} | {t_interp / t_cogen:.2f}x |")
    print()


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--rounds", type=int, default=7)
    args = parser.parse_args()
    global ROUNDS
    ROUNDS = args.rounds
    fig6()
    fig7()
    fig8()
    fig9()
    fig10()
    fig11()
    ablations()


if __name__ == "__main__":
    main()
