"""The direct Core Scheme interpreter — the system's reference semantics.

Every other execution path (the VM, the specializer, the fused RTCG
system) is tested against this interpreter.
"""

from repro.interp.eval import (
    Closure,
    Env,
    Interpreter,
    PrimProcedure,
    StepLimitExceeded,
    eval_expr,
    run_program,
)

__all__ = [
    "Closure",
    "Env",
    "Interpreter",
    "PrimProcedure",
    "StepLimitExceeded",
    "eval_expr",
    "run_program",
]
