"""A direct interpreter for Core Scheme.

The evaluator is written as an explicit loop over tail positions, so
Scheme-level loops written as tail recursion run in constant Python stack
space — the same discipline the bytecode VM follows.  Non-tail
subexpressions use Python recursion.

An optional step limit supports property-based testing over randomly
generated (possibly divergent) programs.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.lang.ast import (
    App,
    Const,
    Expr,
    If,
    Lam,
    Let,
    Prim,
    Program,
    SetBang,
    Var,
)
from repro.lang.prims import PRIMITIVES, PrimSpec, register_procedure_type
from repro.runtime.errors import SchemeError
from repro.runtime.values import datum_to_value, is_truthy
from repro.sexp.datum import Symbol


class StepLimitExceeded(SchemeError):
    """The interpreter's optional fuel ran out."""


class Env:
    """A linked environment frame."""

    __slots__ = ("bindings", "parent")

    def __init__(self, bindings: dict[Symbol, Any], parent: "Env | None"):
        self.bindings = bindings
        self.parent = parent

    def lookup(self, name: Symbol) -> Any:
        env: Env | None = self
        while env is not None:
            try:
                return env.bindings[name]
            except KeyError:
                env = env.parent
        raise SchemeError(f"unbound variable: {name}")

    def child(self, bindings: dict[Symbol, Any]) -> "Env":
        return Env(bindings, self)


class Closure:
    """A first-class procedure value of the interpreter."""

    __slots__ = ("params", "body", "env", "name")

    def __init__(
        self,
        params: tuple[Symbol, ...],
        body: Expr,
        env: Env | None,
        name: str = "lambda",
    ):
        self.params = params
        self.body = body
        self.env = env
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"#<closure {self.name}/{len(self.params)}>"


class PrimProcedure:
    """A primitive used as a first-class value (``(map car ...)`` style)."""

    __slots__ = ("spec",)

    def __init__(self, spec: PrimSpec):
        self.spec = spec

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"#<primitive {self.spec.name}>"


register_procedure_type(Closure)
register_procedure_type(PrimProcedure)


class Interpreter:
    """Evaluates programs and expressions against the reference semantics."""

    def __init__(self, program: Program | None = None, step_limit: int | None = None):
        self.globals: dict[Symbol, Any] = {}
        self.step_limit = step_limit
        self._steps = 0
        if program is not None:
            self.load(program)

    def load(self, program: Program) -> None:
        for d in program.defs:
            self.globals[d.name] = Closure(d.params, d.body, None, d.name.name)

    # -- procedure application ------------------------------------------------

    def apply(self, fn: Any, args: list) -> Any:
        """Apply a procedure value to arguments (non-tail, from Python)."""
        if isinstance(fn, PrimProcedure):
            return fn.spec.apply(args)
        if not isinstance(fn, Closure):
            raise SchemeError(f"attempt to apply non-procedure {fn!r}")
        if len(args) != len(fn.params):
            raise SchemeError(
                f"{fn.name}: expected {len(fn.params)} arguments, got {len(args)}"
            )
        env = Env(dict(zip(fn.params, args)), fn.env)
        return self.eval(fn.body, env)

    # -- evaluation -------------------------------------------------------------

    def eval(self, expr: Expr, env: Env | None) -> Any:
        """Evaluate ``expr``; tail positions iterate instead of recursing."""
        while True:
            if self.step_limit is not None:
                self._steps += 1
                if self._steps > self.step_limit:
                    raise StepLimitExceeded("step limit exceeded")
            if isinstance(expr, Const):
                return datum_to_value(expr.value)
            if isinstance(expr, Var):
                return self._lookup(expr.name, env)
            if isinstance(expr, Lam):
                return Closure(expr.params, expr.body, env)
            if isinstance(expr, Let):
                value = self.eval(expr.rhs, env)
                env = Env({expr.var: value}, env)
                expr = expr.body
                continue
            if isinstance(expr, If):
                test = self.eval(expr.test, env)
                expr = expr.then if is_truthy(test) else expr.alt
                continue
            if isinstance(expr, Prim):
                spec = PRIMITIVES[expr.op]
                args = [self.eval(a, env) for a in expr.args]
                return spec.apply(args)
            if isinstance(expr, App):
                fn = self.eval(expr.fn, env)
                args = [self.eval(a, env) for a in expr.args]
                if isinstance(fn, PrimProcedure):
                    return fn.spec.apply(args)
                if not isinstance(fn, Closure):
                    raise SchemeError(f"attempt to apply non-procedure {fn!r}")
                if len(args) != len(fn.params):
                    raise SchemeError(
                        f"{fn.name}: expected {len(fn.params)} arguments,"
                        f" got {len(args)}"
                    )
                env = Env(dict(zip(fn.params, args)), fn.env)
                expr = fn.body
                continue
            if isinstance(expr, SetBang):
                raise SchemeError(
                    "set! reached the evaluator; run assignment elimination first"
                )
            raise SchemeError(f"cannot evaluate {type(expr).__name__}")

    def _lookup(self, name: Symbol, env: Env | None) -> Any:
        e = env
        while e is not None:
            if name in e.bindings:
                return e.bindings[name]
            e = e.parent
        if name in self.globals:
            return self.globals[name]
        spec = PRIMITIVES.get(name)
        if spec is not None:
            return PrimProcedure(spec)
        raise SchemeError(f"unbound variable: {name}")

    def call(self, name: Symbol | str, args: Sequence[Any]) -> Any:
        """Call a top-level function by name with run-time values."""
        from repro.sexp.datum import sym

        key = sym(name) if isinstance(name, str) else name
        fn = self.globals.get(key)
        if fn is None:
            raise SchemeError(f"undefined function: {key}")
        return self.apply(fn, list(args))


def run_program(
    program: Program, args: Sequence[Any], step_limit: int | None = None
) -> Any:
    """Run ``program``'s goal function on ``args`` (run-time values).

    Convenience entry point: runs assignment elimination first when the
    program still contains ``set!`` (desugared ``letrec``/named ``let``).
    """
    from repro.lang.assignment import eliminate_assignments, has_assignments

    if any(has_assignments(d.body) for d in program.defs):
        program = eliminate_assignments(program)
    interp = Interpreter(program, step_limit=step_limit)
    return interp.call(program.goal, list(args))


def eval_expr(expr: Expr, step_limit: int | None = None) -> Any:
    """Evaluate a closed expression."""
    return Interpreter(step_limit=step_limit).eval(expr, None)
