"""Command-line driver: ``python -m repro <command> ...``.

Commands
--------
run FILE [ARGS...]
    Parse FILE (Scheme subset), run its goal function on ARGS through the
    bytecode VM.  Arguments are read as Scheme data.

interp FILE [ARGS...]
    Same, through the reference interpreter.

specialize FILE --sig SIG [--static DATUM ...] [--goal NAME]
    Binding-time-analyze FILE against SIG (e.g. ``SD``), specialize to the
    given static arguments, print the residual program.

rtcg FILE --sig SIG [--static DATUM ...] [--dynamic DATUM ...]
    Specialize directly to object code and run it on the dynamic
    arguments; print the result.  Add ``--disassemble`` to dump templates.

annotate FILE --sig SIG [--goal NAME]
    Print the binding-time-annotated program (ACS notation: ``lift``,
    ``if^D``, ``lambda^D``, ``memo-call``).

bta [FILE --sig SIG] [--builtin all|examples|workloads] [--json]
    Print the computed binding-time division: every function variant
    with its per-variant S/D parameter signature, unfold-vs-memoize
    classification, per-call-site unfold/memo decisions, and lift
    sites.  ``--bta mono`` shows the monovariant join instead.  Exit
    status 1 on any congruence violation (the CI self-gate).

disasm FILE [--compiler auto|stock] [--verify] [--cfg] [--json]
    Compile FILE and print the disassembly of every template, with block
    labels at jump targets.  ``--verify`` appends each template's
    verification report; ``--cfg`` appends the basic-block boundaries
    and successor edges; ``--json`` emits templates and findings as a
    JSON object.

opt [FILE [--sig SIG]] [--builtin all|examples|workloads] [--json]
    Run the dataflow bytecode optimizer (:mod:`repro.vm.opt`) over the
    templates of FILE — residual templates when ``--sig`` is given,
    the straight compilation otherwise — and/or the built-in targets.
    Prints before/after disassembly and per-pass instruction-count
    deltas; every optimized template is re-verified and differentially
    executed against its unoptimized twin on both dispatch loops.  Exit
    status 1 on any violation or semantic mismatch (the CI self-gate).

lint [FILE [--sig SIG]] [--builtin all|examples|workloads] [--json]
    Static checks: bytecode-verify every template each target compiles
    to (both backends), and — for targets with a signature — re-check
    the BTA's output with the variant-aware congruence linter.
    ``--division`` appends the division-quality report (polyvariant
    division vs. the monovariant baseline).  Exit status 1 if any error
    is found; ``--json`` emits the findings as a JSON object.

analyze [FILE --sig SIG] [--builtin all|examples|workloads] [--json]
    Specialization-safety analysis (termination + code bloat): prove
    that specializing FILE under SIG terminates with bounded residual
    code, or report ``possible-infinite-specialization`` /
    ``unbounded-polyvariance`` findings naming the offending call
    cycle.  ``--builtin`` additionally sweeps the bundled examples
    and/or the §7 benchmark workloads (the CI self-gate).  Exit status
    1 on any finding.

stats FILE --sig SIG [--static DATUM ...] [--repeat N] [--json]
    Build a generating extension, apply it N times to the same static
    input, and print residual-cache statistics: cold generation time,
    cached lookup time, amortized speedup, hit/miss/eviction counters.
    ``--store DIR`` attaches an on-disk image store (the L2 tier);
    ``--json`` emits the numbers as a JSON object for scripting.

image export FILE --sig SIG [--static DATUM ...] (--store DIR | -o FILE)
    Specialize FILE to the static input and persist the residual object
    code as a binary image: into a content-addressed store (``--store``)
    and/or a standalone image file (``-o``).  Prints the content digest.

image load IMAGE [--store DIR] [--dynamic DATUM ...] [--disassemble]
    Load a persisted image — IMAGE is a file path, or a content digest
    (unique prefix allowed) resolved in ``--store`` — verify its
    bytecode (``--no-verify`` opts out), and run it on the dynamic
    arguments if given.

image ls --store DIR [--json]
    List the store's images: key, content digest, size, goal.

image gc --store DIR [--max-bytes N] [--dry-run] [--json]
    Evict least-recently-used images beyond the size budget and drop
    dangling index references.  ``--dry-run`` reports which objects
    would be evicted and the bytes reclaimed, deleting nothing.

trace [FILE --sig SIG] [--builtin all|examples|workloads] [--json] [-o OUT]
    Run the full pipeline (build extension, generate object code, run
    it) with the span tracer and metrics registry enabled; print a text
    tree of every pipeline stage (BTA, congruence, safety analysis,
    specialize, assemble, verify, caches) with durations, or — with
    ``--json`` — the Chrome trace-event JSON (load it in
    ``chrome://tracing`` or https://ui.perfetto.dev).

profile [FILE --sig SIG] [--builtin all|examples|workloads] [--json]
    Generate object code and run it under the VM's *counting* dispatch
    loop: per-opcode execution counts, per-template invocation and
    instruction counts, and the hot-template ranking.  ``--repeat N``
    runs the residual program N times (counts accumulate).

serve [--host H] [--port P] [--store DIR] [--trust TENANT ...]
    Run the specialization service: a concurrent multi-tenant server
    speaking the length-prefixed frame protocol of
    :mod:`repro.serve.protocol`.  Each tenant gets its own generating
    extensions, residual caches and quotas; untrusted tenants pass
    through forbid-mode admission control.  Prints ``listening on
    HOST:PORT`` (stderr) once bound; ``--port 0`` picks an ephemeral
    port.  Stop with SIGINT/SIGTERM.

loadgen [--host H --port P] [--clients N] [--requests N] [--json]
    Drive concurrent clients against a specialization server and report
    cold/warm latency percentiles, throughput, and provenance counts
    over the §7 benchmark workloads.  Without ``--host``/``--port`` an
    in-process server is started for the run.  Exit status 1 on any
    protocol error or non-BUSY request error.

combinators
    Print the generated code-generation combinator module (Act 3's file).

Exit status: 0 on success, 1 on any reported error (bad input file,
parse error, specialization failure, corrupt image), 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.compiler import ObjectCodeBackend, compile_program
from repro.interp import run_program
from repro.lang import parse_program, unparse_def, unparse_program
from repro.lang.prelude import with_prelude
from repro.pe import SourceBackend, Specializer, analyze
from repro.pe.errors import PEError
from repro.lang.prims import write_value
from repro.runtime.errors import SchemeError
from repro.runtime.values import datum_to_value
from repro.sexp import read, write
from repro.vm import disassemble


def _load(path: str, goal: str | None, prelude: bool):
    text = Path(path).read_text()
    if prelude:
        return with_prelude(text, goal=goal)
    return parse_program(text, goal=goal)


def _data(items: list[str]) -> list:
    return [datum_to_value(read(item)) for item in items]


def cmd_run(args: argparse.Namespace) -> int:
    program = _load(args.file, args.goal, args.prelude)
    compiled = compile_program(program, compiler="auto", verify=args.verify)
    print(write_value(compiled.run(_data(args.args))))
    return 0


def cmd_interp(args: argparse.Namespace) -> int:
    program = _load(args.file, args.goal, args.prelude)
    print(write_value(run_program(program, _data(args.args))))
    return 0


def cmd_specialize(args: argparse.Namespace) -> int:
    program = _load(args.file, args.goal, args.prelude)
    result = analyze(
        program,
        args.sig,
        memo_hints=args.memo or (),
        unfold_hints=args.unfold or (),
    )
    spec = Specializer(
        result.annotated, SourceBackend(), dif_strategy=args.dif_strategy
    )
    residual = spec.run(_data(args.static or []))
    for d in unparse_program(residual.program):
        print(write(d))
    print(
        f";; goal: {residual.goal}  dynamic params:"
        f" ({' '.join(p.name for p in residual.goal_params)})",
        file=sys.stderr,
    )
    return 0


def cmd_rtcg(args: argparse.Namespace) -> int:
    program = _load(args.file, args.goal, args.prelude)
    result = analyze(
        program,
        args.sig,
        memo_hints=args.memo or (),
        unfold_hints=args.unfold or (),
    )
    backend = ObjectCodeBackend(verify=args.verify)
    spec = Specializer(
        result.annotated, backend, dif_strategy=args.dif_strategy
    )
    residual = spec.run(_data(args.static or []))
    if args.disassemble:
        for name, template in backend.templates.items():
            print(disassemble(template), file=sys.stderr)
    if args.dynamic is not None:
        print(write_value(residual.run(_data(args.dynamic))))
    return 0


def cmd_annotate(args: argparse.Namespace) -> int:
    program = _load(args.file, args.goal, args.prelude)
    result = analyze(
        program,
        args.sig,
        memo_hints=args.memo or (),
        unfold_hints=args.unfold or (),
    )
    for d in result.annotated.defs:
        marker = "memoized" if d.residual else "unfolded"
        bts = "".join(bt.value for bt in d.bts)
        print(f";; {d.name}  [{bts}]  ({marker})")
        from repro.lang.ast import Def

        print(write(unparse_def(Def(d.name, d.params, d.body))))
    return 0


def _cfg_entry(template) -> list[dict]:
    """JSON-ready basic-block summary of a template's CFG."""
    from repro.vm.cfg import build_cfg

    from repro.vm.instructions import Op

    cfg = build_cfg(template)
    preds = cfg.predecessors()
    return [
        {
            "start": block.start,
            "end": block.end,
            "terminator": Op(block.terminator[0]).name,
            "succs": list(block.succs),
            "preds": list(preds[block.start]),
            "falls_off": block.falls_off,
        }
        for block in (cfg.blocks[leader] for leader in cfg.order)
    ]


def _print_cfg(name: str, blocks: list[dict]) -> None:
    print(f";; cfg {name}: {len(blocks)} block(s)")
    for b in blocks:
        succs = ", ".join(f"L{s}" for s in b["succs"]) or "(exit)"
        if b["falls_off"]:
            succs += "  !falls-off-end"
        preds = ", ".join(f"L{p}" for p in b["preds"]) or "(entry)"
        print(
            f";;   L{b['start']:<4} [{b['start']}..{b['end']})"
            f"  {b['terminator']:<14} -> {succs:<18} <- {preds}"
        )


def cmd_disasm(args: argparse.Namespace) -> int:
    import json

    from repro.vm.verify import check_template

    program = _load(args.file, args.goal, args.prelude)
    compiled = compile_program(
        program, compiler=args.compiler, verify=False
    )
    status = 0
    entries = []
    for name, template in compiled.templates.items():
        entry: dict = {
            "template": str(name),
            "disassembly": disassemble(template),
        }
        if args.cfg:
            entry["cfg"] = _cfg_entry(template)
        if args.verify:
            report = check_template(template)
            entry["verified"] = report.ok
            entry["violations"] = [str(v) for v in report.violations]
            if not report.ok:
                status = 1
        entries.append(entry)
    if args.json:
        print(json.dumps({"templates": entries, "ok": status == 0}, indent=2))
        return status
    for entry in entries:
        print(entry["disassembly"])
        if args.cfg:
            _print_cfg(entry["template"], entry["cfg"])
        if args.verify:
            if entry["violations"]:
                print("\n".join(entry["violations"]))
            else:
                print(f";; {entry['template']}: verified ok")
        print()
    return status


def _opt_template_entries(named_templates) -> tuple[list[dict], bool]:
    """Optimize each ``(name, template)``; entries plus an ok flag.

    Each optimized template is independently re-verified (translation
    validation, beyond the optimizer's own ``validate=True`` check) —
    ``ok`` drops on any violation or on a
    :class:`~repro.vm.opt.TranslationValidationError`.
    """
    from repro.vm.opt import TranslationValidationError, optimize
    from repro.vm.verify import check_template

    entries: list[dict] = []
    ok = True
    for name, template in named_templates:
        try:
            result = optimize(template)
        except TranslationValidationError as exc:
            entries.append({
                "template": str(name),
                "error": str(exc),
                "verified": False,
            })
            ok = False
            continue
        report = check_template(result.template)
        entry = {
            "template": str(name),
            "before_instructions": result.before_instructions,
            "after_instructions": result.after_instructions,
            "removed": result.removed,
            "passes": dict(sorted(result.passes.items())),
            "skipped": result.skipped,
            "verified": not report.violations,
            "violations": [str(v) for v in report.violations],
            "before_disassembly": disassemble(template),
            "after_disassembly": disassemble(result.template),
        }
        if report.violations:
            ok = False
        entries.append(entry)
    return entries, ok


def _opt_differential(run_pairs) -> tuple[dict, bool]:
    """Differentially execute unoptimized/optimized twins.

    ``run_pairs`` maps a dispatch-loop label to a ``(run_base,
    run_optimized)`` pair of thunks; results are compared by their
    written (external) representation.
    """
    runs: dict = {}
    agree = True
    for label, (run_base, run_opt) in run_pairs.items():
        base_repr = write_value(run_base())
        opt_repr = write_value(run_opt())
        same = base_repr == opt_repr
        runs[label] = {
            "unoptimized": base_repr,
            "optimized": opt_repr,
            "agree": same,
        }
        agree = agree and same
    return runs, agree


def _superinst_report(
    machine, goal, dynamics, max_fused: int
) -> tuple[dict, bool]:
    """Profile → plan → fuse → validate one machine; report plus ok flag.

    The profiled base run supplies both the adjacency counts the
    selection scores and the baseline value; the fused machine is then
    run twice — on the production loop (differential check against the
    baseline) and on the counting loop (the dispatch-retired
    comparison the report is about).
    """
    from repro.vm.profile import VMProfile, call_named_profiled
    from repro.vm.superinst import (
        FusionValidationError,
        fuse_machine,
        fusion_table,
        select_superinstructions,
    )

    base_profile = VMProfile()
    base_value = call_named_profiled(
        machine, goal, list(dynamics), base_profile
    )
    before = sum(base_profile.opcode_counts.values())
    plan = select_superinstructions(base_profile, max_fused=max_fused)
    report: dict = {
        "dispatches_before": before,
        "superinstructions": [],
        "dispatches_after": before,
        "dispatch_reduction": 0.0,
    }
    if not plan:
        report["note"] = "no fusion candidates in the profile"
        return report, True
    sites: dict[str, int] = {}
    try:
        fused = fuse_machine(machine, plan, validate=True, stats=sites)
    except FusionValidationError as exc:
        report["error"] = str(exc)
        return report, False
    report["superinstructions"] = fusion_table(plan, sites)
    fused_value = fused.call_named(goal, list(dynamics))
    fused_profile = VMProfile()
    counting_value = call_named_profiled(
        fused, goal, list(dynamics), fused_profile
    )
    after = sum(fused_profile.opcode_counts.values())
    base_repr = write_value(base_value)
    agree = (
        base_repr == write_value(fused_value)
        and base_repr == write_value(counting_value)
    )
    report["dispatches_after"] = after
    report["dispatch_reduction"] = (before - after) / before if before else 0.0
    report["differential"] = {
        "base": base_repr,
        "fused": write_value(fused_value),
        "fused_counting": write_value(counting_value),
        "agree": agree,
    }
    return report, agree


def _cmd_opt_superinstructions(args, spec_targets, plain_file) -> int:
    """The ``opt --superinstructions`` mode: the profile-guided pass."""
    import json

    target_reports: dict[str, dict] = {}
    ok = True

    if plain_file:
        if not args.dynamic:
            print(
                "error: opt --superinstructions FILE needs --dynamic"
                " arguments to profile",
                file=sys.stderr,
            )
            return 2
        program = _load(plain_file, args.goal, args.prelude)
        compiled = compile_program(program, compiler="auto", optimize=True)
        report, t_ok = _superinst_report(
            compiled.machine(), compiled.goal, _data(args.dynamic),
            args.max_fused,
        )
        target_reports[plain_file] = report
        ok = ok and t_ok

    if spec_targets:
        from repro.rtcg import GeneratingExtension

        for label, program, sig, goal, statics, dynamics in spec_targets:
            gen = GeneratingExtension(program, sig, goal=goal)
            base = gen.to_object_code(
                statics, dif_strategy=args.dif_strategy
            )
            report, t_ok = _superinst_report(
                base.machine, base.goal, dynamics, args.max_fused
            )
            target_reports[label] = report
            ok = ok and t_ok

    if args.json:
        print(json.dumps({"targets": target_reports, "ok": ok}, indent=2))
        return 0 if ok else 1

    for label, report in target_reports.items():
        print(f";; {label}")
        if "error" in report:
            print(f";;   validation FAILED: {report['error']}")
        for row in report["superinstructions"]:
            print(
                f";;   {row['name']}: {row['sites']} site(s),"
                f" saves {row['dispatches_saved_per_execution']}"
                " dispatch(es) per execution"
            )
        if "note" in report:
            print(f";;   {report['note']}")
        if "differential" in report:
            run = report["differential"]
            verdict = (
                f"ok (result: {run['fused']})" if run["agree"]
                else f"MISMATCH ({run['base']} vs {run['fused']}"
                f" / {run['fused_counting']})"
            )
            print(f";;   differential: {verdict}")
        print(
            f";;   dispatches: {report['dispatches_before']} ->"
            f" {report['dispatches_after']}"
            f"  (-{report['dispatch_reduction'] * 100:.1f}%)"
        )
        print()
    print(";; opt: ok" if ok else ";; opt: FAILED")
    return 0 if ok else 1


def cmd_opt(args: argparse.Namespace) -> int:
    import json

    from repro.vm.machine import VmClosure
    from repro.vm.profile import VMProfile, call_named_profiled

    # Specialization targets (--builtin, and FILE when --sig is given)
    # optimize *residual* templates; a FILE without --sig optimizes the
    # straight compilation of the program itself.
    plain_file = args.file if args.file and not args.sig else None
    if plain_file:
        args.file = None
    spec_targets = (
        _runnable_targets(args) if args.builtin or args.file else []
    )
    if plain_file:
        args.file = plain_file
    if not spec_targets and not plain_file:
        raise ValueError("opt needs FILE [--sig SIG], and/or --builtin")

    if args.superinstructions:
        return _cmd_opt_superinstructions(args, spec_targets, plain_file)

    target_reports: dict[str, dict] = {}
    ok = True

    if plain_file:
        program = _load(plain_file, args.goal, args.prelude)
        base = compile_program(program, compiler="auto", optimize=False)
        optd = compile_program(program, compiler="auto", optimize=True)
        entries, t_ok = _opt_template_entries(sorted(
            base.templates.items(), key=lambda item: item[0].name
        ))
        report: dict = {"templates": entries}
        if args.dynamic:
            dynamics = _data(args.dynamic)
            runs, agree = _opt_differential({
                "machine": (
                    lambda: base.run(dynamics),
                    lambda: optd.run(dynamics),
                ),
                "profiled": (
                    lambda: call_named_profiled(
                        base.machine(), base.goal, dynamics, VMProfile()
                    ),
                    lambda: call_named_profiled(
                        optd.machine(), optd.goal, dynamics, VMProfile()
                    ),
                ),
            })
            report["differential"] = runs
            t_ok = t_ok and agree
        target_reports[plain_file] = report
        ok = ok and t_ok

    if spec_targets:
        from repro.rtcg import GeneratingExtension

        for label, program, sig, goal, statics, dynamics in spec_targets:
            gen = GeneratingExtension(program, sig, goal=goal)
            base = gen.to_object_code(
                statics, dif_strategy=args.dif_strategy, optimize=False
            )
            optd = gen.to_object_code(
                statics, dif_strategy=args.dif_strategy, optimize=True
            )
            named = sorted(
                (
                    (name, value.template)
                    for name, value in base.machine.globals.items()
                    if isinstance(value, VmClosure)
                ),
                key=lambda item: item[0].name,
            )
            entries, t_ok = _opt_template_entries(named)
            runs, agree = _opt_differential({
                "machine": (
                    lambda b=base: b.run(dynamics),
                    lambda o=optd: o.run(dynamics),
                ),
                "profiled": (
                    lambda b=base: b.run_profiled(dynamics, VMProfile()),
                    lambda o=optd: o.run_profiled(dynamics, VMProfile()),
                ),
            })
            target_reports[label] = {
                "templates": entries,
                "differential": runs,
            }
            ok = ok and t_ok and agree

    for report in target_reports.values():
        entries = [e for e in report["templates"] if "error" not in e]
        before = sum(e["before_instructions"] for e in entries)
        after = sum(e["after_instructions"] for e in entries)
        report["before_instructions"] = before
        report["after_instructions"] = after
        report["reduction"] = (before - after) / before if before else 0.0

    if args.json:
        print(json.dumps(
            {"targets": target_reports, "ok": ok}, indent=2
        ))
        return 0 if ok else 1

    for label, report in target_reports.items():
        print(f";; {label}")
        for e in report["templates"]:
            if "error" in e:
                print(f";; template {e['template']}: {e['error']}")
                continue
            passes = ", ".join(
                f"{name} x{n}" for name, n in e["passes"].items()
            ) or "none"
            print(
                f";; template {e['template']}:"
                f" {e['before_instructions']} ->"
                f" {e['after_instructions']} instruction(s)"
                f"  (passes: {passes})"
            )
            print(e["before_disassembly"])
            print(";;   -- optimized to -->")
            print(e["after_disassembly"])
            if e["violations"]:
                print("\n".join(";; " + v for v in e["violations"]))
        if "differential" in report:
            for loop, run in report["differential"].items():
                verdict = (
                    f"ok (result: {run['optimized']})" if run["agree"]
                    else f"MISMATCH ({run['unoptimized']}"
                    f" vs {run['optimized']})"
                )
                print(f";; differential [{loop}]: {verdict}")
        print(
            f";; total: {report['before_instructions']} ->"
            f" {report['after_instructions']} instruction(s)"
            f"  (-{report['reduction'] * 100:.1f}%)"
        )
        print()
    print(";; opt: ok" if ok else ";; opt: FAILED")
    return 0 if ok else 1


def cmd_lint(args: argparse.Namespace) -> int:
    import json

    from repro.pe.check import check_bta
    from repro.vm.verify import check_template

    targets = _gather_targets(args, sig_optional=True)
    multi = len(targets) > 1
    errors = 0
    warnings = 0
    bytecode_findings = []
    bta_findings = []
    division_reports = []
    linted_sig = False
    for label, program, sig, goal in targets:
        for backend in ("stock", "auto"):
            compiled = compile_program(program, compiler=backend, verify=False)
            for name, template in compiled.templates.items():
                report = check_template(template)
                if report.violations:
                    finding = {
                        "backend": backend,
                        "template": str(name),
                        "violations": [str(v) for v in report.violations],
                        "pretty": report.pretty(),
                    }
                    if multi:
                        finding["target"] = label
                    bytecode_findings.append(finding)
                errors += len(report.errors)
                warnings += len(report.warnings)
        if not sig:
            continue
        linted_sig = True
        memo = args.memo or () if label == args.file else ()
        unfold = args.unfold or () if label == args.file else ()
        result = analyze(
            program, sig, memo_hints=memo, unfold_hints=unfold, bta=args.bta
        )
        congruence = check_bta(result)
        prefix = f"{label}: " if multi else ""
        bta_findings.extend(prefix + str(v) for v in congruence)
        errors += len(congruence)
        if args.division and args.bta == "poly":
            from repro.analysis import analyze_division

            division_reports.append((
                label,
                analyze_division(
                    program, sig, memo_hints=memo, unfold_hints=unfold
                ),
            ))
    if args.json:
        payload = {
            "clean": errors == 0,
            "errors": errors,
            "warnings": warnings,
            "bytecode": [
                {k: f[k] for k in f if k != "pretty"}
                for f in bytecode_findings
            ],
            "bta": bta_findings,
        }
        if division_reports:
            payload["division"] = {
                label: report.to_json()
                for label, report in division_reports
            }
        print(json.dumps(payload, indent=2))
        return 1 if errors else 0
    for f in bytecode_findings:
        where = f" {f['target']}" if "target" in f else ""
        print(f";; [{f['backend']}]{where} template {f['template']}:")
        print(f["pretty"])
    for v in bta_findings:
        print(f";; [bta] {v}")
    for label, report in division_reports:
        print(f";; [division] {label}:")
        for line in str(report).splitlines():
            print(";;   " + line)
    noun = "signature and bytecode" if linted_sig else "bytecode"
    if errors:
        print(f";; lint: {errors} error(s), {warnings} warning(s)")
        return 1
    print(f";; lint: {noun} clean ({warnings} warning(s))")
    return 0


# The built-in targets of ``analyze --builtin``: every Scheme program
# embedded in examples/ (file, module constant, signature, goal) plus
# the two §7 benchmark workloads.  CI runs this as a self-gate.
_EXAMPLE_PROGRAMS = (
    ("quickstart.py", "POWER", "DS", "power"),
    ("rtcg_matcher.py", "MATCHER", "SD", "match"),
    ("incremental_rtcg.py", "ENGINE", "SD", "matches?"),
)


def _builtin_targets(which: str) -> list:
    """(label, program, signature, goal) tuples for --builtin."""
    targets = []
    if which in ("workloads", "all"):
        from repro.workloads import (
            LAZY_SIGNATURE,
            MIXWELL_SIGNATURE,
            lazy_interpreter,
            mixwell_interpreter,
        )

        targets.append(
            ("workload:mixwell", mixwell_interpreter(), MIXWELL_SIGNATURE, None)
        )
        targets.append(
            ("workload:lazy", lazy_interpreter(), LAZY_SIGNATURE, None)
        )
    if which in ("examples", "all"):
        import importlib.util

        examples = Path(__file__).resolve().parents[2] / "examples"
        if not examples.is_dir():
            raise OSError(
                f"examples directory not found at {examples}"
                " (--builtin examples needs a repository checkout)"
            )
        for fname, const, sig, goal in _EXAMPLE_PROGRAMS:
            spec = importlib.util.spec_from_file_location(
                f"_repro_example_{fname[:-3]}", examples / fname
            )
            module = importlib.util.module_from_spec(spec)
            spec.loader.exec_module(module)
            targets.append(
                (f"example:{fname}:{const}", getattr(module, const), sig, goal)
            )
    return targets


def cmd_analyze(args: argparse.Namespace) -> int:
    import json

    from repro.analysis import analyze_program

    targets = _gather_targets(args)
    reports = []
    total = 0
    for label, program, sig, goal in targets:
        memo = args.memo or () if label == args.file else ()
        unfold = args.unfold or () if label == args.file else ()
        report = analyze_program(
            program, sig, goal=goal, memo_hints=memo, unfold_hints=unfold,
            bta=args.bta, with_division=args.division,
        )
        reports.append((label, report))
        total += len(report.findings)
    if args.json:
        print(json.dumps(
            {
                "safe": total == 0,
                "programs": {
                    label: report.to_json() for label, report in reports
                },
            },
            indent=2,
        ))
        return 1 if total else 0
    for label, report in reports:
        print(f";; {label}: {report}")
        if args.metrics and report.metrics:
            for name, entry in sorted(report.metrics.items()):
                print(f";;   {name}: {entry}")
    if total:
        print(f";; analyze: {total} finding(s) across {len(reports)} program(s)")
        return 1
    print(f";; analyze: {len(reports)} program(s), no findings")
    return 0


def cmd_bta(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.division import lift_sites
    from repro.pe.check import check_bta

    targets = _gather_targets(args)
    entries = {}
    violations_total = 0
    for label, program, sig, goal in targets:
        memo = args.memo or () if label == args.file else ()
        unfold = args.unfold or () if label == args.file else ()
        result = analyze(
            program, sig, memo_hints=memo, unfold_hints=unfold,
            bta=args.bta, max_variants=args.max_variants,
        )
        violations = check_bta(result)
        violations_total += len(violations)
        variants = []
        for d in result.annotated.defs:
            info = result.variants.get(d.name)
            variants.append({
                "name": str(d.name),
                "display": info.display if info else str(d.name),
                "origin": str(result.origin_of(d.name)),
                "signature": "".join(bt.value for bt in d.bts),
                "classification": "memo" if d.residual else "unfold",
                "call_sites": list(info.call_sites) if info else [],
                "lift_sites": list(lift_sites(d.body)),
                "decisions": [
                    {"path": path, "callee": str(callee), "decision": dec}
                    for path, callee, dec in result.decisions.get(d.name, ())
                ],
            })
        entries[label] = {
            "mode": result.mode,
            "signature": sig,
            "widened": [str(o) for o in sorted(result.widened, key=str)],
            "variants": variants,
            "congruence_violations": [str(v) for v in violations],
        }
    if args.json:
        print(json.dumps(
            {"clean": violations_total == 0, "programs": entries}, indent=2
        ))
        return 1 if violations_total else 0
    for label, entry in entries.items():
        widened = (
            f", widened: {', '.join(entry['widened'])}"
            if entry["widened"] else ""
        )
        print(
            f";; {label} [{entry['signature']}] {entry['mode']}:"
            f" {len(entry['variants'])} definition(s){widened}"
        )
        for v in entry["variants"]:
            print(f";;   {v['display']} [{v['signature']}]"
                  f" ({v['classification']})")
            for d in v["decisions"]:
                print(f";;     call {d['callee']} at {d['path']}:"
                      f" {d['decision']}")
            for site in v["lift_sites"]:
                print(f";;     lift at {site}")
            for site in v["call_sites"]:
                print(f";;     variant from {site}")
        for vio in entry["congruence_violations"]:
            print(f";;   violation: {vio}")
        print()
    if violations_total:
        print(f";; bta: {violations_total} congruence violation(s)")
        return 1
    print(f";; bta: {len(entries)} program(s), congruent")
    return 0


# Sample static/dynamic arguments (Scheme data) for the built-in
# targets, so ``trace``/``profile --builtin`` exercise the whole
# pipeline end to end, including running the residual code.
_BUILTIN_RUN_ARGS = {
    "example:quickstart.py:POWER": (["5"], ["2"]),
    "example:rtcg_matcher.py:MATCHER": (
        ["(config (host (? h)) (port (? p)) (host (? h)))"],
        ["(config (host a) (port 80) (host a))"],
    ),
    "example:incremental_rtcg.py:ENGINE": (
        ["((age gt 30) (dept eq engineering) (level lt 5))"],
        ["((age 41) (dept engineering) (level 3))"],
    ),
}


def _builtin_run_args(label: str) -> tuple:
    """Sample ``(statics, dynamics)`` run arguments for a builtin target."""
    if label in _BUILTIN_RUN_ARGS:
        statics_raw, dynamics_raw = _BUILTIN_RUN_ARGS[label]
        return _data(statics_raw), _data(dynamics_raw)
    if label == "workload:mixwell":
        from repro.workloads import mixwell_tm_program

        return [mixwell_tm_program()], [datum_to_value([1, 0, 1, 1, 0, 1])]
    if label == "workload:lazy":
        from repro.workloads import lazy_primes_program

        return [lazy_primes_program()], [4]
    # pragma: no cover - new builtin without run args
    raise ValueError(f"no sample run arguments for builtin {label}")


def _gather_targets(
    args: argparse.Namespace,
    runnable: bool = False,
    sig_optional: bool = False,
) -> list:
    """Sample-program loading shared by every multi-target subcommand.

    ``lint``/``analyze``/``bta``/``opt``/``trace``/``profile`` all accept
    ``--builtin all|examples|workloads`` targets plus an optional FILE;
    this is their one loader with one error path: every usage problem
    (missing FILE and ``--builtin``, FILE without a required ``--sig``)
    raises :class:`ValueError`, which :func:`main` prints as
    ``error: ...`` and turns into exit status 1 — never a traceback.

    Entries are ``(label, program, sig, goal)`` tuples, extended with
    ``(statics, dynamics)`` sample run arguments when ``runnable``
    (from ``--static``/``--dynamic`` for a FILE target, from the baked-in
    sample inputs for builtin targets).  Programs are always parsed —
    embedded example sources are run through the parser here.
    """
    targets = []
    if getattr(args, "builtin", None):
        for label, program, sig, goal in _builtin_targets(args.builtin):
            if isinstance(program, str):
                program = parse_program(program, goal=goal)
            entry = (label, program, sig, goal)
            if runnable:
                entry += _builtin_run_args(label)
            targets.append(entry)
    if getattr(args, "file", None):
        if not args.sig and not sig_optional:
            raise ValueError(f"{args.command} FILE needs --sig")
        program = _load(args.file, args.goal, args.prelude)
        entry = (args.file, program, args.sig, None)
        if runnable:
            entry += (_data(args.static or []), _data(args.dynamic or []))
        targets.append(entry)
    if not targets:
        sig = " [--sig SIG]" if sig_optional else " --sig SIG"
        raise ValueError(
            f"{args.command} needs FILE{sig}, and/or --builtin"
        )
    return targets


def _runnable_targets(args: argparse.Namespace) -> list:
    """(label, program, sig, goal, statics, dynamics) for trace/profile."""
    return _gather_targets(args, runnable=True)


def cmd_trace(args: argparse.Namespace) -> int:
    import json

    from repro import obs
    from repro.rtcg import GeneratingExtension

    targets = _runnable_targets(args)
    extensions = []
    with obs.tracing() as (tracer, metrics):
        for label, program, sig, goal, statics, dynamics in targets:
            with obs.span("pipeline", target=label):
                gen = GeneratingExtension(program, sig, goal=goal)
                residual = gen.to_object_code(
                    statics, dif_strategy=args.dif_strategy
                )
                with obs.span("vm.run", target=label):
                    residual.run(dynamics)
            extensions.append((label, gen))
    if args.json:
        trace = tracer.chrome_trace()
        if args.out:
            with open(args.out, "w") as fh:
                json.dump(trace, fh, indent=2)
            print(f";; wrote {len(trace['traceEvents'])} events to {args.out}")
        else:
            print(json.dumps(trace, indent=2))
        return 0
    print(tracer.report())
    print()
    print(";; stage totals")
    for name, entry in tracer.stage_totals().items():
        print(
            f";;   {name:<28} x{entry['count']:<4}"
            f" {entry['seconds'] * 1e3:9.3f} ms"
        )
    print(";; metrics")
    for line in metrics.report().splitlines():
        print(";; " + line)
    for label, gen in extensions:
        stages = gen.cache_stats()["stages"]
        print(f";; stages[{label}]")
        for name, entry in stages.items():
            print(
                f";;   {name:<28} x{entry['count']:<4}"
                f" {entry['seconds'] * 1e3:9.3f} ms"
            )
    if args.out:
        with open(args.out, "w") as fh:
            tracer.write_chrome_trace(fh)
        print(f";; wrote Chrome trace to {args.out}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    import json

    from repro.rtcg import GeneratingExtension
    from repro.vm.profile import VMProfile

    targets = _runnable_targets(args)
    results = []
    for label, program, sig, goal, statics, dynamics in targets:
        gen = GeneratingExtension(program, sig, goal=goal)
        residual = gen.to_object_code(
            statics, dif_strategy=args.dif_strategy
        )
        profile = VMProfile()
        value = None
        for _ in range(args.repeat):
            value = residual.run_profiled(dynamics, profile)
        results.append((label, profile, value))
    if args.json:
        print(json.dumps(
            {label: profile.to_json() for label, profile, _ in results},
            indent=2,
        ))
        return 0
    for label, profile, value in results:
        result = write_value(value) if args.repeat > 0 else "(not run)"
        print(f";; {label}  (result: {result})")
        for line in profile.report(top=args.top).splitlines():
            print(";; " + line)
        print()
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.rtcg import GeneratingExtension

    program = _load(args.file, args.goal, args.prelude)
    gen = GeneratingExtension(
        program,
        args.sig,
        memo_hints=args.memo or (),
        unfold_hints=args.unfold or (),
        cache_size=args.cache_size,
        store_dir=args.store,
        remote_store=args.remote,
    )
    static = _data(args.static or [])
    generate = {
        "object": lambda: gen.to_object_code(
            static, dif_strategy=args.dif_strategy
        ),
        "source": lambda: gen.to_source(
            static, dif_strategy=args.dif_strategy
        ),
    }[args.backend]

    t0 = time.perf_counter()
    residual = generate()
    cold = time.perf_counter() - t0
    warm_times = []
    for _ in range(max(args.repeat - 1, 1)):
        t0 = time.perf_counter()
        generate()
        warm_times.append(time.perf_counter() - t0)
    warm = min(warm_times)
    # With a remote tier attached, drain the write-behind queue before
    # reporting (and before the process exits with images still queued).
    gen.flush_store()
    stats = gen.cache_stats()
    speedup = cold / warm if warm > 0 else float("inf")
    if args.json:
        print(json.dumps({
            "backend": args.backend,
            "dif_strategy": args.dif_strategy,
            "residual_defs": residual.stats.get("residual_defs"),
            "cold_generation_ms": cold * 1e3,
            "cached_application_ms": warm * 1e3,
            "amortized_speedup": speedup,
            "disk_hit": bool(residual.stats.get("disk_hit", False)),
            "cache": stats,
        }, indent=2, default=str))
        return 0
    print(f"backend:             {args.backend}")
    print(f"dif strategy:        {args.dif_strategy}")
    print(f"residual defs:       {residual.stats.get('residual_defs', '?')}")
    print(f"cold generation:     {cold * 1e3:.3f} ms")
    print(f"cached application:  {warm * 1e3:.3f} ms")
    print(f"amortized speedup:   {speedup:.1f}x")
    print(
        f"cache:               {stats['hits']} hit(s),"
        f" {stats['misses']} miss(es), {stats['evictions']} eviction(s),"
        f" {stats['entries']}/{stats['maxsize']} entries"
    )
    print(
        f"generation time:     {stats['generation_seconds'] * 1e3:.3f} ms"
        " total in cache misses"
    )
    if "store" in stats:
        ss = stats["store"]
        print(
            f"image store:         {ss['hits']} hit(s), {ss['misses']}"
            f" miss(es), {ss['writes']} write(s) at {ss['root']}"
        )
        if "remote" in ss:
            rs = ss["remote"]
            print(
                f"remote tier:         {rs['remote_hits']} hit(s),"
                f" {rs['remote_misses']} miss(es),"
                f" {rs['wb_flushed']} pushed,"
                f" {rs['wb_dropped']} dropped at {rs['endpoint']}"
                f"{' [down]' if rs['down'] else ''}"
            )
    return 0


def _image_store(args: argparse.Namespace):
    from repro.image import ImageStore

    return ImageStore(args.store)


def _resolve_digest(store, prefix: str) -> str:
    """Resolve a (possibly abbreviated) content digest in the store."""
    matches = []
    try:
        for shard in sorted(store.objects_dir.iterdir()):
            if not shard.is_dir():
                continue
            for obj in sorted(shard.iterdir()):
                if obj.name.startswith(prefix):
                    matches.append(obj.name)
    except OSError:
        pass
    if not matches:
        raise FileNotFoundError(
            f"no image matches digest prefix {prefix!r} in {store.root}"
        )
    if len(matches) > 1:
        raise ValueError(
            f"digest prefix {prefix!r} is ambiguous"
            f" ({len(matches)} matches)"
        )
    return matches[0]


def cmd_image_export(args: argparse.Namespace) -> int:
    from repro.image import save_image
    from repro.rtcg import GeneratingExtension

    if not args.store and not args.out and not args.remote:
        print(
            "error: image export needs --store, --remote, and/or -o",
            file=sys.stderr,
        )
        return 2
    program = _load(args.file, args.goal, args.prelude)
    gen = GeneratingExtension(
        program,
        args.sig,
        memo_hints=args.memo or (),
        unfold_hints=args.unfold or (),
        store_dir=args.store,
        remote_store=args.remote,
    )
    static = _data(args.static or [])
    if args.backend == "object":
        residual = gen.to_object_code(
            static, dif_strategy=args.dif_strategy, verify=args.verify
        )
    else:
        residual = gen.to_source(static, dif_strategy=args.dif_strategy)
    status = 0
    if args.remote and not gen.flush_store():
        print(
            "error: the write-behind queue did not drain (remote"
            " object server unreachable?)",
            file=sys.stderr,
        )
        status = 1
    if args.store or args.remote:
        digest = residual.stats.get("image_digest")
        if digest is None:
            print(
                "error: the image could not be persisted to the store"
                " (unwritable directory, or statics with no stable"
                " cross-process identity)",
                file=sys.stderr,
            )
            status = 1
        else:
            print(f"{digest}  key={residual.stats['image_key']}")
    if args.out:
        digest = save_image(residual, args.out)
        print(f"{digest}  file={args.out}")
    return status


def cmd_image_load(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.image import load_image, verify_residual

    if Path(args.image).is_file():
        residual = load_image(args.image)
    elif args.store:
        store = _image_store(args)
        residual = store.load(
            _resolve_digest(store, args.image), verify=False
        )
    else:
        raise FileNotFoundError(
            f"{args.image!r} is not an image file (pass --store to resolve"
            " it as a content digest)"
        )
    if args.verify:
        verify_residual(residual)
    kind = "object" if residual.machine is not None else "source"
    params = " ".join(p.name for p in residual.goal_params)
    print(
        f";; image: goal {residual.goal} ({params}) [{kind};"
        f" verified {'yes' if args.verify else 'NO'}]",
        file=sys.stderr,
    )
    if args.disassemble and residual.machine is not None:
        from repro.vm.machine import VmClosure

        for name in sorted(residual.machine.globals, key=lambda s: s.name):
            value = residual.machine.globals[name]
            if isinstance(value, VmClosure):
                print(disassemble(value.template), file=sys.stderr)
    if args.dynamic is not None:
        print(write_value(residual.run(_data(args.dynamic))))
    return 0


def cmd_image_ls(args: argparse.Namespace) -> int:
    import json

    # An inventory command must not invent an empty store: refuse (exit
    # 1 with a message, via main's error boundary) instead of mkdir-ing.
    if not Path(args.store).is_dir():
        raise OSError(
            f"image store directory {args.store!r} does not exist"
            " (or is not a directory)"
        )
    entries = _image_store(args).ls(strict=True)
    if args.json:
        print(json.dumps(entries, indent=2))
        return 0
    if not entries:
        print(";; store is empty")
        return 0
    for e in entries:
        if "error" in e:
            print(f"{e['key'][:16]}  <unreadable: {e['error']}>")
            continue
        print(
            f"{e['object'][:16]}  {e['bytes']:6d} B  {e.get('kind', '?'):6}"
            f"  {e.get('goal', '?')}({' '.join(e.get('params', []))})"
            f"  key={e['key'][:16]}"
        )
    return 0


def cmd_image_gc(args: argparse.Namespace) -> int:
    import json

    report = _image_store(args).gc(
        max_bytes=args.max_bytes, dry_run=args.dry_run
    )
    if args.json:
        print(json.dumps(report, indent=2))
    elif args.dry_run:
        for doomed in report["would_remove"]:
            print(f"would remove {doomed['object']}  {doomed['bytes']} B")
        print(
            f"would remove {report['removed_objects']} object(s),"
            f" {report['removed_refs']} dangling ref(s);"
            f" {report['bytes_before']} ->"
            f" {report['bytes_after']} bytes (dry run)"
        )
    else:
        print(
            f"removed {report['removed_objects']} object(s),"
            f" {report['removed_refs']} dangling ref(s);"
            f" {report['bytes_before']} -> {report['bytes_after']} bytes"
        )
    return 0


def _remote_client(args: argparse.Namespace):
    from repro.image import RemoteStoreClient, parse_endpoint

    host, port = parse_endpoint(args.remote)
    return RemoteStoreClient(host, port)


def cmd_image_serve_store(args: argparse.Namespace) -> int:
    import signal

    from repro.image import ObjectServer

    server = ObjectServer(
        args.store,
        host=args.host,
        port=args.port,
        max_connections=args.max_connections,
    )
    stop = {"requested": False}

    def request_stop(signum, frame):  # pragma: no cover - signal path
        stop["requested"] = True

    server.start()
    print(
        f"serving image objects from {args.store}"
        f" on {server.host}:{server.port}",
        file=sys.stderr,
    )
    sys.stderr.flush()
    previous = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        previous[sig] = signal.signal(sig, request_stop)
    try:
        import time

        while not stop["requested"]:
            time.sleep(0.2)
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        server.stop()
    print("object server stopped", file=sys.stderr)
    return 0


def cmd_image_sync(args: argparse.Namespace) -> int:
    import json

    from repro.image import sync_stores

    report = sync_stores(_image_store(args), _remote_client(args))
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(
            f"pushed {report['objects_pushed']} object(s)"
            f" ({report['objects_deduped']} already remote),"
            f" wrote {report['refs_written']} ref(s),"
            f" {report['errors']} error(s) -> {report['remote']}"
        )
    return 1 if report["errors"] else 0


def cmd_image_prefetch(args: argparse.Namespace) -> int:
    import json

    from repro.image import prefetch_store

    report = prefetch_store(_image_store(args), _remote_client(args))
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(
            f"fetched {report['objects_fetched']} object(s),"
            f" wrote {report['refs_written']} ref(s)"
            f" ({report['refs_current']} already current),"
            f" {report['errors']} error(s) <- {report['remote']}"
        )
    return 1 if report["errors"] else 0


def cmd_image_fsck(args: argparse.Namespace) -> int:
    import json

    # Like ls: repairing a store that does not exist would silently
    # invent an empty one.
    if not Path(args.store).is_dir():
        raise OSError(
            f"image store directory {args.store!r} does not exist"
            " (or is not a directory)"
        )
    report = _image_store(args).fsck()
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(
            f"checked {report['checked']} object(s):"
            f" {len(report['corrupt'])} corrupt,"
            f" {report['quarantined']} quarantined,"
            f" {report['removed_refs']} ref(s) pruned"
        )
        for digest in report["corrupt"]:
            print(f"  corrupt: {digest}")
    return 0 if report["ok"] else 1


def cmd_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.serve import SpecializationServer, TenantQuota

    quota = TenantQuota(
        max_programs=args.max_programs,
        max_cached_residuals=args.max_cached_residuals,
        max_in_flight=args.max_in_flight,
        max_unfold_depth=args.max_unfold_depth,
        max_residual_size=args.max_residual_size,
    )
    server = SpecializationServer(
        host=args.host,
        port=args.port,
        max_connections=args.max_connections,
        quota=quota,
        trusted=frozenset(args.trust or ()),
        store_dir=args.store,
        remote_store=args.remote_store,
    )
    stop = {"requested": False}

    def request_stop(signum, frame):  # pragma: no cover - signal path
        stop["requested"] = True

    server.start()
    print(f"listening on {server.host}:{server.port}", file=sys.stderr)
    sys.stderr.flush()
    previous = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        previous[sig] = signal.signal(sig, request_stop)
    try:
        import time

        while not stop["requested"]:
            time.sleep(0.2)
    except KeyboardInterrupt:  # pragma: no cover - interactive path
        pass
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
        server.stop()
    print("server stopped", file=sys.stderr)
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    import json

    from repro.serve.loadgen import render_report, run_load, select_workloads

    workloads = select_workloads(args.workload) if args.workload else None
    own_server = None
    host, port = args.host, args.port
    if port is None:
        # No server given: run one in-process for the duration, with
        # quotas sized to the requested concurrency (the builtin
        # workloads pass forbid-mode admission, so no --trust needed).
        from repro.serve import SpecializationServer, TenantQuota

        own_server = SpecializationServer(
            host=host,
            port=0,
            store_dir=args.store,
            quota=TenantQuota(max_in_flight=max(args.clients, 8)),
            max_connections=max(args.clients + 4, 64),
        )
        own_server.start()
        port = own_server.port
    try:
        report = run_load(
            host,
            port,
            clients=args.clients,
            requests=args.requests,
            workloads=workloads,
            tenant=args.tenant,
            think_ms=args.think_ms,
        )
    finally:
        if own_server is not None:
            own_server.stop()
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(render_report(report))
    failed = report["protocol_errors"] > 0 or any(
        code != "BUSY" for code in report["errors"]
    )
    return 1 if failed else 0


def cmd_combinators(args: argparse.Namespace) -> int:
    from repro.compiler.combinator_source import emit_combinator_module

    print(emit_combinator_module())
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Composing partial evaluation and compilation"
        " (Sperber & Thiemann, PLDI 1997).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser, needs_sig: bool) -> None:
        p.add_argument("file", help="Scheme source file")
        p.add_argument("--goal", help="goal function name")
        p.add_argument(
            "--prelude", action="store_true", help="splice in the prelude"
        )
        if needs_sig:
            p.add_argument(
                "--sig", required=True,
                help="binding-time signature, e.g. SD",
            )
            p.add_argument(
                "--static", action="append",
                help="a static argument (Scheme datum); repeatable",
            )
            p.add_argument("--memo", action="append", help="memoization hint")
            p.add_argument("--unfold", action="append", help="unfold hint")
            p.add_argument(
                "--dif-strategy", default="duplicate",
                choices=("duplicate", "join"), dest="dif_strategy",
            )

    p = sub.add_parser("run", help="compile and run on the VM")
    common(p, needs_sig=False)
    p.add_argument("args", nargs="*", help="goal arguments (Scheme data)")
    p.add_argument(
        "--verify", action=argparse.BooleanOptionalAction, default=True,
        help="bytecode-verify templates before running (default: on)",
    )
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("interp", help="run through the reference interpreter")
    common(p, needs_sig=False)
    p.add_argument("args", nargs="*")
    p.set_defaults(fn=cmd_interp)

    p = sub.add_parser("specialize", help="print the residual source program")
    common(p, needs_sig=True)
    p.set_defaults(fn=cmd_specialize)

    p = sub.add_parser("rtcg", help="generate object code and run it")
    common(p, needs_sig=True)
    p.add_argument(
        "--dynamic", action="append",
        help="a dynamic argument (Scheme datum); repeatable",
    )
    p.add_argument("--disassemble", action="store_true")
    p.add_argument(
        "--verify", action=argparse.BooleanOptionalAction, default=True,
        help="verify generated templates at generation time (default: on)",
    )
    p.set_defaults(fn=cmd_rtcg)

    p = sub.add_parser("annotate", help="print the annotated program")
    common(p, needs_sig=True)
    p.set_defaults(fn=cmd_annotate)

    p = sub.add_parser("disasm", help="print template disassembly")
    common(p, needs_sig=False)
    p.add_argument(
        "--compiler", default="auto", choices=("auto", "stock", "anf")
    )
    p.add_argument(
        "--verify", action="store_true",
        help="append each template's verification report",
    )
    p.add_argument(
        "--cfg", action="store_true",
        help="append each template's basic-block boundaries and"
        " successor edges",
    )
    p.add_argument(
        "--json", action="store_true",
        help="emit templates and verification findings as JSON",
    )
    p.set_defaults(fn=cmd_disasm)

    p = sub.add_parser(
        "lint", help="bytecode-verify templates; lint BTA output with --sig"
    )
    p.add_argument("file", nargs="?", help="Scheme source file")
    p.add_argument("--goal", help="goal function name")
    p.add_argument(
        "--prelude", action="store_true", help="splice in the prelude"
    )
    p.add_argument("--sig", help="binding-time signature, e.g. SD")
    p.add_argument("--memo", action="append", help="memoization hint")
    p.add_argument("--unfold", action="append", help="unfold hint")
    p.add_argument(
        "--bta", default="poly", choices=("mono", "poly"),
        help="binding-time discipline to lint under (default: poly)",
    )
    p.add_argument(
        "--builtin", choices=("all", "examples", "workloads"),
        help="also lint the bundled example programs and/or the §7"
        " benchmark workloads (the CI self-gate)",
    )
    p.add_argument(
        "--division", action="store_true",
        help="append the division-quality report (polyvariant division"
        " vs. the monovariant baseline) for each signed target",
    )
    p.add_argument(
        "--json", action="store_true",
        help="emit the findings as a JSON object",
    )
    p.set_defaults(fn=cmd_lint)

    p = sub.add_parser(
        "analyze",
        help="specialization-safety analysis: termination and code bloat",
    )
    p.add_argument("file", nargs="?", help="Scheme source file")
    p.add_argument("--goal", help="goal function name")
    p.add_argument(
        "--prelude", action="store_true", help="splice in the prelude"
    )
    p.add_argument("--sig", help="binding-time signature, e.g. SD")
    p.add_argument("--memo", action="append", help="memoization hint")
    p.add_argument("--unfold", action="append", help="unfold hint")
    p.add_argument(
        "--builtin", choices=("all", "examples", "workloads"),
        help="also analyze the bundled example programs and/or the §7"
        " benchmark workloads (the CI self-gate)",
    )
    p.add_argument(
        "--metrics", action="store_true",
        help="print per-specialization-point code-bloat metrics",
    )
    p.add_argument(
        "--bta", default="poly", choices=("mono", "poly"),
        help="binding-time discipline to analyze under (default: poly)",
    )
    p.add_argument(
        "--division", action="store_true",
        help="append the division-quality report (polyvariant division"
        " vs. the monovariant baseline)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="emit reports as a JSON object",
    )
    p.set_defaults(fn=cmd_analyze)

    p = sub.add_parser(
        "bta",
        help="print the binding-time division: variants, unfold/memo"
        " decisions, lift sites",
    )
    p.add_argument("file", nargs="?", help="Scheme source file")
    p.add_argument("--goal", help="goal function name")
    p.add_argument(
        "--prelude", action="store_true", help="splice in the prelude"
    )
    p.add_argument("--sig", help="binding-time signature, e.g. SD")
    p.add_argument("--memo", action="append", help="memoization hint")
    p.add_argument("--unfold", action="append", help="unfold hint")
    p.add_argument(
        "--bta", default="poly", choices=("mono", "poly"),
        help="binding-time discipline (default: poly)",
    )
    p.add_argument(
        "--max-variants", type=int, default=8, dest="max_variants",
        help="polyvariant fan-out cap per function (default: 8)",
    )
    p.add_argument(
        "--builtin", choices=("all", "examples", "workloads"),
        help="also divide the bundled example programs and/or the §7"
        " benchmark workloads (the CI self-gate)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="emit the division as a JSON object",
    )
    p.set_defaults(fn=cmd_bta)

    def observability(p: argparse.ArgumentParser) -> None:
        p.add_argument("file", nargs="?", help="Scheme source file")
        p.add_argument("--goal", help="goal function name")
        p.add_argument(
            "--prelude", action="store_true", help="splice in the prelude"
        )
        p.add_argument("--sig", help="binding-time signature, e.g. SD")
        p.add_argument(
            "--static", action="append",
            help="a static argument (Scheme datum); repeatable",
        )
        p.add_argument(
            "--dynamic", action="append",
            help="a dynamic argument (Scheme datum); repeatable",
        )
        p.add_argument(
            "--dif-strategy", default="duplicate",
            choices=("duplicate", "join"), dest="dif_strategy",
        )
        p.add_argument(
            "--builtin", choices=("all", "examples", "workloads"),
            help="trace/profile the bundled example programs and/or the"
            " §7 benchmark workloads with sample inputs",
        )

    p = sub.add_parser(
        "trace",
        help="trace every pipeline stage; text tree or Chrome trace JSON",
    )
    observability(p)
    p.add_argument(
        "--json", action="store_true",
        help="emit Chrome trace-event JSON instead of the text report",
    )
    p.add_argument(
        "-o", "--out", help="also write the Chrome trace JSON to a file"
    )
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser(
        "profile",
        help="run residual code under the counting VM dispatch loop",
    )
    observability(p)
    p.add_argument(
        "--repeat", type=int, default=1,
        help="run the residual program N times (default: 1)",
    )
    p.add_argument(
        "--top", type=int, default=10,
        help="hot templates to list (default: 10)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="emit the profile as a JSON object",
    )
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser(
        "opt",
        help="dataflow-optimize templates, with translation validation",
    )
    observability(p)
    p.add_argument(
        "--superinstructions", action="store_true",
        help="run the profile-guided superinstruction pass instead of"
        " the dataflow optimizer: profile a run, fuse the hottest"
        " adjacent opcode runs, validate, and compare dispatch counts",
    )
    p.add_argument(
        "--max-fused", type=int, default=8, dest="max_fused",
        help="superinstructions to synthesize at most (default: 8)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="emit per-template deltas and differential results as JSON",
    )
    p.set_defaults(fn=cmd_opt)

    p = sub.add_parser(
        "stats", help="residual-cache statistics for repeated application"
    )
    common(p, needs_sig=True)
    p.add_argument(
        "--repeat", type=int, default=5,
        help="number of applications (default: 5)",
    )
    p.add_argument(
        "--backend", default="object", choices=("object", "source"),
    )
    p.add_argument(
        "--cache-size", type=int, default=128, dest="cache_size",
        help="residual-cache capacity (default: 128)",
    )
    p.add_argument(
        "--store", help="attach an on-disk image store (L2 tier)",
    )
    p.add_argument(
        "--remote", metavar="HOST:PORT",
        help="attach a remote object server (L3 tier behind --store)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="emit the statistics as a JSON object",
    )
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser(
        "image", help="persist and load residual object-code images"
    )
    image_sub = p.add_subparsers(dest="image_command", required=True)

    p = image_sub.add_parser(
        "export", help="specialize and persist the residual image"
    )
    common(p, needs_sig=True)
    p.add_argument("--store", help="content-addressed store directory")
    p.add_argument(
        "--remote", metavar="HOST:PORT",
        help="also push the image to a remote object server (L3)",
    )
    p.add_argument("-o", "--out", help="also write a standalone image file")
    p.add_argument(
        "--backend", default="object", choices=("object", "source"),
    )
    p.add_argument(
        "--verify", action=argparse.BooleanOptionalAction, default=True,
        help="verify generated templates (default: on)",
    )
    p.set_defaults(fn=cmd_image_export)

    p = image_sub.add_parser(
        "load", help="load (verify, optionally run) a persisted image"
    )
    p.add_argument(
        "image", help="image file path, or content digest with --store"
    )
    p.add_argument("--store", help="store directory for digest lookup")
    p.add_argument(
        "--dynamic", action="append",
        help="a dynamic argument (Scheme datum); repeatable",
    )
    p.add_argument("--disassemble", action="store_true")
    p.add_argument(
        "--verify", action=argparse.BooleanOptionalAction, default=True,
        help="bytecode-verify the loaded image (default: on)",
    )
    p.set_defaults(fn=cmd_image_load)

    p = image_sub.add_parser("ls", help="list the store's images")
    p.add_argument("--store", required=True)
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=cmd_image_ls)

    p = image_sub.add_parser("gc", help="bound the store's size")
    p.add_argument("--store", required=True)
    p.add_argument(
        "--max-bytes", type=int, default=None, dest="max_bytes",
        help="object-payload budget (default: drop dangling refs only)",
    )
    p.add_argument(
        "--dry-run", action="store_true", dest="dry_run",
        help="report what would be evicted without deleting anything",
    )
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=cmd_image_gc)

    p = image_sub.add_parser(
        "fsck", help="scan for torn/corrupt objects and repair the store"
    )
    p.add_argument("--store", required=True)
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=cmd_image_fsck)

    p = image_sub.add_parser(
        "serve-store",
        help="serve a store directory to remote workers (L3 object tier)",
    )
    p.add_argument("--store", required=True)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=7459,
        help="TCP port (0 picks an ephemeral port; default: 7459)",
    )
    p.add_argument(
        "--max-connections", type=int, default=64, dest="max_connections",
        help="connection pool bound (default: 64)",
    )
    p.set_defaults(fn=cmd_image_serve_store)

    p = image_sub.add_parser(
        "sync", help="push the local store's objects to a remote server"
    )
    p.add_argument("--store", required=True)
    p.add_argument(
        "--remote", required=True, metavar="HOST:PORT",
        help="object server endpoint (see: image serve-store)",
    )
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=cmd_image_sync)

    p = image_sub.add_parser(
        "prefetch",
        help="pull the remote inventory down into the local store",
    )
    p.add_argument("--store", required=True)
    p.add_argument(
        "--remote", required=True, metavar="HOST:PORT",
        help="object server endpoint (see: image serve-store)",
    )
    p.add_argument("--json", action="store_true")
    p.set_defaults(fn=cmd_image_prefetch)

    p = sub.add_parser(
        "serve",
        help="run the concurrent multi-tenant specialization service",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=7357,
        help="TCP port (0 picks an ephemeral port; default: 7357)",
    )
    p.add_argument(
        "--store",
        help="root directory for per-tenant on-disk image stores (L2)",
    )
    p.add_argument(
        "--remote-store", metavar="HOST:PORT", dest="remote_store",
        help="shared remote object server (L3) behind every tenant's L2;"
        " replicas pointed at one endpoint share a warm cache",
    )
    p.add_argument(
        "--trust", action="append", metavar="TENANT",
        help="tenant whose admission findings warn instead of denying;"
        " repeatable",
    )
    p.add_argument(
        "--max-connections", type=int, default=64, dest="max_connections",
        help="connection pool bound; excess connections get a retryable"
        " BUSY frame (default: 64)",
    )
    p.add_argument(
        "--max-programs", type=int, default=8, dest="max_programs",
        help="distinct programs cached per tenant (default: 8)",
    )
    p.add_argument(
        "--max-cached-residuals", type=int, default=64,
        dest="max_cached_residuals",
        help="residual-cache capacity per tenant program (default: 64)",
    )
    p.add_argument(
        "--max-in-flight", type=int, default=8, dest="max_in_flight",
        help="concurrent requests per tenant before BUSY (default: 8)",
    )
    p.add_argument(
        "--max-unfold-depth", type=int, default=5000,
        dest="max_unfold_depth",
        help="per-request unfold-depth ceiling (default: 5000)",
    )
    p.add_argument(
        "--max-residual-size", type=int, default=1_000_000,
        dest="max_residual_size",
        help="per-request residual-size ceiling (default: 1000000)",
    )
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "loadgen",
        help="drive concurrent clients against a specialization server",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=None,
        help="server port (omit to start an in-process server)",
    )
    p.add_argument(
        "--builtin", choices=("workloads",), default="workloads",
        help="request mix (currently: the §7 benchmark workloads)",
    )
    p.add_argument(
        "--workload", action="append", choices=("mixwell", "lazy"),
        help="restrict the mix to the named workload(s); repeatable",
    )
    p.add_argument(
        "--clients", type=int, default=10,
        help="concurrent client connections (default: 10)",
    )
    p.add_argument(
        "--requests", type=int, default=16,
        help="requests per client (default: 16)",
    )
    p.add_argument("--tenant", default="loadgen")
    p.add_argument(
        "--think-ms", type=float, default=0.0, dest="think_ms",
        help="per-client pause between requests in ms (0 = closed-loop"
        " saturation; a few ms measures latency instead of queueing)",
    )
    p.add_argument(
        "--store",
        help="store directory for the in-process server (L2 tier)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="emit the report as a JSON object",
    )
    p.set_defaults(fn=cmd_loadgen)

    p = sub.add_parser("combinators", help="print the generated combinators")
    p.set_defaults(fn=cmd_combinators)

    # Note: with `run`/`interp`, give goal arguments right after FILE
    # (before any --options), e.g. ``run power.scm 2 10 --goal power``.
    ns = parser.parse_args(argv)
    try:
        return ns.fn(ns)
    except (SchemeError, PEError, OSError, ValueError) as exc:
        # User-level failures (missing files, parse errors, bad
        # signatures, corrupt images) exit with a message, not a
        # traceback; genuine bugs still propagate.
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
