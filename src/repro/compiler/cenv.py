"""Compile-time environments.

The compiler "passes around source expressions, a compile-time environment
mapping names to stack and environment locations, and a stack depth" (§4).
A :class:`CompileTimeEnv` maps each name to one of:

* :class:`Local` — a slot in the current frame (parameters and lets);
* :class:`Closed` — a slot in the closure environment (free variables);
* :class:`Global` — a top-level binding, looked up at run time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sexp.datum import Symbol


@dataclass(frozen=True, slots=True)
class Local:
    index: int


@dataclass(frozen=True, slots=True)
class Closed:
    index: int


@dataclass(frozen=True, slots=True)
class Global:
    name: Symbol


Location = Local | Closed | Global


class CompileTimeEnv:
    """An immutable name → location mapping.

    Extension (``bind_local``) is O(1) via parent chaining: residual
    function bodies are long chains of ``let``s, and copying the mapping
    per binding would make compilation quadratic.
    """

    __slots__ = ("_mapping", "_parent")

    def __init__(
        self,
        mapping: dict[Symbol, Location] | None = None,
        parent: "CompileTimeEnv | None" = None,
    ):
        self._mapping = mapping or {}
        self._parent = parent

    @classmethod
    def for_procedure(
        cls,
        params: tuple[Symbol, ...],
        free: tuple[Symbol, ...] = (),
    ) -> "CompileTimeEnv":
        """Parameters in frame slots 0..n-1; free names in closure slots."""
        mapping: dict[Symbol, Location] = {}
        for i, p in enumerate(params):
            mapping[p] = Local(i)
        for i, f in enumerate(free):
            mapping[f] = Closed(i)
        return cls(mapping)

    def lookup(self, name: Symbol) -> Location:
        """The location of ``name``; unknown names are global references."""
        env: CompileTimeEnv | None = self
        while env is not None:
            loc = env._mapping.get(name)
            if loc is not None:
                return loc
            env = env._parent
        return Global(name)

    def is_bound_locally(self, name: Symbol) -> bool:
        env: CompileTimeEnv | None = self
        while env is not None:
            if name in env._mapping:
                return True
            env = env._parent
        return False

    def bind_local(self, name: Symbol, index: int) -> "CompileTimeEnv":
        return CompileTimeEnv({name: Local(index)}, self)
