"""Compilers from Core Scheme to VM templates.

Three compilers live here:

* :mod:`repro.compiler.anf_compiler` — Act 1's compiler: a simple
  recursive-descent compiler for programs in A-normal form.  Because ANF
  makes control flow explicit, it threads no compile-time continuation.
* :mod:`repro.compiler.stock` — the "stock Scheme 48 compiler" stand-in:
  compiles arbitrary CS, threading a compile-time continuation to identify
  tail calls.  Used as the Fig. 8 baseline and in the ANF ablation.
* :mod:`repro.compiler.annotated` — Act 2/3: the ANF compiler written once
  against an annotation interface, from which both a plain compiler and
  the object-code generation combinators are derived automatically.
"""

from repro.compiler.anf_compiler import ANFCompiler, compile_anf_def, compile_anf_expr
from repro.compiler.annotated import DerivedANFCompiler
from repro.compiler.cenv import CompileTimeEnv, Closed, Global, Local
from repro.compiler.fusion import ObjectCodeBackend
from repro.compiler.program import CompiledProgram, compile_program
from repro.compiler.stock import StockCompiler

__all__ = [
    "ANFCompiler",
    "Closed",
    "CompileTimeEnv",
    "CompiledProgram",
    "DerivedANFCompiler",
    "Global",
    "Local",
    "ObjectCodeBackend",
    "StockCompiler",
    "compile_anf_def",
    "compile_anf_expr",
    "compile_program",
]
