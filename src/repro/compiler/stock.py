"""The "stock compiler": full Core Scheme, compile-time continuations.

The stand-in for the stock Scheme 48 byte-code compiler, "which passes a
compile-time continuation to identify tail-calls" (§6.1).  Unlike the ANF
compiler it accepts *arbitrary* CS — nested serious subexpressions are
evaluated through the operand stack — at the cost of threading a
compile-time continuation through every compilation step.

The compile-time continuation is one of:

* ``RETURN`` — the expression is in tail position;
* ``VALUE``  — leave the result in ``val`` and fall through;
* ``PUSH``   — leave the result on the operand stack.

Used as the Fig. 8 "Compile" baseline (compiling an interpreter the
ordinary way) and in the A1 ablation against the cut-down ANF compiler.
"""

from __future__ import annotations

from enum import Enum

from repro.compiler.anf_compiler import CompileError, _DepthTracker
from repro.compiler.cenv import Closed, CompileTimeEnv, Local
from repro.lang.ast import App, Const, Expr, If, Lam, Let, Prim, Var
from repro.lang.freevars import free_variables
from repro.lang.prims import PRIMITIVES
from repro.runtime.values import datum_to_value
from repro.sexp.datum import Symbol
from repro.vm.assembler import assemble
from repro.vm.fragments import (
    EMPTY,
    Fragment,
    Lit,
    attach_label,
    instruction,
    instruction_using_label,
    make_label,
    sequentially,
)
from repro.vm.instructions import Op
from repro.vm.template import Template


class Cont(Enum):
    """The compile-time continuation."""

    RETURN = "return"
    VALUE = "value"
    PUSH = "push"


class StockCompiler:
    """A one-pass compiler for full CS threading a compile-time continuation."""

    def __init__(self, globals_: frozenset = frozenset()):
        self.globals_ = globals_

    def compile_procedure(
        self,
        params: tuple[Symbol, ...],
        body: Expr,
        free: tuple[Symbol, ...] = (),
        name: str = "anonymous",
    ) -> Template:
        cenv = CompileTimeEnv.for_procedure(params, free)
        tracker = _DepthTracker(len(params))
        fragment = self.compile(body, cenv, len(params), Cont.RETURN, tracker)
        return assemble(fragment, len(params), tracker.max_depth, name)

    def compile(
        self,
        expr: Expr,
        cenv: CompileTimeEnv,
        depth: int,
        cont: Cont,
        tracker: _DepthTracker,
    ) -> Fragment:
        tracker.reach(depth)
        if isinstance(expr, Const):
            return self._finish(
                instruction(Op.CONST, Lit(datum_to_value(expr.value))), cont
            )
        if isinstance(expr, Var):
            return self._finish(self._variable(expr.name, cenv), cont)
        if isinstance(expr, Lam):
            return self._finish(self._lambda(expr, cenv, tracker), cont)
        if isinstance(expr, Let):
            rhs = self.compile(expr.rhs, cenv, depth, Cont.VALUE, tracker)
            inner = cenv.bind_local(expr.var, depth)
            return sequentially(
                rhs,
                instruction(Op.SETLOC, depth),
                self.compile(expr.body, inner, depth + 1, cont, tracker),
            )
        if isinstance(expr, If):
            return self._conditional(expr, cenv, depth, cont, tracker)
        if isinstance(expr, Prim):
            spec = PRIMITIVES.get(expr.op)
            if spec is None:
                raise CompileError(f"unknown primitive {expr.op}")
            parts = [
                self.compile(arg, cenv, depth, Cont.PUSH, tracker)
                for arg in expr.args
            ]
            parts.append(instruction(Op.PRIM, Lit(spec), len(expr.args)))
            return self._finish(sequentially(*parts), cont)
        if isinstance(expr, App):
            parts = [self.compile(expr.fn, cenv, depth, Cont.PUSH, tracker)]
            for arg in expr.args:
                parts.append(self.compile(arg, cenv, depth, Cont.PUSH, tracker))
            if cont is Cont.RETURN:
                parts.append(instruction(Op.TAIL_CALL, len(expr.args)))
                return sequentially(*parts)
            parts.append(instruction(Op.CALL, len(expr.args)))
            if cont is Cont.PUSH:
                parts.append(instruction(Op.PUSH))
            return sequentially(*parts)
        raise CompileError(f"cannot compile {type(expr).__name__}")

    # -- helpers ----------------------------------------------------------------

    def _finish(self, fragment: Fragment, cont: Cont) -> Fragment:
        """Complete a value-producing fragment according to ``cont``."""
        if cont is Cont.RETURN:
            return sequentially(fragment, instruction(Op.RETURN))
        if cont is Cont.PUSH:
            return sequentially(fragment, instruction(Op.PUSH))
        return fragment

    def _conditional(
        self,
        expr: If,
        cenv: CompileTimeEnv,
        depth: int,
        cont: Cont,
        tracker: _DepthTracker,
    ) -> Fragment:
        alt_label = make_label("else")
        test = self.compile(expr.test, cenv, depth, Cont.VALUE, tracker)
        then = self.compile(expr.then, cenv, depth, cont, tracker)
        alt = self.compile(expr.alt, cenv, depth, cont, tracker)
        if cont is Cont.RETURN:
            # Both arms leave the procedure; no join point is needed.
            return sequentially(
                test,
                instruction_using_label(Op.JUMP_IF_FALSE, alt_label),
                then,
                attach_label(alt_label, alt),
            )
        end_label = make_label("endif")
        return sequentially(
            test,
            instruction_using_label(Op.JUMP_IF_FALSE, alt_label),
            then,
            instruction_using_label(Op.JUMP, end_label),
            attach_label(alt_label, alt),
            # The label lands on whatever instruction follows this fragment
            # in the enclosing sequence (a VALUE/PUSH context never ends a
            # procedure, so an instruction always follows).
            attach_label(end_label, EMPTY),
        )

    def _variable(self, name: Symbol, cenv: CompileTimeEnv) -> Fragment:
        location = cenv.lookup(name)
        if isinstance(location, Local):
            return instruction(Op.LOCAL, location.index)
        if isinstance(location, Closed):
            return instruction(Op.CLOSED, location.index)
        if name not in self.globals_:
            spec = PRIMITIVES.get(name)
            if spec is not None:
                return instruction(Op.CONST, Lit(spec))
        return instruction(Op.GLOBAL, Lit(name))

    def _lambda(
        self, expr: Lam, cenv: CompileTimeEnv, tracker: _DepthTracker
    ) -> Fragment:
        captured = tuple(
            sorted(
                (v for v in free_variables(expr) if cenv.is_bound_locally(v)),
                key=lambda s: s.name,
            )
        )
        template = self.compile_procedure(
            expr.params, expr.body, free=captured, name="lambda"
        )
        parts = []
        for v in captured:
            parts.append(self._variable(v, cenv))
            parts.append(instruction(Op.PUSH))
        parts.append(instruction(Op.MAKE_CLOSURE, Lit(template), len(captured)))
        return sequentially(*parts)
