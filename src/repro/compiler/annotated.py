"""Acts 2 and 3: the annotated compiler and its two readings.

Each compilator of the ANF compiler is written **once**, against an
annotation interface ``A`` (the Python rendering of the paper's ``_``,
``_let`` and ``_lift-literal`` annotations of §6.2):

* ``A.call(f, ...)``  — the ``_`` annotation: a code-constructing call,
  delayed until code-generation time;
* ``A.let(x)``        — the ``_let`` annotation: generation-time sharing
  (a label created once per combinator invocation, used twice);
* ``A.lift(c)``       — ``_lift-literal``: a generation-time constant;
* ``A.compile(c, cenv, depth)`` — the recursive call to the compiler on a
  subcomponent.

Two implementations of the interface correspond to the paper's two macro
sets (§6.3):

* :class:`DirectAnnotations` makes the annotations disappear: ``call``
  applies immediately, ``let``/``lift`` are identities, and ``compile``
  recurses through the syntax dispatch — "the result is still usable as
  an ordinary compiler".  :class:`DerivedANFCompiler` packages this as a
  drop-in compiler, tested to produce *identical templates* to the
  handwritten Act-1 compiler.
* :class:`GenAnnotations` runs each compilator **once** with symbolic
  parameters, recording the delayed operations as a recipe DAG — the
  analogue of macro-expanding the compilator into a code-generation
  combinator and "printing [it] into a file".  :func:`derive_combinator`
  turns a compilator into its ``make-residual-...`` function: the syntax
  dispatch and node destructuring have been performed once and for all;
  "the recursive calls to the compilation function on the syntactic
  subcomponents have been removed (replaced by the identity)" (§5.3) —
  ``A.compile`` on a subcomponent simply invokes the already-compiled
  component.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.compiler.cenv import Closed, CompileTimeEnv, Local
from repro.lang.prims import PRIMITIVES, PrimSpec
from repro.runtime.values import datum_to_value
from repro.sexp.datum import Symbol
from repro.vm.fragments import (
    Fragment,
    Lit,
    attach_label,
    instruction,
    instruction_using_label,
    make_label,
    sequentially,
)
from repro.vm.instructions import Op


# ---------------------------------------------------------------------------
# Staging values for the combinator (Gen) reading.
# ---------------------------------------------------------------------------


class Param:
    """A symbolic parameter of a combinator recipe (cenv, depth, or a
    subcomponent slot)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<param {self.name}>"


class Delayed:
    """A delayed call recorded in a recipe DAG."""

    __slots__ = ("fn", "args")

    def __init__(self, fn: Callable, args: tuple):
        self.fn = fn
        self.args = args


class SharedNode:
    """A ``_let``-annotated value: forced at most once per invocation."""

    __slots__ = ("inner",)

    def __init__(self, inner: Any):
        self.inner = inner


def force(x: Any, bindings: dict, memo: dict) -> Any:
    """Evaluate a recipe DAG under parameter ``bindings``.

    ``memo`` implements the generation-time sharing of ``_let``: one entry
    per :class:`SharedNode` per invocation.
    """
    if isinstance(x, Delayed):
        return x.fn(*[force(a, bindings, memo) for a in x.args])
    if isinstance(x, SharedNode):
        key = id(x)
        if key not in memo:
            memo[key] = force(x.inner, bindings, memo)
        return memo[key]
    if isinstance(x, Param):
        return bindings[x.name]
    if isinstance(x, tuple):
        return tuple(force(item, bindings, memo) for item in x)
    return x


def _apply_component(component: Callable, cenv: Any, depth: Any) -> Any:
    return component(cenv, depth)


class GenAnnotations:
    """The combinator-generating reading of the annotations."""

    def call(self, fn: Callable, *args: Any) -> Delayed:
        return Delayed(fn, args)

    def let(self, x: Any) -> SharedNode:
        return SharedNode(x)

    def lift(self, c: Any) -> Any:
        return c

    def compile(self, component: Any, cenv: Any, depth: Any) -> Delayed:
        # "Replaced by the identity": apply the already-compiled component.
        return Delayed(_apply_component, (component, cenv, depth))


class DirectAnnotations:
    """The annotation-erasing reading: an ordinary compiler."""

    def __init__(self, compiler: "DerivedANFCompiler"):
        self.compiler = compiler

    def call(self, fn: Callable, *args: Any) -> Any:
        return fn(*args)

    def let(self, x: Any) -> Any:
        return x

    def lift(self, c: Any) -> Any:
        return c

    def compile(self, component: "DirectComponent", cenv: Any, depth: Any) -> Any:
        return component(cenv, depth)


# ---------------------------------------------------------------------------
# The generation-time helper procedures of the compiler.  These are the
# ordinary procedures a Scheme 48 compilator would call; in the combinator
# reading they run at code-generation time (they are all ``_``-annotated
# call targets in the compilators below).
# ---------------------------------------------------------------------------


class GenCenv:
    """The compile-time environment threaded through combinators.

    Wraps the name→location map together with the depth tracker of the
    template under construction (the tracker records how many local slots
    the template needs).
    """

    __slots__ = ("env", "tracker")

    def __init__(self, env: CompileTimeEnv, tracker: "DepthTracker"):
        self.env = env
        self.tracker = tracker


class DepthTracker:
    __slots__ = ("max_depth",)

    def __init__(self, initial: int):
        self.max_depth = initial

    def reach(self, depth: int) -> None:
        if depth > self.max_depth:
            self.max_depth = depth


def bind_local(cenv: GenCenv, var: Symbol, depth: int) -> GenCenv:
    """Extend the compile-time environment with a let-bound variable."""
    cenv.tracker.reach(depth + 1)
    return GenCenv(cenv.env.bind_local(var, depth), cenv.tracker)


def inc(depth: int) -> int:
    return depth + 1


def compile_variable(name: Symbol, cenv: GenCenv) -> Fragment:
    location = cenv.env.lookup(name)
    if isinstance(location, Local):
        return instruction(Op.LOCAL, location.index)
    if isinstance(location, Closed):
        return instruction(Op.CLOSED, location.index)
    spec = PRIMITIVES.get(name)
    if spec is not None:
        return instruction(Op.CONST, Lit(spec))
    return instruction(Op.GLOBAL, Lit(name))


def const_instruction(value: Any) -> Fragment:
    return instruction(Op.CONST, Lit(value))


def emit_pushed(parts: Sequence[Fragment]) -> Fragment:
    """Each part computes a value; push each in order."""
    pieces = []
    for part in parts:
        pieces.append(part)
        pieces.append(instruction(Op.PUSH))
    return sequentially(*pieces)


def compile_components(
    components: Sequence[Callable], cenv: GenCenv, depth: int
) -> tuple:
    """Apply each already-compiled component to the current context."""
    return tuple(c(cenv, depth) for c in components)


def prim_instruction(spec: PrimSpec, n: int) -> Fragment:
    return instruction(Op.PRIM, Lit(spec), n)


def call_instruction(n: int) -> Fragment:
    return instruction(Op.CALL, n)


def tail_call_instruction(n: int) -> Fragment:
    return instruction(Op.TAIL_CALL, n)


def setloc_instruction(depth: int) -> Fragment:
    return instruction(Op.SETLOC, depth)


def return_instruction() -> Fragment:
    return instruction(Op.RETURN)


def length_of(xs: Sequence) -> int:
    return len(xs)


def make_lambda_template(
    params: Sequence[Symbol],
    captured: Sequence[Symbol],
    body: Callable,
    name: str = "lambda",
):
    """Assemble the nested template for a residual ``lambda``."""
    from repro.vm.assembler import assemble

    inner_env = CompileTimeEnv.for_procedure(tuple(params), tuple(captured))
    tracker = DepthTracker(len(params))
    cenv = GenCenv(inner_env, tracker)
    fragment = body(cenv, len(params))
    return assemble(fragment, len(params), tracker.max_depth, name)


def emit_captured(captured: Sequence[Symbol], cenv: GenCenv) -> Fragment:
    """Push the values of the captured variables, in order."""
    return emit_pushed([compile_variable(v, cenv) for v in captured])


def make_closure_instruction(template, n: int) -> Fragment:
    return instruction(Op.MAKE_CLOSURE, Lit(template), n)


def freeze_constant(value: Any) -> Any:
    """Constants arrive as run-time values from the specializer."""
    return value


# ---------------------------------------------------------------------------
# The annotated compilators — each written once (§6.2).
# Components are already-compiled subexpressions: a *trivial* component
# leaves its value in ``val``; a *body* component produces complete tail
# code.  ``cenv``/``depth`` are unknown until code-generation time, so every
# operation touching them is ``A.call``-annotated.
# ---------------------------------------------------------------------------


def compilator_if(A, test, then, alt, cenv, depth):
    """(if V M M) — test, conditional jump, two arms (cf. §6.1/§6.2)."""
    alt_label = A.let(A.call(make_label))
    return A.call(
        sequentially,
        # Test
        A.compile(test, cenv, depth),
        A.call(
            instruction_using_label, A.lift(Op.JUMP_IF_FALSE), alt_label
        ),
        # Consequent
        A.compile(then, cenv, depth),
        # Alternative
        A.call(attach_label, alt_label, A.compile(alt, cenv, depth)),
    )


def compilator_let(A, var, rhs, body, cenv, depth):
    """(let (x B) M) — bind the rhs value to the next stack slot."""
    return A.call(
        sequentially,
        A.compile(rhs, cenv, depth),
        A.call(setloc_instruction, depth),
        A.compile(
            body,
            A.call(bind_local, cenv, var, depth),
            A.call(inc, depth),
        ),
    )


def compilator_return(A, triv, cenv, depth):
    """A trivial expression in tail position."""
    return A.call(
        sequentially, A.compile(triv, cenv, depth), A.call(return_instruction)
    )


def compilator_prim(A, spec, args, cenv, depth):
    """(O V ...) in value position: push arguments, apply the primitive."""
    return A.call(
        sequentially,
        A.call(emit_pushed, A.call(compile_components, args, cenv, depth)),
        A.call(prim_instruction, spec, A.call(length_of, args)),
    )


def _operator_and_args(fn, args, cenv: GenCenv, depth: int) -> tuple:
    """Compile the operator followed by the arguments."""
    return compile_components((fn,) + tuple(args), cenv, depth)


def compilator_call(A, fn, args, cenv, depth):
    """(V V ...) in value (non-tail) position: CALL pushes a continuation."""
    return A.call(
        sequentially,
        A.call(emit_pushed, A.call(_operator_and_args, fn, args, cenv, depth)),
        A.call(call_instruction, A.call(length_of, args)),
    )


def compilator_tail_call(A, fn, args, cenv, depth):
    """(V V ...) in tail position: a jump (§6.1 — "all others are jumps")."""
    return A.call(
        sequentially,
        A.call(emit_pushed, A.call(_operator_and_args, fn, args, cenv, depth)),
        A.call(tail_call_instruction, A.call(length_of, args)),
    )


def compilator_variable(A, name, cenv, depth):
    """A variable reference: stack slot, closure slot, or global."""
    return A.call(compile_variable, name, cenv)


def compilator_const(A, value, cenv, depth):
    """A constant: loaded from the literal frame."""
    return A.call(const_instruction, value)


def compilator_lambda(A, params, captured, body, cenv, depth):
    """(lambda (x ...) M): nested template + closure over captured values."""
    template = A.let(A.call(make_lambda_template, params, captured, body))
    return A.call(
        sequentially,
        A.call(emit_captured, captured, cenv),
        A.call(
            make_closure_instruction, template, A.call(length_of, captured)
        ),
    )


# ---------------------------------------------------------------------------
# Deriving the code-generation combinators (Act 3, §6.3.2).
# ---------------------------------------------------------------------------


def compile_recipe(
    x: Any, slot_index: dict[str, int]
) -> Callable[[tuple, dict], Any]:
    """Compile a recipe DAG into nested closures, once.

    Equivalent to ``force`` but with all dispatch on node kinds — and all
    parameter lookups, resolved to tuple indices — performed ahead of
    time: the same staging move the whole paper is about, applied to the
    combinator recipes themselves.  ``b`` is the positional binding tuple
    (slots, then cenv, then depth); ``m`` the per-invocation sharing memo.
    """
    if isinstance(x, Delayed):
        fn = x.fn
        subs = tuple(compile_recipe(a, slot_index) for a in x.args)
        return lambda b, m: fn(*[s(b, m) for s in subs])
    if isinstance(x, SharedNode):
        inner = compile_recipe(x.inner, slot_index)
        key = id(x)

        def shared(b: tuple, m: dict) -> Any:
            if key not in m:
                m[key] = inner(b, m)
            return m[key]

        return shared
    if isinstance(x, Param):
        index = slot_index[x.name]
        return lambda b, m: b[index]
    if isinstance(x, tuple):
        subs = tuple(compile_recipe(item, slot_index) for item in x)
        return lambda b, m: tuple(s(b, m) for s in subs)
    return lambda b, m: x


def derive_combinator(compilator: Callable, static_slots: Sequence[str],
                      component_slots: Sequence[str]) -> Callable:
    """Expand ``compilator`` once into a ``make-residual-...`` function.

    The returned function takes the static slots and component slots as
    keyword-free positional arguments (statics first, components second)
    and yields the code-generating closure ``(cenv, depth) -> fragment``.
    """
    A = GenAnnotations()
    slot_names = (*static_slots, *component_slots)
    params = {name: Param(name) for name in slot_names}
    cenv_p, depth_p = Param("cenv"), Param("depth")
    recipe = compilator(
        A, *[params[name] for name in slot_names], cenv_p, depth_p
    )
    slot_index = {name: i for i, name in enumerate(slot_names)}
    slot_index["cenv"] = len(slot_names)
    slot_index["depth"] = len(slot_names) + 1
    compiled = compile_recipe(recipe, slot_index)
    n_slots = len(slot_names)

    def combinator(*slot_values: Any) -> Callable:
        if len(slot_values) != n_slots:
            raise TypeError(
                f"combinator expects {n_slots} arguments,"
                f" got {len(slot_values)}"
            )

        def emit(cenv: GenCenv, depth: int) -> Fragment:
            return compiled(slot_values + (cenv, depth), {})

        return emit

    combinator.__name__ = f"make_residual_{compilator.__name__[11:]}"
    return combinator


# The derived combinator set: the direct replacements for the syntax
# constructors in the specializer (§6.3.2's make-residual-... functions).
make_residual_if = derive_combinator(
    compilator_if, (), ("test", "then", "alt")
)
make_residual_let = derive_combinator(
    compilator_let, ("var",), ("rhs", "body")
)
make_residual_return = derive_combinator(
    compilator_return, (), ("triv",)
)
make_residual_prim = derive_combinator(
    compilator_prim, ("spec",), ("args",)
)
make_residual_call = derive_combinator(
    compilator_call, (), ("fn", "args")
)
make_residual_tail_call = derive_combinator(
    compilator_tail_call, (), ("fn", "args")
)
make_residual_variable = derive_combinator(
    compilator_variable, ("name",), ()
)
make_residual_const = derive_combinator(
    compilator_const, ("value",), ()
)
make_residual_lambda = derive_combinator(
    compilator_lambda, ("params", "captured"), ("body",)
)


# ---------------------------------------------------------------------------
# The annotation-erasing reading: a complete compiler from the same
# compilator definitions (tested identical to the handwritten Act-1
# compiler).
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DirectComponent:
    """A subcomponent for the direct reading: compile node with ``kind``."""

    compiler: "DerivedANFCompiler"
    kind: str
    node: Any

    def __call__(self, cenv: GenCenv, depth: int) -> Fragment:
        return self.compiler.compile_kind(self.kind, self.node, cenv, depth)


class DerivedANFCompiler:
    """The ANF compiler obtained by erasing the annotations.

    Same dispatch structure as the handwritten compiler; all fragment
    construction comes from the annotated compilators run under
    :class:`DirectAnnotations`.
    """

    def __init__(self) -> None:
        self.A = DirectAnnotations(self)

    def compile_procedure(self, params, body, free=(), name="anonymous"):
        from repro.vm.assembler import assemble

        env = CompileTimeEnv.for_procedure(tuple(params), tuple(free))
        tracker = DepthTracker(len(params))
        cenv = GenCenv(env, tracker)
        fragment = self.compile_kind("tail", body, cenv, len(params))
        return assemble(fragment, len(params), tracker.max_depth, name)

    # -- dispatch ---------------------------------------------------------------

    def compile_kind(self, kind: str, node, cenv: GenCenv, depth: int):
        from repro.lang.ast import App, Const, If, Lam, Let, Prim, Var

        A = self.A
        if kind == "tail":
            if isinstance(node, Let):
                return compilator_let(
                    A,
                    node.var,
                    self._rhs_component(node.rhs),
                    DirectComponent(self, "tail", node.body),
                    cenv,
                    depth,
                )
            if isinstance(node, If):
                return compilator_if(
                    A,
                    DirectComponent(self, "trivial", node.test),
                    DirectComponent(self, "tail", node.then),
                    DirectComponent(self, "tail", node.alt),
                    cenv,
                    depth,
                )
            if isinstance(node, App):
                return compilator_tail_call(
                    A,
                    DirectComponent(self, "trivial", node.fn),
                    tuple(
                        DirectComponent(self, "trivial", a) for a in node.args
                    ),
                    cenv,
                    depth,
                )
            if isinstance(node, Prim):
                return compilator_return(
                    A, DirectComponent(self, "value", node), cenv, depth
                )
            return compilator_return(
                A, DirectComponent(self, "trivial", node), cenv, depth
            )
        if kind == "value":
            # A serious expression in value position (a let rhs).
            if isinstance(node, App):
                return compilator_call(
                    A,
                    DirectComponent(self, "trivial", node.fn),
                    tuple(
                        DirectComponent(self, "trivial", a) for a in node.args
                    ),
                    cenv,
                    depth,
                )
            if isinstance(node, Prim):
                spec = PRIMITIVES[node.op]
                return compilator_prim(
                    A,
                    spec,
                    tuple(
                        DirectComponent(self, "trivial", a) for a in node.args
                    ),
                    cenv,
                    depth,
                )
            return self.compile_kind("trivial", node, cenv, depth)
        if kind == "trivial":
            if isinstance(node, Const):
                return compilator_const(
                    A, datum_to_value(node.value), cenv, depth
                )
            if isinstance(node, Var):
                return compilator_variable(A, node.name, cenv, depth)
            if isinstance(node, Lam):
                from repro.lang.freevars import free_variables

                captured = tuple(
                    sorted(
                        (
                            v
                            for v in free_variables(node)
                            if cenv.env.is_bound_locally(v)
                        ),
                        key=lambda s: s.name,
                    )
                )
                return compilator_lambda(
                    A,
                    node.params,
                    captured,
                    DirectComponent(self, "tail", node.body),
                    cenv,
                    depth,
                )
            raise TypeError(f"not a trivial expression: {type(node).__name__}")
        raise ValueError(f"unknown component kind {kind!r}")

    def _rhs_component(self, rhs) -> DirectComponent:
        return DirectComponent(self, "value", rhs)
