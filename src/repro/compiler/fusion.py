"""The composition: an object-code backend for the specializer.

"In practice, we parameterize [the specializer] over the (standard) syntax
constructors and provide alternative implementations for them: one that
constructs syntax and another one that corresponds to [the compiler]"
(§5.4).  This module is the second implementation: every method of
:class:`ObjectCodeBackend` answers the specializer with *object code
generators* built from the ``make-residual-...`` combinators derived from
the annotated compiler — the deforested composition ``compile ∘
specialize``.

Residual code handles:

* trivial code (:class:`TrivCode`) and serious code (:class:`SeriousCode`)
  carry an emission function ``(cenv, depth) -> fragment`` plus the set of
  residual variable names occurring free in them.  The free-name sets
  implement the paper's §6.4 resolution of "the duality between variable
  names and their compilators": the specializer passes names by default,
  and the compilator for ``lambda`` uses them to compute the list of
  captured variables at code-generation time.
* serious code has two emitters because ANF's control-flow distinction is
  resolved by the *consumer*: a let-rhs compiles to ``CALL`` and a tail
  position to ``TAIL_CALL``.

Completed residual definitions are assembled (relocated) into VM templates
and installed in a fresh :class:`~repro.vm.machine.Machine` — "code for
immediate execution by the run-time system" (§8.2).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Sequence

from repro.compiler.annotated import (
    DepthTracker,
    GenCenv,
    make_residual_call,
    make_residual_const,
    make_residual_if,
    make_residual_lambda,
    make_residual_let,
    make_residual_prim,
    make_residual_return,
    make_residual_tail_call,
    make_residual_variable,
)
from repro.compiler.cenv import CompileTimeEnv
from repro.lang.prims import PRIMITIVES
from repro.pe.backend import ResidualProgram
from repro.pe.errors import SpecializationError
from repro.sexp.datum import Symbol
from repro.vm.assembler import assemble
from repro.vm.machine import Machine, VmClosure
from repro.vm.opt import optimize_template
from repro.vm.template import Template
from repro.vm.verify import verify_template

_EMPTY: frozenset = frozenset()


class TrivCode:
    """Trivial residual code: emits a value into ``val``."""

    __slots__ = ("emit", "free")

    def __init__(self, emit: Callable[[GenCenv, int], Any], free: frozenset):
        self.emit = emit
        self.free = free


class SeriousCode:
    """Serious residual code: a call or primitive application."""

    __slots__ = ("emit_value", "emit_tail", "free")

    def __init__(
        self,
        emit_value: Callable[[GenCenv, int], Any],
        emit_tail: Callable[[GenCenv, int], Any],
        free: frozenset,
    ):
        self.emit_value = emit_value
        self.emit_tail = emit_tail
        self.free = free


class BodyCode:
    """Complete tail code for a residual function or branch."""

    __slots__ = ("emit", "free")

    def __init__(self, emit: Callable[[GenCenv, int], Any], free: frozenset):
        self.emit = emit
        self.free = free


class ObjectCodeBackend:
    """The fused backend: residual programs materialize as VM templates.

    ``verify`` runs the bytecode verifier over every template as it is
    relocated — RTCG-generated code is checked at generation time, before
    it is installed in the machine.  ``optimize`` then runs the dataflow
    bytecode optimizer (:mod:`repro.vm.opt`) over each verified template,
    so cached and persisted residual code is the optimized code; the
    optimizer's own translation validation re-verifies its output.
    """

    def __init__(self, verify: bool = True, optimize: bool = True) -> None:
        self.machine = Machine()
        self.templates: dict[Symbol, Template] = {}
        self.verify = verify
        self.optimize = optimize
        # Wall-clock spent in the optimizer, for the caller's stage
        # accounting (it runs inside the specialize span otherwise).
        self.optimize_seconds = 0.0
        # Cache-key discriminator: verified/unverified and optimized/
        # unoptimized generation must not share residual-cache entries
        # (a hit skips generation, and with it generation-time
        # verification and optimization).
        kind = "object" if verify else "object-unverified"
        if not optimize:
            kind += "-noopt"
        self.kind = kind

    # -- trivial constructors ----------------------------------------------------

    def const(self, value: Any) -> TrivCode:
        return TrivCode(make_residual_const(value), _EMPTY)

    def var(self, name: Symbol) -> TrivCode:
        return TrivCode(make_residual_variable(name), frozenset((name,)))

    def global_ref(self, name: Symbol) -> TrivCode:
        # Residual functions and primitives resolve through the global
        # environment (or the literal frame, for primitives); they are
        # never captured by closures, so the free set stays empty.
        return TrivCode(make_residual_variable(name), _EMPTY)

    def lam(self, params: Sequence[Symbol], body: BodyCode) -> TrivCode:
        params = tuple(params)
        free = body.free - set(params)

        def emit(cenv: GenCenv, depth: int) -> Any:
            captured = tuple(
                sorted(
                    (v for v in free if cenv.env.is_bound_locally(v)),
                    key=lambda s: s.name,
                )
            )
            return make_residual_lambda(params, captured, body.emit)(
                cenv, depth
            )

        return TrivCode(emit, free)

    # -- serious constructors --------------------------------------------------------

    def prim(self, op: Symbol, args: Sequence[TrivCode]) -> SeriousCode:
        spec = PRIMITIVES.get(op)
        if spec is None:
            raise SpecializationError(f"unknown primitive {op}")
        emits = tuple(a.emit for a in args)
        value = make_residual_prim(spec, emits)
        return SeriousCode(
            emit_value=value,
            emit_tail=make_residual_return(value),
            free=_union(args),
        )

    def call(self, fn: TrivCode, args: Sequence[TrivCode]) -> SeriousCode:
        emits = tuple(a.emit for a in args)
        return SeriousCode(
            emit_value=make_residual_call(fn.emit, emits),
            emit_tail=make_residual_tail_call(fn.emit, emits),
            free=fn.free | _union(args),
        )

    # -- body constructors ---------------------------------------------------------------

    def let(self, var: Symbol, rhs: SeriousCode, body: BodyCode) -> BodyCode:
        rhs_emit = rhs.emit_value if isinstance(rhs, SeriousCode) else rhs.emit
        return BodyCode(
            make_residual_let(var, rhs_emit, body.emit),
            rhs.free | (body.free - {var}),
        )

    def if_(self, test: TrivCode, then: BodyCode, alt: BodyCode) -> BodyCode:
        return BodyCode(
            make_residual_if(test.emit, then.emit, alt.emit),
            test.free | then.free | alt.free,
        )

    def ret(self, triv: TrivCode) -> BodyCode:
        return BodyCode(make_residual_return(triv.emit), triv.free)

    def tail(self, serious: SeriousCode) -> BodyCode:
        return BodyCode(serious.emit_tail, serious.free)

    # -- definitions --------------------------------------------------------------------------

    def define(
        self, name: Symbol, params: Sequence[Symbol], body: BodyCode
    ) -> None:
        params = tuple(params)
        env = CompileTimeEnv.for_procedure(params)
        tracker = DepthTracker(len(params))
        fragment = body.emit(GenCenv(env, tracker), len(params))
        template = assemble(
            fragment, len(params), tracker.max_depth, name.name
        )
        if self.verify:
            verify_template(template)
        if self.optimize:
            t0 = time.perf_counter()
            template = optimize_template(
                template, assume_verified=self.verify
            )
            self.optimize_seconds += time.perf_counter() - t0
        self.templates[name] = template
        self.machine.define(name, VmClosure(template, ()))

    def finish(
        self, goal: Symbol, goal_params: tuple[Symbol, ...]
    ) -> ResidualProgram:
        return ResidualProgram(
            goal=goal, goal_params=goal_params, machine=self.machine
        )


def _union(handles: Sequence) -> frozenset:
    free: frozenset = _EMPTY
    for h in handles:
        if h.free:
            free = h.free if not free else free | h.free
    return free
