"""Whole-program compilation: programs → a loaded VM global environment."""

from __future__ import annotations

from typing import Any, Sequence

from repro.anf.convert import anf_convert_program
from repro.anf.grammar import is_anf_program
from repro.compiler.anf_compiler import ANFCompiler
from repro.compiler.stock import StockCompiler
from repro.lang.ast import Program
from repro.sexp.datum import Symbol
from repro.vm.machine import Machine, VmClosure
from repro.vm.opt import optimize_template
from repro.vm.template import Template
from repro.vm.verify import verify_template


class CompiledProgram:
    """A program compiled to templates, ready to run on a :class:`Machine`."""

    def __init__(self, templates: dict[Symbol, Template], goal: Symbol):
        self.templates = templates
        self.goal = goal

    def machine(self) -> Machine:
        """A fresh machine with every definition loaded."""
        m = Machine()
        for name, template in self.templates.items():
            m.define(name, VmClosure(template, ()))
        return m

    def run(self, args: Sequence[Any], machine: Machine | None = None) -> Any:
        m = machine or self.machine()
        return m.call_named(self.goal, args)

    def instruction_count(self) -> int:
        return sum(t.instruction_count() for t in self.templates.values())


def compile_program(
    program: Program,
    compiler: str = "auto",
    verify: bool = True,
    optimize: bool = True,
) -> CompiledProgram:
    """Compile every definition of ``program``.

    ``compiler`` selects the backend:

    * ``"anf"``   — the cut-down ANF compiler (program must be in ANF);
    * ``"stock"`` — the stock compiler (any CS program);
    * ``"auto"``  — ANF compiler when the program is already in ANF,
      otherwise normalize first and use the ANF compiler.

    ``verify`` runs the bytecode verifier over every emitted template
    (:mod:`repro.vm.verify`); a compiler bug is rejected here instead of
    crashing the machine mid-run.  ``optimize`` runs the dataflow
    bytecode optimizer (:mod:`repro.vm.opt`) over each template; the
    optimizer re-verifies its own output (translation validation).
    """
    program_names = frozenset(d.name for d in program.defs)
    from repro.lang.assignment import eliminate_assignments, has_assignments

    if any(has_assignments(d.body) for d in program.defs):
        program = eliminate_assignments(program)
    if compiler == "stock":
        stock = StockCompiler(globals_=program_names)
        templates = {
            d.name: stock.compile_procedure(d.params, d.body, name=d.name.name)
            for d in program.defs
        }
    else:
        if compiler == "anf":
            if not is_anf_program(program):
                raise ValueError("program is not in ANF; use compiler='auto'")
        elif compiler == "auto":
            if not is_anf_program(program):
                program = anf_convert_program(program)
        else:
            raise ValueError(f"unknown compiler {compiler!r}")
        anf = ANFCompiler(check=False, globals_=program_names)
        templates = {
            d.name: anf.compile_procedure(d.params, d.body, name=d.name.name)
            for d in program.defs
        }
    if verify:
        for template in templates.values():
            verify_template(template)
    if optimize:
        templates = {
            name: optimize_template(template, assume_verified=verify)
            for name, template in templates.items()
        }
    return CompiledProgram(templates, program.goal)
