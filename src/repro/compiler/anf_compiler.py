"""Act 1: the recursive-descent compiler for programs in A-normal form.

"ANF, as shown in Fig. 2, already makes control flow explicit.  Only those
function applications wrapped in a let are non-tail calls; all others are
jumps.  Hence, the propagation of a compile-time continuation is
unnecessary, and it is sensible to make do with a drastically cut-down
version of the compiler." (§6.1)

Each syntactic construct has a *compilator* that receives the node, the
compile-time environment, and the current stack depth (the next free local
slot), and produces an abstract code fragment using the constructors of
:mod:`repro.vm.fragments`.
"""

from __future__ import annotations

from repro.anf.grammar import check_anf
from repro.lang.ast import App, Const, Def, Expr, If, Lam, Let, Prim, Var
from repro.lang.freevars import free_variables
from repro.lang.prims import PRIMITIVES
from repro.compiler.cenv import Closed, CompileTimeEnv, Global, Local
from repro.runtime.errors import SchemeError
from repro.runtime.values import datum_to_value
from repro.sexp.datum import Symbol
from repro.vm.assembler import assemble
from repro.vm.fragments import (
    Fragment,
    Lit,
    attach_label,
    instruction,
    instruction_using_label,
    make_label,
    sequentially,
)
from repro.vm.instructions import Op
from repro.vm.template import Template


class CompileError(SchemeError):
    """A program could not be compiled."""


class _DepthTracker:
    """Records the deepest local slot a template body needs."""

    __slots__ = ("max_depth",)

    def __init__(self, initial: int):
        self.max_depth = initial

    def reach(self, depth: int) -> None:
        if depth > self.max_depth:
            self.max_depth = depth


class ANFCompiler:
    """Compiles ANF expressions to templates.

    ``globals_`` names the program's top-level definitions: they shadow
    primitives, so a program-defined ``odd?`` compiles to a global
    reference rather than the primitive.
    """

    def __init__(self, check: bool = True, globals_: frozenset = frozenset()):
        self.check = check
        self.globals_ = globals_

    # -- entry points --------------------------------------------------------

    def compile_procedure(
        self,
        params: tuple[Symbol, ...],
        body: Expr,
        free: tuple[Symbol, ...] = (),
        name: str = "anonymous",
    ) -> Template:
        """Compile a procedure body to a template."""
        if self.check:
            check_anf(body)
        cenv = CompileTimeEnv.for_procedure(params, free)
        tracker = _DepthTracker(len(params))
        fragment = self.compile(body, cenv, len(params), tracker)
        return assemble(fragment, len(params), tracker.max_depth, name)

    # -- serious expressions (tail position) -----------------------------------

    def compile(
        self,
        expr: Expr,
        cenv: CompileTimeEnv,
        depth: int,
        tracker: _DepthTracker,
    ) -> Fragment:
        """Compile a serious expression in tail position."""
        tracker.reach(depth)
        if isinstance(expr, Let):
            return self._compilator_let(expr, cenv, depth, tracker)
        if isinstance(expr, If):
            return self._compilator_if(expr, cenv, depth, tracker)
        if isinstance(expr, App):
            return self._compilator_tail_call(expr, cenv, depth, tracker)
        if isinstance(expr, Prim):
            return sequentially(
                self._compile_prim_args(expr, cenv, depth, tracker),
                instruction(Op.RETURN),
            )
        # Trivial expression in tail position: load and return.
        return sequentially(
            self.compile_trivial(expr, cenv, depth, tracker),
            instruction(Op.RETURN),
        )

    def _compilator_if(
        self, expr: If, cenv: CompileTimeEnv, depth: int, tracker: _DepthTracker
    ) -> Fragment:
        alt_label = make_label("else")
        return sequentially(
            # Test
            self.compile_trivial(expr.test, cenv, depth, tracker),
            instruction_using_label(Op.JUMP_IF_FALSE, alt_label),
            # Consequent
            self.compile(expr.then, cenv, depth, tracker),
            # Alternative
            attach_label(alt_label, self.compile(expr.alt, cenv, depth, tracker)),
        )

    def _compilator_let(
        self, expr: Let, cenv: CompileTimeEnv, depth: int, tracker: _DepthTracker
    ) -> Fragment:
        rhs = expr.rhs
        if isinstance(rhs, App):
            binding = sequentially(
                self._push_operator_and_args(rhs, cenv, depth, tracker),
                instruction(Op.CALL, len(rhs.args)),
            )
        elif isinstance(rhs, Prim):
            binding = self._compile_prim_args(rhs, cenv, depth, tracker)
        else:
            binding = self.compile_trivial(rhs, cenv, depth, tracker)
        inner = cenv.bind_local(expr.var, depth)
        return sequentially(
            binding,
            instruction(Op.SETLOC, depth),
            self.compile(expr.body, inner, depth + 1, tracker),
        )

    def _compilator_tail_call(
        self, expr: App, cenv: CompileTimeEnv, depth: int, tracker: _DepthTracker
    ) -> Fragment:
        return sequentially(
            self._push_operator_and_args(expr, cenv, depth, tracker),
            instruction(Op.TAIL_CALL, len(expr.args)),
        )

    def _push_operator_and_args(
        self, expr: App, cenv: CompileTimeEnv, depth: int, tracker: _DepthTracker
    ) -> Fragment:
        parts = [
            self.compile_trivial(expr.fn, cenv, depth, tracker),
            instruction(Op.PUSH),
        ]
        for arg in expr.args:
            parts.append(self.compile_trivial(arg, cenv, depth, tracker))
            parts.append(instruction(Op.PUSH))
        return sequentially(*parts)

    def _compile_prim_args(
        self, expr: Prim, cenv: CompileTimeEnv, depth: int, tracker: _DepthTracker
    ) -> Fragment:
        spec = PRIMITIVES.get(expr.op)
        if spec is None:
            raise CompileError(f"unknown primitive {expr.op}")
        parts = []
        for arg in expr.args:
            parts.append(self.compile_trivial(arg, cenv, depth, tracker))
            parts.append(instruction(Op.PUSH))
        parts.append(instruction(Op.PRIM, Lit(spec), len(expr.args)))
        return sequentially(*parts)

    # -- trivial expressions ----------------------------------------------------

    def compile_trivial(
        self,
        expr: Expr,
        cenv: CompileTimeEnv,
        depth: int,
        tracker: _DepthTracker,
    ) -> Fragment:
        """Compile a trivial expression (V); leaves its value in ``val``."""
        if isinstance(expr, Const):
            return instruction(Op.CONST, Lit(datum_to_value(expr.value)))
        if isinstance(expr, Var):
            return self._compile_variable(expr.name, cenv)
        if isinstance(expr, Lam):
            return self._compilator_lambda(expr, cenv, depth, tracker)
        raise CompileError(
            f"expected a trivial expression, got {type(expr).__name__}"
        )

    def _compile_variable(self, name: Symbol, cenv: CompileTimeEnv) -> Fragment:
        location = cenv.lookup(name)
        if isinstance(location, Local):
            return instruction(Op.LOCAL, location.index)
        if isinstance(location, Closed):
            return instruction(Op.CLOSED, location.index)
        # Global: a top-level procedure, or a primitive used as a value.
        if name not in self.globals_:
            spec = PRIMITIVES.get(name)
            if spec is not None:
                return instruction(Op.CONST, Lit(spec))
        return instruction(Op.GLOBAL, Lit(name))

    def _compilator_lambda(
        self, expr: Lam, cenv: CompileTimeEnv, depth: int, tracker: _DepthTracker
    ) -> Fragment:
        # Free variables that are bound in the enclosing frame or closure
        # are captured; everything else stays a global reference.
        captured = tuple(
            sorted(
                (
                    v
                    for v in free_variables(expr)
                    if cenv.is_bound_locally(v)
                ),
                key=lambda s: s.name,
            )
        )
        template = self.compile_procedure(
            expr.params, expr.body, free=captured, name="lambda"
        )
        parts = []
        for v in captured:
            parts.append(self._compile_variable(v, cenv))
            parts.append(instruction(Op.PUSH))
        parts.append(instruction(Op.MAKE_CLOSURE, Lit(template), len(captured)))
        return sequentially(*parts)


def compile_anf_expr(
    expr: Expr, name: str = "toplevel", check: bool = True
) -> Template:
    """Compile a closed ANF expression to a zero-argument template."""
    return ANFCompiler(check=check).compile_procedure((), expr, name=name)


def compile_anf_def(d: Def, check: bool = True) -> Template:
    """Compile one top-level definition to a template."""
    return ANFCompiler(check=check).compile_procedure(
        d.params, d.body, name=d.name.name
    )
