"""Run-time Scheme values.

Scheme data at run time:

* numbers, booleans, strings, symbols, characters -- the same Python
  representations the reader produces;
* pairs -- :class:`Pair` chains ending in :data:`NIL`;
* the empty list -- the singleton :data:`NIL`;
* the unspecified value -- the singleton :data:`UNSPECIFIED`;
* procedures -- closures of the interpreter or VM (each defines its own).

Mutation of pairs (``set-car!``/``set-cdr!``) is intentionally not
supported, so quoted constants may be shared freely.
"""

from __future__ import annotations

from typing import Any, Iterator

from repro.runtime.errors import PrimitiveError
from repro.sexp.datum import Char


class Nil:
    """The empty list.  A singleton; compare with ``is``."""

    __slots__ = ()
    _instance: "Nil | None" = None

    def __new__(cls) -> "Nil":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "()"


NIL = Nil()


class Unspecified:
    """The unspecified (void) value.  A singleton; compare with ``is``."""

    __slots__ = ()
    _instance: "Unspecified | None" = None

    def __new__(cls) -> "Unspecified":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "#<unspecified>"


UNSPECIFIED = Unspecified()


class Pair:
    """A cons cell."""

    __slots__ = ("car", "cdr")

    def __init__(self, car: Any, cdr: Any):
        self.car = car
        self.cdr = cdr

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from repro.runtime.values import value_to_datum

        try:
            return f"<pair {value_to_datum(self)!r}>"
        except Exception:
            return f"<pair {self.car!r} . {self.cdr!r}>"

    def __iter__(self) -> Iterator[Any]:
        node: Any = self
        while isinstance(node, Pair):
            yield node.car
            node = node.cdr
        if node is not NIL:
            raise PrimitiveError("iterate", "improper list")


def scheme_list(*items: Any) -> Any:
    """Build a Scheme list from Python arguments."""
    result: Any = NIL
    for item in reversed(items):
        result = Pair(item, result)
    return result


def is_list(value: Any) -> bool:
    """True if ``value`` is a proper list."""
    while isinstance(value, Pair):
        value = value.cdr
    return value is NIL


def is_truthy(value: Any) -> bool:
    """Scheme truthiness: everything except ``#f`` is true."""
    return value is not False


def datum_to_value(datum: Any) -> Any:
    """Convert reader data (Python lists/tuples) to run-time values."""
    if isinstance(datum, (list, tuple)):
        result: Any = NIL
        for item in reversed(datum):
            result = Pair(datum_to_value(item), result)
        return result
    return datum


def value_to_datum(value: Any) -> Any:
    """Convert a run-time value back to reader data; lists become Python lists."""
    if isinstance(value, Pair):
        items = []
        node: Any = value
        while isinstance(node, Pair):
            items.append(value_to_datum(node.car))
            node = node.cdr
        if node is not NIL:
            raise PrimitiveError("value->datum", "improper list")
        return items
    if value is NIL:
        return []
    return value


def scheme_eqv(a: Any, b: Any) -> bool:
    """R4RS ``eqv?``: identity, plus same-exactness numeric equality."""
    if isinstance(a, bool) or isinstance(b, bool):
        return a is b
    if isinstance(a, int) and isinstance(b, int):
        return a == b
    if isinstance(a, float) and isinstance(b, float):
        return a == b
    if isinstance(a, Char) and isinstance(b, Char):
        return a == b
    return a is b


def scheme_equal(a: Any, b: Any) -> bool:
    """R4RS ``equal?``: structural equality."""
    while True:
        if isinstance(a, Pair) and isinstance(b, Pair):
            if not scheme_equal(a.car, b.car):
                return False
            a, b = a.cdr, b.cdr
            continue
        if isinstance(a, str) and isinstance(b, str):
            return a == b
        return scheme_eqv(a, b)
