"""Run-time value model and errors shared by the interpreter and the VM."""

from repro.runtime.errors import PrimitiveError, SchemeError
from repro.runtime.values import (
    NIL,
    Nil,
    Pair,
    Unspecified,
    UNSPECIFIED,
    datum_to_value,
    is_list,
    is_truthy,
    scheme_eqv,
    scheme_equal,
    scheme_list,
    value_to_datum,
)

__all__ = [
    "NIL",
    "Nil",
    "Pair",
    "PrimitiveError",
    "SchemeError",
    "UNSPECIFIED",
    "Unspecified",
    "datum_to_value",
    "is_list",
    "is_truthy",
    "scheme_eqv",
    "scheme_equal",
    "scheme_list",
    "value_to_datum",
]
