"""Errors raised by Scheme evaluation (interpreter, primitives, and VM)."""

from __future__ import annotations


class SchemeError(Exception):
    """A run-time error in evaluated Scheme code (including ``(error ...)``)."""


class PrimitiveError(SchemeError):
    """A primitive was applied to arguments outside its domain."""

    def __init__(self, op: str, message: str):
        super().__init__(f"{op}: {message}")
        self.op = op
