"""Specialization-termination analysis (size-change style).

Two ways the Fig. 3 specializer can fail to terminate, two criteria:

**T1 — infinite unfolding.**  Static calls (unfolds of top-level
functions and static closures) are inlined unconditionally, so a cycle
of unfold edges is only safe if something shrinks around it.  Following
size-change termination, each unfold edge is abstracted to a graph of
arcs between static parameters; the set of composed graphs is closed
under composition; and every *idempotent* cyclic composed graph must
carry a strictly decreasing self-arc (structural descent, or guarded
numeric descent toward a static bound).  Otherwise the specializer may
unfold forever, and we report ``possible-infinite-specialization``.

**T2 — unbounded memo specialization.**  Specialization points
(``MemoCall``) are memoized, so repetition is cut — but only if the
static arguments range over a *finite* set.  Cycles here are the
residual-level memo summary edges of the call graph; the criterion is
quasi-termination: in every idempotent cyclic composed graph, every
static parameter of the specialization point must have *some* incoming
bound (equal, descending, size-bounded, constant, or guarded-numeric).
A parameter with no bound can take unboundedly many values — the memo
table grows without bound and so does the residual program.

Cycles none of whose edges sit under dynamic control are suppressed:
specializing them diverges only if the source program itself diverges
on its static data (the standard offline-PE assumption; the ISSUE and
the paper both scope the guarantee to cycles reachable under dynamic
control).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.analysis.callgraph import Bound, CallEdge, CallGraph, NumBound
from repro.analysis.fixpoint import close_arrows
from repro.analysis.report import AnalysisFinding, AnalysisKind

# Arc relations, finite by construction:
#   eq     value equal to the source parameter
#   down   structurally strictly smaller (substructure descent)
#   le     size bounded by the source parameter (or a fixed literal set)
#   const  drawn from a finite set independent of the source
#   numdg  numeric, strictly decreasing, under a static guard
#   numcg  numeric, changed by a constant offset, under a static guard
_STRICT = frozenset({"down", "numdg"})


def classify(bound: Any, static_params: Iterable) -> tuple:
    """Abstract an argument bound into size-change arcs.

    Returns ``(rel, src_param)`` tuples; ``("const", None)`` for
    source-independent finite sets; ``()`` when nothing can be said
    (the argument may range over unboundedly many values).
    """
    statics = set(static_params)
    if isinstance(bound, NumBound):
        if bound.param not in statics:
            return ()
        if bound.delta == 0:
            if not bound.path:
                return (("eq", bound.param),)
            return (("down", bound.param),)
        if bound.path:
            return ()
        rel = "numdg" if bound.delta < 0 else "numcg"
        return ((rel, bound.param),)
    if not isinstance(bound, Bound):
        return ()
    if not bound.terms:
        return (("const", None),)
    params = {p for p, _, _ in bound.terms}
    if len(params) != 1 or not params <= statics:
        return ()
    (param,) = params
    if len(bound.terms) == 1:
        _, path, exact = bound.terms[0]
        depth = len(path)
        if exact and not path and bound.const == 0 and not bound.literal:
            return (("eq", param),)
        if depth > bound.const and not bound.literal:
            return (("down", param),)
        if depth >= bound.const:
            return (("le", param),)
        return ()
    # Several terms: sound only when they name pairwise-disjoint exact
    # substructures; the nodes excluded from the union of their
    # subtrees (the distinct proper prefixes) pay for the construction.
    paths = [path for _, path, _ in bound.terms]
    if any(not exact for _, _, exact in bound.terms):
        return ()
    if any(not path for path in paths):
        return ()  # a root term overlaps everything
    for i, a in enumerate(paths):
        for b in paths[i + 1:]:
            if a[: len(b)] == b or b[: len(a)] == a:
                return ()  # overlapping (or duplicate) substructures
    prefixes = {path[:k] for path in paths for k in range(len(path))}
    excluded = len(prefixes)
    if excluded > bound.const and not bound.literal:
        return (("down", param),)
    if excluded >= bound.const:
        return (("le", param),)
    return ()


def _compose_rel(r1: str, r2: str) -> str | None:
    """Relation of ``q`` to ``p`` given ``m r1 p`` and ``q r2 m``."""
    if r1 == "const":
        # Any of our relations applied to a finite set yields a finite set.
        return "const"
    if r1 == "eq":
        return r2
    if r2 == "eq":
        return r1
    structural = {"down", "le"}
    if r1 in structural and r2 in structural:
        return "down" if "down" in (r1, r2) else "le"
    numeric = {"numdg", "numcg"}
    if r1 in numeric and r2 in numeric:
        return "numdg" if r1 == r2 == "numdg" else "numcg"
    return None


@dataclass(frozen=True, slots=True)
class SCG:
    """A (possibly composed) size-change graph between two nodes."""

    src: str
    dst: str
    arcs: frozenset  # of (dst_param, rel, src_param | None)
    under_dynamic: bool


def _edge_scg(edge: CallEdge, graph: CallGraph) -> SCG:
    src_node = graph.nodes[edge.src]
    arcs = set()
    for param, bound in edge.args:
        for rel, source in classify(bound, src_node.static_params):
            if rel in ("numdg", "numcg") and not edge.static_guarded:
                continue  # unguarded numeric change: unbounded
            arcs.add((param, rel, source))
    return SCG(
        src=edge.src,
        dst=edge.dst,
        arcs=frozenset(arcs),
        under_dynamic=edge.under_dynamic,
    )


def _arc_index(arcs: frozenset) -> dict:
    """``dst_param -> [(rel, src_param)]`` for one graph's arc set.

    The closure composes each graph against many partners, so the
    index is memoized on the arc set (arc sets repeat heavily across
    composed graphs).
    """
    cached = _ARC_INDEX_CACHE.get(arcs)
    if cached is None:
        if len(_ARC_INDEX_CACHE) > 4096:
            _ARC_INDEX_CACHE.clear()
        cached = {}
        for q, rel, p in arcs:
            cached.setdefault(q, []).append((rel, p))
        _ARC_INDEX_CACHE[arcs] = cached
    return cached


_ARC_INDEX_CACHE: dict = {}


def _compose(g1: SCG, g2: SCG) -> SCG | None:
    if g1.dst != g2.src:
        return None
    by_param = _arc_index(g1.arcs)
    arcs = set()
    for q, rel2, m in g2.arcs:
        if rel2 == "const":
            arcs.add((q, "const", None))
            continue
        for rel1, p in by_param.get(m, ()):
            rel = _compose_rel(rel1, rel2)
            if rel is not None:
                arcs.add((q, rel, None if rel == "const" else p))
    return SCG(
        src=g1.src,
        dst=g2.dst,
        arcs=frozenset(arcs),
        under_dynamic=g1.under_dynamic or g2.under_dynamic,
    )


def _closure_with_witnesses(
    edges: list, graph: CallGraph
) -> tuple[set, dict]:
    """All composed graphs, each with one witness edge sequence."""
    witness: dict[SCG, tuple] = {}
    seeds = []
    for edge in edges:
        g = _edge_scg(edge, graph)
        seeds.append(g)
        witness.setdefault(g, (edge,))

    def combine(a: SCG, b: SCG) -> SCG | None:
        g = _compose(a, b)
        if g is not None and g not in witness:
            witness[g] = witness[a] + witness[b]
        return g

    closed = close_arrows(
        seeds, lambda g: g.src, lambda g: g.dst, combine
    )
    return closed, witness


def _cycle_lines(edges: tuple) -> tuple:
    return tuple(e.describe() for e in edges)


def check_unfolding(graph: CallGraph) -> list:
    """T1: every idempotent cyclic unfold graph needs a strict self-arc."""
    unfold = [e for e in graph.unfold_edges if e.kind in ("unfold", "closure")]
    closed, witness = _closure_with_witnesses(unfold, graph)
    findings = []
    seen_cycles = set()
    for g in closed:
        if g.src != g.dst or not g.under_dynamic:
            continue
        if _compose(g, g) != g:
            continue
        if any(q == p and rel in _STRICT for q, rel, p in g.arcs):
            continue
        edges = witness[g]
        cycle_key = tuple(sorted((e.src, e.dst, e.sites) for e in edges))
        if cycle_key in seen_cycles:
            continue
        seen_cycles.add(cycle_key)
        first = edges[0]
        findings.append(
            AnalysisFinding(
                kind=AnalysisKind.POSSIBLE_INFINITE_SPECIALIZATION,
                def_name=g.src,
                path=first.sites[0],
                message=(
                    "unfolding may not terminate: no static argument"
                    " strictly decreases around this cycle of unfold"
                    " calls reachable under dynamic control"
                ),
                cycle=_cycle_lines(edges),
            )
        )
    return findings


@dataclass(frozen=True, slots=True)
class MemoCycleFailure:
    """A memo cycle along which some static parameters are unbounded."""

    def_name: str
    params: tuple  # unbounded static parameter names (str)
    path: str
    cycle: tuple  # witness edge descriptions


def check_memo_growth(graph: CallGraph) -> list:
    """T2: every static parameter needs a bound around every memo cycle."""
    closed, witness = _closure_with_witnesses(graph.memo_edges, graph)
    failures = []
    seen = set()
    for g in closed:
        if g.src != g.dst or not g.under_dynamic:
            continue
        if _compose(g, g) != g:
            continue
        node = graph.nodes[g.src]
        bounded = {q for q, _, _ in g.arcs}
        missing = tuple(
            str(p) for p in node.static_params if p not in bounded
        )
        if not missing:
            continue
        edges = witness[g]
        key = (g.src, missing)
        if key in seen:
            continue
        seen.add(key)
        first = edges[0]
        failures.append(
            MemoCycleFailure(
                def_name=g.src,
                params=missing,
                path=first.sites[0],
                cycle=_cycle_lines(edges),
            )
        )
    return failures


def check_termination(graph: CallGraph) -> tuple[list, list]:
    """Run both criteria.

    Returns ``(findings, memo_failures)``: T1 findings plus T2 findings
    as :class:`AnalysisFinding`, and the raw
    :class:`MemoCycleFailure` list for the code-bloat analysis.
    """
    findings = check_unfolding(graph)
    memo_failures = check_memo_growth(graph)
    for fail in memo_failures:
        findings.append(
            AnalysisFinding(
                kind=AnalysisKind.POSSIBLE_INFINITE_SPECIALIZATION,
                def_name=fail.def_name,
                path=fail.path,
                message=(
                    "specialization may build unboundedly many variants"
                    f" of {fail.def_name}: static parameter(s)"
                    f" {', '.join(fail.params)} have no bound around"
                    " this cycle of specialization points"
                ),
                cycle=fail.cycle,
            )
        )
    return findings, memo_failures
