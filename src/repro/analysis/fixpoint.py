"""A small shared fixpoint engine for the whole-program analyses.

Two solvers cover everything :mod:`repro.analysis` needs:

* :class:`Solver` — a classic monotone worklist fixpoint over a finite
  key set with an explicit join.  Clients: the interprocedural
  result-source summaries and the per-residual-definition abstract
  environments in :mod:`repro.analysis.callgraph`, and the
  unboundedness propagation in :mod:`repro.analysis.bloat`.

* :func:`saturate` — closure of a finite set under a binary combination.

* :func:`close_arrows` — the categorical special case of
  :func:`saturate`: closure of a set of *arrows* under
  endpoint-compatible composition, with the candidate pairs indexed by
  endpoint so only composable pairs are tried (used for the size-change
  graph composition closure in :mod:`repro.analysis.termination`, where
  the all-pairs formulation dominated the analysis' running time).

Both terminate whenever the client's domain has finite height — every
domain in this package is flat or near-flat, so the bounds are small.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterable, TypeVar

T = TypeVar("T", bound=Hashable)


class Solver:
    """Monotone worklist fixpoint: ``env[k] = join(env[k], transfer(k))``.

    ``transfer`` recomputes a key's value reading other keys through
    ``self.get``; the solver records the reads and re-queues a key when
    any key it read changes.  ``join`` must be an upper bound operator
    (idempotent, commutative, absorbing) and ``bottom`` its identity.
    """

    def __init__(
        self,
        join: Callable[[Any, Any], Any],
        bottom: Any = None,
    ):
        self._join = join
        self._bottom = bottom
        self.env: dict[Any, Any] = {}
        self._deps: dict[Any, set] = {}  # key -> keys whose transfer read it
        self._reading: Any = None

    def get(self, key: Any) -> Any:
        """Read a key's current value from inside a transfer function."""
        if self._reading is not None:
            self._deps.setdefault(key, set()).add(self._reading)
        return self.env.get(key, self._bottom)

    def solve(
        self,
        keys: Iterable[Any],
        transfer: Callable[[Any, "Solver"], Any],
    ) -> dict[Any, Any]:
        """Run to fixpoint; returns the final environment."""
        work = list(dict.fromkeys(keys))
        queued = set(work)
        while work:
            key = work.pop()
            queued.discard(key)
            self._reading = key
            try:
                new = transfer(key, self)
            finally:
                self._reading = None
            old = self.env.get(key, self._bottom)
            joined = self._join(old, new)
            if joined != old:
                self.env[key] = joined
                for dep in self._deps.get(key, ()):
                    if dep not in queued:
                        queued.add(dep)
                        work.append(dep)
        return self.env


def saturate(
    seeds: Iterable[T],
    combine: Callable[[T, T], Iterable[T]],
) -> set[T]:
    """Close ``seeds`` under ``combine``.

    ``combine(a, b)`` yields the items induced by the ordered pair
    ``(a, b)``; the result is the least set containing the seeds and
    closed under it.  Terminates iff the closure is finite.
    """
    items: set[T] = set()
    work: list[T] = []
    for s in seeds:
        if s not in items:
            items.add(s)
            work.append(s)
    while work:
        x = work.pop()
        for y in list(items):
            for produced in (*combine(x, y), *combine(y, x)):
                if produced not in items:
                    items.add(produced)
                    work.append(produced)
    return items


def close_arrows(
    seeds: Iterable[T],
    source: Callable[[T], Hashable],
    target: Callable[[T], Hashable],
    compose: Callable[[T, T], T | None],
) -> set[T]:
    """Close a set of arrows under endpoint-compatible composition.

    ``source(a)`` / ``target(a)`` name an arrow's endpoints;
    ``compose(a, b)`` is consulted only for pairs with
    ``target(a) == source(b)`` and returns the composite arrow or
    ``None``.  Semantically this equals :func:`saturate` with a combine
    that rejects mismatched endpoints, but the endpoint index avoids
    the all-pairs scan.  Terminates iff the closure is finite.
    """
    items: set[T] = set()
    by_source: dict[Hashable, list[T]] = {}
    by_target: dict[Hashable, list[T]] = {}
    work: list[T] = []
    tried: set[tuple[T, T]] = set()

    def add(arrow: T) -> None:
        if arrow not in items:
            items.add(arrow)
            by_source.setdefault(source(arrow), []).append(arrow)
            by_target.setdefault(target(arrow), []).append(arrow)
            work.append(arrow)

    def attempt(a: T, b: T) -> None:
        # An ordered pair can surface from both endpoint scans; compose
        # once.
        if (a, b) not in tried:
            tried.add((a, b))
            composed = compose(a, b)
            if composed is not None:
                add(composed)

    for s in seeds:
        add(s)
    while work:
        x = work.pop()
        for y in list(by_source.get(target(x), ())):
            attempt(x, y)
        for y in list(by_target.get(source(x), ())):
            attempt(y, x)
    return items
