"""The static call graph of an annotated program, with argument bounds.

Built on top of the BTA's output (:class:`repro.pe.bta.BTAResult`,
including the exposed closure analysis for higher-order flow), this
module produces the raw material for the termination and code-bloat
analyses:

* **nodes** — top-level definitions plus static (specialization-time)
  lambdas;
* **unfold edges** — specialization-time calls the specializer inlines:
  static applications of top-level functions and of static closures.
  Each edge carries, per static parameter of the callee, an abstract
  *bound* on the argument relative to the caller's static parameters;
* **memo summary edges** — for each residual definition ``R``, the
  specialization points (``MemoCall`` sites) reachable from ``R``'s
  body through unfolding, with argument bounds composed through the
  unfolded calls relative to ``R``'s own static parameters.  These are
  the edges of the residual-level graph whose cycles drive memo-table
  growth;
* **result-source summaries** — for each definition, whether its result
  is a substructure of one of its parameters (needed to see that an
  interpreter's ``lookup``-style helpers do not grow the static state).

The bound domain: ``size(value) <= const + sum(size(path(param)))``
over *terms* ``(param, path, exact)``, where ``path`` is a chain of
pair destructors and ``exact`` means the value embeds exactly that
substructure.  All values described by a bound are built from
substructures of the named parameters and program literals, so a bound
also certifies that the value ranges over a finite set once the
parameters do — the property the memo-boundedness analysis needs.
``NumBound`` tracks exact integer offsets (``(- s 1)``), and ``TOP``
is "no information".
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.lang.ast import (
    App,
    Const,
    DApp,
    DIf,
    DLam,
    DPrim,
    If,
    Lam,
    Let,
    Lift,
    MemoCall,
    Prim,
    Var,
)
from repro.pe.annprog import BindingTime
from repro.pe.bta import BTAResult
from repro.sexp.datum import Symbol, sym

from repro.analysis.fixpoint import Solver

S = BindingTime.STATIC


class _Top:
    """No information about an argument (the lattice top)."""

    _instance: Optional["_Top"] = None

    def __new__(cls) -> "_Top":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "TOP"


TOP = _Top()


@dataclass(frozen=True, slots=True)
class Bound:
    """``size(value) <= const + sum(size(path(param)) for terms)``.

    Every described value is built from substructures of the terms'
    parameters and from program literals.  ``literal`` marks that the
    value may also be one of finitely many program constants of unknown
    size (contributed by joins with constant-returning branches).
    """

    const: int
    terms: tuple  # sorted tuple of (param: Symbol, path: tuple[str,...], exact: bool)
    literal: bool = False


@dataclass(frozen=True, slots=True)
class NumBound:
    """``value == path(param) + delta`` — an exact integer offset."""

    param: Symbol
    path: tuple
    delta: int


def datum_size(value: Any) -> int:
    """Structural size of a literal (pairs count 1 plus their parts)."""
    from repro.runtime.values import Pair

    size = 0
    stack = [value]
    while stack:
        v = stack.pop()
        size += 1
        if isinstance(v, Pair):
            stack.append(v.car)
            stack.append(v.cdr)
        elif isinstance(v, (tuple, list)):
            size += len(v)
            stack.extend(v)
    return size


# -- destructor / primitive tables ---------------------------------------------------

_CXR = re.compile(r"^c([ad]+)r$")


def _destructor_path(name: str) -> tuple | None:
    """``cadr`` -> ``("cdr", "car")``: destructors in application order."""
    m = _CXR.match(name)
    if m is None:
        return None
    return tuple(
        "car" if ch == "a" else "cdr" for ch in reversed(m.group(1))
    )


# Result is a substructure of the last argument (plus possibly #f).
_SEARCH_PRIMS = frozenset(
    sym(n) for n in ("assq", "assv", "assoc", "memq", "memv", "member")
)
# Result is drawn from a finite literal set (booleans).
_PREDICATE_PRIMS = frozenset(
    sym(n)
    for n in (
        "eq?", "eqv?", "equal?", "null?", "pair?", "not", "zero?",
        "number?", "symbol?", "boolean?", "procedure?", "string?",
        "=", "<", ">", "<=", ">=", "odd?", "even?",
    )
)
_CONS = sym("cons")
_LIST = sym("list")
_APPEND = sym("append")
_REVERSE = sym("reverse")
_PLUS = sym("+")
_MINUS = sym("-")
_ADD1 = sym("add1")
_SUB1 = sym("sub1")
_QUOTIENT = sym("quotient")


def _weaken(b: Any) -> Any:
    """A bound for "some substructure of a value bounded by ``b``"."""
    if isinstance(b, Bound):
        return Bound(
            b.const,
            tuple((p, path, False) for p, path, _ in b.terms),
            b.literal,
        )
    return b  # NumBound: substructure of an integer is the integer; TOP


def _apply_path(b: Any, path: tuple) -> Any:
    """The bound of ``path(value)`` given a bound for ``value``."""
    if not path:
        return b
    if isinstance(b, NumBound):
        return TOP  # destructing a number: dead path
    if not isinstance(b, Bound):
        return TOP
    if len(b.terms) == 1 and b.const == 0 and not b.literal:
        p, tpath, exact = b.terms[0]
        return Bound(0, ((p, tpath + path, exact),), False)
    # Size-only: each destructor discards at least one node.
    return Bound(
        b.const - len(path),
        tuple((p, tpath, False) for p, tpath, _ in b.terms),
        b.literal,
    )


def join_bounds(a: Any, b: Any) -> Any:
    """An upper bound of two argument bounds (near-flat join)."""
    if a is None:
        return b
    if b is None:
        return a
    if a == b:
        return a
    if isinstance(a, Bound) and isinstance(b, Bound):
        ta = tuple((p, path) for p, path, _ in a.terms)
        tb = tuple((p, path) for p, path, _ in b.terms)
        if ta == tb:
            exact = tuple(
                (p, path, ea and eb)
                for (p, path, ea), (_, _, eb) in zip(a.terms, b.terms)
            )
            return Bound(
                max(a.const, b.const), exact, a.literal or b.literal
            )
        # A join with a pure literal keeps the other side's terms: the
        # value is either bounded by them or one of finitely many
        # constants — representable with the literal flag.
        if not ta and a.const >= 0:
            return Bound(b.const, _weaken(b).terms, True)
        if not tb and b.const >= 0:
            return Bound(a.const, _weaken(a).terms, True)
    return TOP


@dataclass(frozen=True, slots=True)
class Node:
    """A call-graph node: a top-level definition or a static lambda.

    Under a polyvariant BTA the graph's def nodes are the function
    *variants* (the termination and bloat analyses therefore run on the
    variant graph); ``origin``/``variant`` record the source function
    and the variant's display name for diagnostics.
    """

    name: str
    static_params: tuple  # Symbols
    kind: str  # "def" | "lam"
    residual: bool = False
    origin: str = ""
    variant: str = ""


@dataclass(frozen=True, slots=True)
class CallEdge:
    """A specialization-time call with per-static-parameter bounds.

    ``args`` maps each static parameter of ``dst`` to its abstract
    bound relative to the static parameters of ``src`` (for memo
    summary edges: of the residual definition the summary is rooted
    at).  ``sites`` are expression paths in ``pe/check.py`` style; the
    first names the call site, the rest the unfold chain it was
    composed through.
    """

    src: str
    dst: str
    kind: str  # "unfold" | "closure" | "memo"
    sites: tuple  # of str
    under_dynamic: bool
    static_guarded: bool
    args: tuple  # sorted tuple of (param: Symbol, bound)

    def describe(self) -> str:
        site = self.sites[0] if self.sites else "?"
        via = ""
        if len(self.sites) > 1:
            via = " (via " + " -> ".join(self.sites[1:]) + ")"
        return f"{self.src} -> {self.dst} at {site}{via}"


@dataclass
class CallGraph:
    """Everything the client analyses consume."""

    nodes: dict = field(default_factory=dict)  # name -> Node
    unfold_edges: list = field(default_factory=list)  # CallEdge
    memo_edges: list = field(default_factory=list)  # residual-level CallEdge
    summaries: dict = field(default_factory=dict)  # def name -> summary
    bta: BTAResult | None = None


# -- result-source summaries ---------------------------------------------------------
#
# Summary domain: TOP, or (frozenset of parameter indices, const flag) —
# "the result is a substructure of one of these parameters, or (if the
# flag is set) a program literal".

_BOTTOM_SUMMARY = (frozenset(), False)


def _join_summary(a: Any, b: Any) -> Any:
    if a is TOP or b is TOP:
        return TOP
    return (a[0] | b[0], a[1] or b[1])


class _Summaries:
    def __init__(self, annotated):
        self.defs = {d.name: d for d in annotated.defs}

    def solve(self) -> dict:
        solver = Solver(_join_summary, _BOTTOM_SUMMARY)
        return solver.solve(
            list(self.defs),
            lambda name, s: self._transfer(name, s),
        )

    def _transfer(self, name: Symbol, solver: Solver) -> Any:
        d = self.defs[name]
        idx = {p: i for i, p in enumerate(d.params)}
        return self._ret(d.body, idx, {}, solver)

    def _ret(self, e, idx, env, solver):
        if isinstance(e, If):
            return _join_summary(
                self._ret(e.then, idx, env, solver),
                self._ret(e.alt, idx, env, solver),
            )
        if isinstance(e, Let):
            env = dict(env)
            env[e.var] = self._val(e.rhs, idx, env, solver)
            return self._ret(e.body, idx, env, solver)
        return self._val(e, idx, env, solver)

    def _val(self, e, idx, env, solver):
        if isinstance(e, Const):
            return (frozenset(), True)
        if isinstance(e, Var):
            if e.name in idx:
                return (frozenset([idx[e.name]]), False)
            if e.name in env:
                return env[e.name]
            return TOP
        if isinstance(e, Let):
            env = dict(env)
            env[e.var] = self._val(e.rhs, idx, env, solver)
            return self._val(e.body, idx, env, solver)
        if isinstance(e, If):
            return _join_summary(
                self._val(e.then, idx, env, solver),
                self._val(e.alt, idx, env, solver),
            )
        if isinstance(e, Prim):
            if _destructor_path(e.op.name) is not None and len(e.args) == 1:
                return _weaken_summary(
                    self._val(e.args[0], idx, env, solver)
                )
            if e.op in _SEARCH_PRIMS and len(e.args) == 2:
                inner = _weaken_summary(
                    self._val(e.args[1], idx, env, solver)
                )
                return _join_summary(inner, (frozenset(), True))
            if e.op in _PREDICATE_PRIMS:
                return (frozenset(), True)
            return TOP
        if isinstance(e, App) and isinstance(e.fn, Var):
            callee = self.defs.get(e.fn.name)
            if callee is not None:
                summary = solver.get(e.fn.name)
                if summary is TOP:
                    return TOP
                out: Any = (frozenset(), summary[1])
                for i in summary[0]:
                    if i >= len(e.args):
                        return TOP
                    out = _join_summary(
                        out,
                        _weaken_summary(
                            self._val(e.args[i], idx, env, solver)
                        ),
                    )
                return out
        return TOP


def _weaken_summary(s: Any) -> Any:
    return s  # substructure-of composes; summaries are already weak


# -- the walker ----------------------------------------------------------------------


class _Builder:
    def __init__(self, bta: BTAResult):
        self.bta = bta
        self.annotated = bta.annotated
        self.defs = {d.name: d for d in bta.annotated.defs}
        self.closure = bta.closure
        self.graph = CallGraph(bta=bta)
        self.graph.summaries = _Summaries(bta.annotated).solve()
        self._lam_names: dict[int, str] = {}
        self._lam_counter = 0

    # -- naming ------------------------------------------------------------------

    def _lam_name(self, lam_id: int, host: Symbol) -> str:
        if lam_id not in self._lam_names:
            self._lam_counter += 1
            self._lam_names[lam_id] = f"lambda#{self._lam_counter}@{host}"
        return self._lam_names[lam_id]

    def _static_params(self, params, bts) -> tuple:
        return tuple(p for p, bt in zip(params, bts) if bt is S)

    # -- construction ------------------------------------------------------------

    def build(self) -> CallGraph:
        variants = getattr(self.bta, "variants", None) or {}
        for d in self.annotated.defs:
            info = variants.get(d.name)
            self.graph.nodes[str(d.name)] = Node(
                name=str(d.name),
                static_params=self._static_params(d.params, d.bts),
                kind="def",
                residual=d.residual,
                origin=str(info.origin) if info is not None else str(d.name),
                variant=info.display if info is not None else "",
            )
        if self.closure is not None:
            for lam_id, site in self.closure.lams.items():
                name = self._lam_name(lam_id, site.host)
                self.graph.nodes[name] = Node(
                    name=name,
                    static_params=self._static_params(
                        site.node.params, site.param_bts
                    ),
                    kind="lam",
                )
        # Per-node unfold/closure/memo edges (the T1 graph).
        for d in self.annotated.defs:
            env = {p: Bound(0, ((p, (), True),)) for p in
                   self._static_params(d.params, d.bts)}
            self._walk_edges(
                str(d.name), d.body, env, path=(), dyn=False, guard=False
            )
        if self.closure is not None:
            for lam_id, site in self.closure.lams.items():
                name = self._lam_name(lam_id, site.host)
                statics = self.graph.nodes[name].static_params
                env = {p: Bound(0, ((p, (), True),)) for p in statics}
                self._walk_edges(
                    name, site.node.body, env, path=("lam.body",),
                    dyn=False, guard=False,
                )
        # Residual-level memo summary edges (the T2 graph).
        for d in self.annotated.defs:
            if d.residual:
                self._summarize_residual(d)
        return self.graph

    # -- bound extraction --------------------------------------------------------

    def _bound_of(self, e, env) -> Any:
        if isinstance(e, Const):
            return Bound(datum_size(e.value), ())
        if isinstance(e, Lift):
            return self._bound_of(e.expr, env)
        if isinstance(e, Var):
            return env.get(e.name, TOP)
        if isinstance(e, Let):
            inner = dict(env)
            inner[e.var] = self._bound_of(e.rhs, env)
            return self._bound_of(e.body, inner)
        if isinstance(e, If):
            return join_bounds(
                self._bound_of(e.then, env), self._bound_of(e.alt, env)
            )
        if isinstance(e, Prim):
            return self._bound_of_prim(e, env)
        if isinstance(e, App) and isinstance(e.fn, Var):
            callee = self.defs.get(e.fn.name)
            if callee is not None:
                return self._bound_of_call(e, env)
        return TOP

    def _bound_of_call(self, e: App, env) -> Any:
        summary = self.graph.summaries.get(e.fn.name, TOP)
        if summary is TOP:
            return TOP
        params, const = summary
        out: Any = Bound(0, (), True) if const else None
        for i in params:
            if i >= len(e.args):
                return TOP
            out = join_bounds(
                out, _weaken(self._bound_of(e.args[i], env))
            )
        if out is None:  # result provably a constant-free dead loop
            return Bound(0, (), True)
        return out

    def _bound_of_prim(self, e: Prim, env) -> Any:
        name = e.op.name
        path = _destructor_path(name)
        if path is not None and len(e.args) == 1:
            return _apply_path(self._bound_of(e.args[0], env), path)
        if e.op in _SEARCH_PRIMS and len(e.args) == 2:
            inner = _weaken(self._bound_of(e.args[1], env))
            if isinstance(inner, Bound):
                return Bound(inner.const, inner.terms, True)
            return TOP
        if e.op in _PREDICATE_PRIMS:
            return Bound(1, (), True)
        if e.op == _CONS and len(e.args) == 2:
            return self._combine_construction(e.args, env, extra=1)
        if e.op == _LIST:
            return self._combine_construction(e.args, env, extra=len(e.args))
        if e.op == _APPEND:
            combined = self._combine_construction(e.args, env, extra=0)
            return _weaken(combined)
        if e.op == _REVERSE and len(e.args) == 1:
            return _weaken(self._bound_of(e.args[0], env))
        if e.op in (_PLUS, _MINUS) and len(e.args) == 2:
            a, b = e.args
            sign = 1 if e.op == _PLUS else -1
            if isinstance(b, Const) and isinstance(b.value, int):
                return self._offset(self._bound_of(a, env), sign * b.value)
            if (
                e.op == _PLUS
                and isinstance(a, Const)
                and isinstance(a.value, int)
            ):
                return self._offset(self._bound_of(b, env), a.value)
            return TOP
        if e.op == _ADD1 and len(e.args) == 1:
            return self._offset(self._bound_of(e.args[0], env), 1)
        if e.op == _SUB1 and len(e.args) == 1:
            return self._offset(self._bound_of(e.args[0], env), -1)
        if e.op == _QUOTIENT and len(e.args) == 2:
            divisor = e.args[1]
            if (
                isinstance(divisor, Const)
                and isinstance(divisor.value, int)
                and divisor.value >= 2
            ):
                # Strictly shrinking for positive values; modelled as a
                # unit decrement (the guarded-descent rule is what
                # makes either form count).
                return self._offset(self._bound_of(e.args[0], env), -1)
            return TOP
        return TOP

    def _offset(self, b: Any, delta: int) -> Any:
        if isinstance(b, NumBound):
            return NumBound(b.param, b.path, b.delta + delta)
        if (
            isinstance(b, Bound)
            and len(b.terms) == 1
            and b.const == 0
            and not b.literal
            and b.terms[0][2]
        ):
            p, path, _ = b.terms[0]
            return NumBound(p, path, delta)
        return TOP

    def _combine_construction(self, args, env, extra: int) -> Any:
        const = extra
        terms: list = []
        literal = False
        for a in args:
            b = self._bound_of(a, env)
            if isinstance(b, NumBound):
                if b.delta != 0:
                    return TOP  # fresh numbers escape the value universe
                b = Bound(0, ((b.param, b.path, True),))
            if not isinstance(b, Bound):
                return TOP
            const += b.const
            terms.extend(b.terms)
            literal = literal or b.literal
        terms.sort(key=lambda t: (str(t[0]), t[1], t[2]))
        return Bound(const, tuple(terms), literal)

    # -- per-node edges (T1) -------------------------------------------------------

    def _add_edge(self, **kw) -> None:
        self.graph.unfold_edges.append(CallEdge(**kw))

    def _edge_args(self, dst_node: Node, params, bts, args, env) -> tuple:
        out = []
        for p, bt, a in zip(params, bts, args):
            if bt is S:
                out.append((p, self._bound_of(a, env)))
        return tuple(out)

    def _walk_edges(self, src, e, env, path, dyn, guard) -> None:
        seg = "/".join(path) if path else "body"
        if isinstance(e, (Const, Var)):
            return
        if isinstance(e, Lift):
            self._walk_edges(src, e.expr, env, path + ("lift",), dyn, guard)
            return
        if isinstance(e, Let):
            self._walk_edges(src, e.rhs, env, path + ("let.rhs",), dyn, guard)
            inner = dict(env)
            inner[e.var] = self._bound_of(e.rhs, env)
            self._walk_edges(src, e.body, inner, path + ("let.body",), dyn, guard)
            return
        if isinstance(e, If):
            self._walk_edges(src, e.test, env, path + ("if.test",), dyn, guard)
            self._walk_edges(src, e.then, env, path + ("if.then",), dyn, True)
            self._walk_edges(src, e.alt, env, path + ("if.alt",), dyn, True)
            return
        if isinstance(e, DIf):
            self._walk_edges(src, e.test, env, path + ("dif.test",), dyn, guard)
            self._walk_edges(src, e.then, env, path + ("dif.then",), True, guard)
            self._walk_edges(src, e.alt, env, path + ("dif.alt",), True, guard)
            return
        if isinstance(e, (Prim, DPrim)):
            tag = "prim" if isinstance(e, Prim) else "dprim"
            for i, a in enumerate(e.args):
                self._walk_edges(
                    src, a, env, path + (f"{tag}.arg{i}",), dyn, guard
                )
            return
        if isinstance(e, DLam):
            # The body is specialized inline at the definition site; its
            # execution is under dynamic control, its params dynamic.
            self._walk_edges(
                src, e.body, env, path + ("dlam.body",), True, guard
            )
            return
        if isinstance(e, Lam):
            # A static lambda is its own graph node; walked separately.
            return
        if isinstance(e, MemoCall):
            callee = self.defs[e.name]
            self._add_edge(
                src=src,
                dst=str(e.name),
                kind="memo",
                sites=(f"{seg}/memo[{e.name}]",),
                under_dynamic=dyn,
                static_guarded=guard,
                args=self._edge_args(
                    None, callee.params, callee.bts, e.args, env
                ),
            )
            for i, a in enumerate(e.args):
                self._walk_edges(
                    src, a, env, path + (f"memo.arg{i}",), dyn, guard
                )
            return
        if isinstance(e, (App, DApp)):
            tag = "app" if isinstance(e, App) else "dapp"
            if isinstance(e, App):
                self._app_edges(src, e, env, seg, dyn, guard)
            self._walk_edges(src, e.fn, env, path + (f"{tag}.fn",), dyn, guard)
            for i, a in enumerate(e.args):
                self._walk_edges(
                    src, a, env, path + (f"{tag}.arg{i}",), dyn, guard
                )
            return
        raise TypeError(f"unexpected node {type(e).__name__}")

    def _app_edges(self, src, e: App, env, seg, dyn, guard) -> None:
        if isinstance(e.fn, Var) and e.fn.name in self.defs:
            callee = self.defs[e.fn.name]
            self._add_edge(
                src=src,
                dst=str(e.fn.name),
                kind="unfold",
                sites=(f"{seg}/app[{e.fn.name}]",),
                under_dynamic=dyn,
                static_guarded=guard,
                args=self._edge_args(
                    None, callee.params, callee.bts, e.args, env
                ),
            )
            return
        if self.closure is None:
            return
        for lam_id in self.closure.apps.get(id(e), ()):
            site = self.closure.lams.get(lam_id)
            if site is None:
                continue
            name = self._lam_name(lam_id, site.host)
            self._add_edge(
                src=src,
                dst=name,
                kind="closure",
                sites=(f"{seg}/app[{name}]",),
                under_dynamic=dyn,
                static_guarded=guard,
                args=self._edge_args(
                    None, site.node.params, site.param_bts, e.args, env
                ),
            )

    # -- residual memo summaries (T2) ---------------------------------------------

    def _summarize_residual(self, d) -> None:
        root = str(d.name)
        env0 = {
            p: Bound(0, ((p, (), True),))
            for p in self._static_params(d.params, d.bts)
        }
        # state: key -> (env, under_dyn, via chain); key is a def name
        # or a lam id, for bodies reachable from the root by unfolding.
        state: dict[Any, tuple] = {}
        edges: dict[Any, CallEdge] = {}
        work: list[Any] = ["__root__"]
        queued = {"__root__"}

        def enter(key, body_env, dyn, via, site):
            prev = state.get(key)
            if prev is None:
                merged = (dict(body_env), dyn, via + (site,))
            else:
                penv, pdyn, pvia = prev
                merged_env = dict(penv)
                for k, v in body_env.items():
                    merged_env[k] = join_bounds(penv.get(k), v)
                for k in penv:
                    if k not in body_env:
                        merged_env[k] = TOP
                merged = (merged_env, pdyn or dyn, pvia)
            if prev is None or merged != prev:
                state[key] = merged
                if key not in queued:
                    queued.add(key)
                    work.append(key)

        def walk(key):
            if key == "__root__":
                body, env, dyn, via = d.body, env0, False, ()
            elif isinstance(key, Symbol):
                env, dyn, via = state[key]
                body = self.defs[key].body
            else:  # lam id
                env, dyn, via = state[key]
                body = self.closure.lams[key].node.body
            self._walk_summary(
                key, body, env, (), dyn, False, via, enter, edges
            )

        while work:
            key = work.pop()
            queued.discard(key)
            walk(key)

        for edge in edges.values():
            self.graph.memo_edges.append(
                CallEdge(
                    src=root,
                    dst=edge.dst,
                    kind="memo",
                    sites=edge.sites,
                    under_dynamic=edge.under_dynamic,
                    static_guarded=edge.static_guarded,
                    args=edge.args,
                )
            )

    def _walk_summary(
        self, key, e, env, path, dyn, guard, via, enter, edges
    ) -> None:
        seg = "/".join(path) if path else "body"
        here = f"{key if key != '__root__' else 'body'}"
        if isinstance(e, (Const, Var)):
            return
        if isinstance(e, Lift):
            self._walk_summary(
                key, e.expr, env, path + ("lift",), dyn, guard, via,
                enter, edges,
            )
            return
        if isinstance(e, Let):
            self._walk_summary(
                key, e.rhs, env, path + ("let.rhs",), dyn, guard, via,
                enter, edges,
            )
            inner = dict(env)
            inner[e.var] = self._bound_of(e.rhs, env)
            self._walk_summary(
                key, e.body, inner, path + ("let.body",), dyn, guard,
                via, enter, edges,
            )
            return
        if isinstance(e, If):
            self._walk_summary(
                key, e.test, env, path + ("if.test",), dyn, guard, via,
                enter, edges,
            )
            for br, tag in ((e.then, "if.then"), (e.alt, "if.alt")):
                self._walk_summary(
                    key, br, env, path + (tag,), dyn, True, via, enter,
                    edges,
                )
            return
        if isinstance(e, DIf):
            self._walk_summary(
                key, e.test, env, path + ("dif.test",), dyn, guard,
                via, enter, edges,
            )
            for br, tag in ((e.then, "dif.then"), (e.alt, "dif.alt")):
                self._walk_summary(
                    key, br, env, path + (tag,), True, guard, via,
                    enter, edges,
                )
            return
        if isinstance(e, (Prim, DPrim)):
            tag = "prim" if isinstance(e, Prim) else "dprim"
            for i, a in enumerate(e.args):
                self._walk_summary(
                    key, a, env, path + (f"{tag}.arg{i}",), dyn, guard,
                    via, enter, edges,
                )
            return
        if isinstance(e, DLam):
            self._walk_summary(
                key, e.body, env, path + ("dlam.body",), True, guard,
                via, enter, edges,
            )
            return
        if isinstance(e, Lam):
            return
        if isinstance(e, MemoCall):
            callee = self.defs[e.name]
            site = f"{here}: {seg}/memo[{e.name}]"
            edges[(key, id(e))] = CallEdge(
                src="",
                dst=str(e.name),
                kind="memo",
                sites=(site,) + via,
                under_dynamic=dyn,
                static_guarded=guard,
                args=self._edge_args(
                    None, callee.params, callee.bts, e.args, env
                ),
            )
            for i, a in enumerate(e.args):
                self._walk_summary(
                    key, a, env, path + (f"memo.arg{i}",), dyn, guard,
                    via, enter, edges,
                )
            return
        if isinstance(e, (App, DApp)):
            tag = "app" if isinstance(e, App) else "dapp"
            if isinstance(e, App):
                self._summary_app(
                    key, e, env, seg, here, dyn, guard, via, enter
                )
            self._walk_summary(
                key, e.fn, env, path + (f"{tag}.fn",), dyn, guard, via,
                enter, edges,
            )
            for i, a in enumerate(e.args):
                self._walk_summary(
                    key, a, env, path + (f"{tag}.arg{i}",), dyn, guard,
                    via, enter, edges,
                )
            return
        raise TypeError(f"unexpected node {type(e).__name__}")

    def _summary_app(
        self, key, e: App, env, seg, here, dyn, guard, via, enter
    ) -> None:
        site = f"{here}: {seg}/app"
        if isinstance(e.fn, Var) and e.fn.name in self.defs:
            callee = self.defs[e.fn.name]
            body_env = {
                p: self._bound_of(a, env)
                for p, bt, a in zip(callee.params, callee.bts, e.args)
                if bt is S
            }
            enter(e.fn.name, body_env, dyn, via, f"{site}[{e.fn.name}]")
            return
        if self.closure is None:
            return
        for lam_id in self.closure.apps.get(id(e), ()):
            lam_site = self.closure.lams.get(lam_id)
            if lam_site is None:
                continue
            name = self._lam_name(lam_id, lam_site.host)
            body_env = {
                p: self._bound_of(a, env)
                for p, bt, a in zip(
                    lam_site.node.params, lam_site.param_bts, e.args
                )
                if bt is S
            }
            enter(lam_id, body_env, dyn, via, f"{site}[{name}]")


def build_callgraph(bta: BTAResult) -> CallGraph:
    """Build the call graph with argument bounds for an analyzed program."""
    return _Builder(bta).build()
