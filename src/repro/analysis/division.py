"""Division-quality analysis: polyvariant vs. monovariant divisions.

A binding-time division can be *congruent* (``pe/check.py``) and *safe*
(``analysis/termination.py``) and still be needlessly imprecise: the
monovariant join gives every function one division, so a single dynamic
call site poisons every static use of a shared helper — static values
get lifted into residual code (a "spurious lift"), static parameters
get dynamized, and calls that could unfold at specialization time are
memoized instead.

This module measures that imprecision.  It compares the polyvariant
division (:func:`repro.pe.bta.analyze` with ``bta="poly"``) against the
monovariant baseline of the *same* program and reports, per function
variant:

* **recovered parameters** — parameters static under the variant's
  division but dynamic under the monovariant join;
* **spurious lifts removed** — lift sites present in the monovariant
  annotation of the origin with no counterpart in the variant (the
  static value no longer needs to enter residual code);
* **classification and call-site decision deltas** — origin functions
  that flip between memoized and unfolded, and per-call-site
  unfold/memo decisions that change, relative to the baseline.

Lift sites are compared by *annotation-neutral* expression paths: the
walk uses one segment vocabulary for the static and dynamic flavor of
each construct (``if.test`` for both ``if`` and ``if^D``, ``call.arg0``
for unfold calls and memoized calls alike) and steps through ``lift``
transparently, so the mono and poly annotations of one source body
yield comparable paths even though their node types differ.

Everything here is a diagnostic, never a safety finding: a report with
zero recovered parameters just means the program was monovariant-clean
to begin with.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.lang.ast import (
    App,
    Const,
    DApp,
    DIf,
    DLam,
    DPrim,
    If,
    Lam,
    Let,
    Lift,
    MemoCall,
    Prim,
    Var,
)
from repro.obs import traced
from repro.pe.annprog import BindingTime
from repro.pe.bta import BTAResult, analyze

S = BindingTime.STATIC
D = BindingTime.DYNAMIC


@dataclass(frozen=True, slots=True)
class VariantQuality:
    """The quality delta of one polyvariant function variant vs. mono."""

    name: str                 # the variant's def name in the poly program
    origin: str               # the source function it was cloned from
    display: str              # "origin@SDr" (or the bare name for the goal)
    signature: str            # per-variant S/D parameter signature
    role: str                 # "residual" | "value" | "widened"
    mono_signature: str       # the monovariant join's signature for origin
    recovered_params: tuple   # of str: static here, dynamic under mono
    spurious_lifts_removed: tuple  # of str: mono lift paths gone here
    lifts_introduced: tuple   # of str: lift paths only the variant has
    lift_sites: tuple         # of str: the variant's own lift paths
    classification_delta: str | None  # e.g. "memo -> unfold", else None
    decision_deltas: tuple    # of (path, callee_origin, mono, poly)
    call_sites: tuple         # of str: call sites that created the variant

    def to_json(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "origin": self.origin,
            "display": self.display,
            "signature": self.signature,
            "role": self.role,
            "mono_signature": self.mono_signature,
            "recovered_params": list(self.recovered_params),
            "spurious_lifts_removed": list(self.spurious_lifts_removed),
            "lifts_introduced": list(self.lifts_introduced),
            "lift_sites": list(self.lift_sites),
            "classification_delta": self.classification_delta,
            "decision_deltas": [list(d) for d in self.decision_deltas],
            "call_sites": list(self.call_sites),
        }


@dataclass(frozen=True)
class DivisionReport:
    """The division-quality comparison for one program/signature pair."""

    goal: str
    signature: str
    variants: tuple = ()          # of VariantQuality, def order
    widened: tuple = ()           # origins that overflowed the variant cap
    max_variants: int = 0

    @property
    def recovered_param_count(self) -> int:
        return sum(len(v.recovered_params) for v in self.variants)

    @property
    def spurious_lift_count(self) -> int:
        return sum(len(v.spurious_lifts_removed) for v in self.variants)

    @property
    def decision_delta_count(self) -> int:
        return sum(len(v.decision_deltas) for v in self.variants) + sum(
            1 for v in self.variants if v.classification_delta
        )

    @property
    def improved(self) -> bool:
        """Did polyvariance sharpen the division at all?"""
        return bool(
            self.recovered_param_count
            or self.spurious_lift_count
            or self.decision_delta_count
        )

    def __str__(self) -> str:
        lines = [
            f"division quality for {self.goal} [{self.signature}]:"
            f" {len(self.variants)} variant(s),"
            f" {self.recovered_param_count} recovered static parameter(s),"
            f" {self.spurious_lift_count} spurious lift(s) removed,"
            f" {self.decision_delta_count} unfold/memo decision delta(s)"
        ]
        for v in self.variants:
            marks = []
            if v.recovered_params:
                marks.append(
                    "recovered " + ", ".join(map(str, v.recovered_params))
                )
            if v.spurious_lifts_removed:
                marks.append(
                    f"{len(v.spurious_lifts_removed)} lift(s) removed"
                )
            if v.classification_delta:
                marks.append(v.classification_delta)
            for path, callee, mono, poly in v.decision_deltas:
                marks.append(f"{callee} at {path}: {mono} -> {poly}")
            note = f" ({'; '.join(marks)})" if marks else ""
            lines.append(
                f"  {v.display} [{v.signature}]"
                f" vs mono [{v.mono_signature}]{note}"
            )
        for o in self.widened:
            lines.append(f"  {o}: widened to the monovariant join (cap hit)")
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        return {
            "goal": self.goal,
            "signature": self.signature,
            "max_variants": self.max_variants,
            "improved": self.improved,
            "recovered_params": self.recovered_param_count,
            "spurious_lifts_removed": self.spurious_lift_count,
            "decision_deltas": self.decision_delta_count,
            "widened": list(self.widened),
            "variants": [v.to_json() for v in self.variants],
        }


# -- annotation-neutral lift-site paths ----------------------------------------------


def lift_sites(body) -> tuple:
    """Annotation-neutral paths of every ``lift`` in an annotated body."""
    out: list[str] = []
    _walk_lifts(body, (), out)
    return tuple(out)


def _walk_lifts(e, path: tuple, out: list) -> None:
    if isinstance(e, Lift):
        out.append("/".join(path) or "<body>")
        # Transparent: the lifted expression keeps this path.
        _walk_lifts(e.expr, path, out)
        return
    if isinstance(e, (Const, Var)):
        return
    if isinstance(e, (Lam, DLam)):
        _walk_lifts(e.body, path + ("lam.body",), out)
        return
    if isinstance(e, Let):
        _walk_lifts(e.rhs, path + ("let.rhs",), out)
        _walk_lifts(e.body, path + ("let.body",), out)
        return
    if isinstance(e, (If, DIf)):
        _walk_lifts(e.test, path + ("if.test",), out)
        _walk_lifts(e.then, path + ("if.then",), out)
        _walk_lifts(e.alt, path + ("if.alt",), out)
        return
    if isinstance(e, (Prim, DPrim)):
        for i, a in enumerate(e.args):
            _walk_lifts(a, path + (f"prim.arg{i}",), out)
        return
    if isinstance(e, (App, DApp)):
        _walk_lifts(e.fn, path + ("call.fn",), out)
        for i, a in enumerate(e.args):
            _walk_lifts(a, path + (f"call.arg{i}",), out)
        return
    if isinstance(e, MemoCall):
        for i, a in enumerate(e.args):
            _walk_lifts(a, path + (f"call.arg{i}",), out)
        return
    for i, c in enumerate(e.children()):
        _walk_lifts(c, path + (f"child{i}",), out)


# -- the comparison ------------------------------------------------------------------


def _sig(bts: Iterable[BindingTime]) -> str:
    return "".join(bt.value for bt in bts)


def compare_divisions(poly: BTAResult, mono: BTAResult) -> DivisionReport:
    """Compare an already-computed poly result against its mono baseline."""
    mono_defs = {d.name: d for d in mono.annotated.defs}
    mono_decisions = {
        host: {(path, callee): dec for path, callee, dec in sites}
        for host, sites in mono.decisions.items()
    }
    qualities = []
    for d in poly.annotated.defs:
        info = poly.variants.get(d.name)
        origin = info.origin if info is not None else poly.origin_of(d.name)
        md = mono_defs.get(origin)
        if md is None:
            continue  # unreachable under mono: nothing to compare against
        mono_lifts = lift_sites(md.body)
        poly_lifts = lift_sites(d.body)
        removed = tuple(_multiset_diff(mono_lifts, poly_lifts))
        introduced = tuple(_multiset_diff(poly_lifts, mono_lifts))
        recovered = tuple(
            # Strip the alpha-renaming suffix: report source param names.
            str(mp).split("%")[0]
            for mp, mb, pb in zip(md.params, md.bts, d.bts)
            if pb is S and mb is D
        )
        delta = None
        if md.residual != d.residual:
            old = "memo" if md.residual else "unfold"
            new = "memo" if d.residual else "unfold"
            delta = f"{old} -> {new}"
        mono_dec = mono_decisions.get(origin, {})
        deltas = []
        for path, callee, dec in poly.decisions.get(d.name, ()):
            key = (path, poly.origin_of(callee))
            before = mono_dec.get(key)
            if before is not None and before != dec:
                deltas.append((path, str(key[1]), before, dec))
        qualities.append(
            VariantQuality(
                name=str(d.name),
                origin=str(origin),
                display=info.display if info is not None else str(d.name),
                signature=_sig(d.bts),
                role=info.role if info is not None else "mono",
                mono_signature=_sig(md.bts),
                recovered_params=recovered,
                spurious_lifts_removed=removed,
                lifts_introduced=introduced,
                lift_sites=poly_lifts,
                classification_delta=delta,
                decision_deltas=tuple(deltas),
                call_sites=tuple(info.call_sites) if info is not None else (),
            )
        )
    return DivisionReport(
        goal=str(poly.annotated.goal),
        signature=_sig(
            poly.annotated.lookup(poly.annotated.goal).bts
        ),
        variants=tuple(qualities),
        widened=tuple(str(o) for o in sorted(poly.widened, key=str)),
        max_variants=len(poly.variants),
    )


def _multiset_diff(a: tuple, b: tuple) -> list:
    """Elements of ``a`` not matched (with multiplicity) in ``b``."""
    from collections import Counter

    remaining = Counter(b)
    out = []
    for x in a:
        if remaining[x] > 0:
            remaining[x] -= 1
        else:
            out.append(x)
    return out


@traced("analysis.division")
def analyze_division(
    program,
    signature: str,
    goal: str | None = None,
    memo_hints: Iterable[str] = (),
    unfold_hints: Iterable[str] = (),
    max_variants: int = 8,
) -> DivisionReport:
    """BTA a program both ways and report the polyvariant quality delta."""
    from repro.lang.parser import parse_program

    if isinstance(program, str):
        program = parse_program(program, goal=goal)
    poly = analyze(
        program,
        signature,
        memo_hints=memo_hints,
        unfold_hints=unfold_hints,
        bta="poly",
        max_variants=max_variants,
    )
    mono = analyze(
        program,
        signature,
        memo_hints=memo_hints,
        unfold_hints=unfold_hints,
        bta="mono",
    )
    return compare_divisions(poly, mono)
