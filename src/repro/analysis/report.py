"""Findings and reports of the specialization-safety analyses.

Findings mirror :class:`repro.pe.check.CongruenceViolation`: a kind, the
definition they anchor to, an expression path, and a human-readable
message — plus the offending call cycle, since both client analyses
reason about cycles of specialization-time calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.pe.errors import PEError


class AnalysisKind(Enum):
    """What a finding claims about the program."""

    # The specializer may unfold forever or build an unbounded set of
    # residual definitions (termination analysis).
    POSSIBLE_INFINITE_SPECIALIZATION = "possible-infinite-specialization"
    # A static parameter of a specialization point takes unboundedly
    # many values, so the residual program grows without bound (code
    # bloat analysis).
    UNBOUNDED_POLYVARIANCE = "unbounded-polyvariance"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, slots=True)
class AnalysisFinding:
    """One analysis finding, in the style of ``pe/check.py``.

    ``cycle`` lists the call edges of the offending cycle as
    ``"caller -> callee at <expression path>"`` strings; ``path`` is the
    expression path of the first edge's call site within ``def_name``.
    """

    kind: AnalysisKind
    def_name: str
    path: str
    message: str
    cycle: tuple = ()

    def __str__(self) -> str:
        loc = f"{self.def_name}: {self.path}" if self.path else self.def_name
        text = f"[{self.kind.value}] {loc}: {self.message}"
        if self.cycle:
            text += "".join(f"\n    {edge}" for edge in self.cycle)
        return text

    def to_json(self) -> dict[str, Any]:
        return {
            "kind": self.kind.value,
            "def": self.def_name,
            "path": self.path,
            "message": self.message,
            "cycle": list(self.cycle),
        }


@dataclass(frozen=True)
class AnalysisReport:
    """The combined output of the termination and code-bloat analyses.

    ``findings`` is empty iff the analysis proved the program safe to
    specialize: every specialization-time call cycle reachable under
    dynamic control decreases, and every specialization point has
    bounded polyvariance.  ``metrics`` carries per-residual-definition
    code-bloat estimates, and ``division`` (when the caller asked for
    one) the :class:`~repro.analysis.division.DivisionReport` comparing
    the polyvariant division against the monovariant baseline — both
    pure diagnostics, never findings, so neither affects ``safe``.
    """

    findings: tuple = ()
    metrics: dict = field(default_factory=dict)
    division: Any = None

    @property
    def safe(self) -> bool:
        return not self.findings

    def __str__(self) -> str:
        lines = []
        if self.safe:
            lines.append("analysis: no findings")
        else:
            lines.append(f"analysis: {len(self.findings)} finding(s)")
            lines.extend(str(f) for f in self.findings)
        if self.division is not None:
            lines.append(str(self.division))
        return "\n".join(lines)

    def to_json(self) -> dict[str, Any]:
        out = {
            "safe": self.safe,
            "findings": [f.to_json() for f in self.findings],
            "metrics": self.metrics,
        }
        if self.division is not None:
            out["division"] = self.division.to_json()
        return out


class UnsafeProgramError(PEError):
    """Raised in ``forbid`` mode for a program the analysis cannot prove
    safe to specialize (mirrors ``pe.check.AnnotationViolation``)."""

    def __init__(self, report: AnalysisReport):
        self.report = report
        self.findings = report.findings
        lines = [
            f"{len(report.findings)} specialization-safety finding(s)"
        ]
        lines.extend(f"  {f}" for f in report.findings)
        super().__init__("\n".join(lines))
