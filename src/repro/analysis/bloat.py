"""Code-bloat estimation for residual programs.

Two products, per residual definition (specialization point):

* **metrics** — diagnostics only, never findings: a lower-bound
  estimate of the residual code emitted per specialization of the
  definition (unfold calls inlined, static conditionals counted at the
  larger branch), the number of dynamic conditionals in value position
  (each duplicates its continuation under the ``dif`` duplicate
  strategy), and the number of unfold calls under dynamic control
  (each dynamic branch point multiplies the inlined code);

* **findings** — ``unbounded-polyvariance``: one per static parameter
  that the termination analysis found unbounded around a memo cycle.
  Unbounded polyvariance is the code-bloat face of the same defect:
  each fresh static value mints a fresh residual definition, so the
  residual program grows without bound.  The unboundedness is
  propagated forward: a specialization point fed by an unbounded one
  inherits the blow-up.
"""

from __future__ import annotations

from typing import Any

from repro.lang.ast import (
    App,
    Const,
    DApp,
    DIf,
    DLam,
    DPrim,
    If,
    Lam,
    Let,
    Lift,
    MemoCall,
    Prim,
    Var,
)
from repro.analysis.callgraph import CallGraph
from repro.analysis.fixpoint import Solver
from repro.analysis.report import AnalysisFinding, AnalysisKind


def _estimate(defs: dict, name, stack: frozenset) -> tuple[int, bool]:
    """(size lower bound, data_dependent) for one specialization."""
    d = defs[name]

    def est(e) -> tuple[int, bool]:
        if isinstance(e, (Const, Var, Lift)):
            return 1, False
        if isinstance(e, Let):
            a, da = est(e.rhs)
            b, db = est(e.body)
            return a + b + 1, da or db
        if isinstance(e, (If,)):
            # One branch survives specialization; count the larger.
            t, dt = est(e.then)
            a, da = est(e.alt)
            return max(t, a), dt or da
        if isinstance(e, DIf):
            t, d1 = est(e.test)
            th, d2 = est(e.then)
            al, d3 = est(e.alt)
            return t + th + al + 1, d1 or d2 or d3
        if isinstance(e, (Prim, DPrim, DApp, MemoCall)):
            total, dd = 1, False
            for a in e.children():
                s, da = est(a)
                total += s
                dd = dd or da
            return total, dd
        if isinstance(e, (Lam, DLam)):
            s, dd = est(e.body)
            return s + 1, dd
        if isinstance(e, App):
            if isinstance(e.fn, Var) and e.fn.name in defs:
                if e.fn.name in stack:
                    # A recursive unfold: how far it goes depends on
                    # the static data, so the estimate is a floor.
                    return 1, True
                s, dd = _estimate(
                    defs, e.fn.name, stack | {e.fn.name}
                )
                for a in e.args:
                    sa, da = est(a)
                    s += sa
                    dd = dd or da
                return s, dd
            total, dd = 1, False
            for a in (e.fn, *e.args):
                s, da = est(a)
                total += s
                dd = dd or da
            return total, dd
        return 1, False

    return est(d.body)


def _count(defs: dict, name) -> dict[str, int]:
    """Per-definition structural counts (no inlining)."""
    d = defs[name]
    counts = {"dif_value_positions": 0, "unfolds_under_dynamic": 0,
              "memo_sites": 0}

    def walk(e, tail: bool, dyn: bool) -> None:
        if isinstance(e, (Const, Var)):
            return
        if isinstance(e, Lift):
            walk(e.expr, tail, dyn)
            return
        if isinstance(e, Let):
            walk(e.rhs, False, dyn)
            walk(e.body, tail, dyn)
            return
        if isinstance(e, If):
            walk(e.test, False, dyn)
            walk(e.then, tail, dyn)
            walk(e.alt, tail, dyn)
            return
        if isinstance(e, DIf):
            if not tail:
                # The continuation of a value-position dynamic if is
                # duplicated into both branches by the specializer.
                counts["dif_value_positions"] += 1
            walk(e.test, False, dyn)
            walk(e.then, tail, True)
            walk(e.alt, tail, True)
            return
        if isinstance(e, (Lam, DLam)):
            walk(e.body, True, dyn or isinstance(e, DLam))
            return
        if isinstance(e, MemoCall):
            counts["memo_sites"] += 1
            for a in e.args:
                walk(a, False, dyn)
            return
        if isinstance(e, App):
            if isinstance(e.fn, Var) and e.fn.name in defs and dyn:
                counts["unfolds_under_dynamic"] += 1
            walk(e.fn, False, dyn)
            for a in e.args:
                walk(a, False, dyn)
            return
        if isinstance(e, (Prim, DPrim, DApp)):
            for a in e.children():
                walk(a, False, dyn)
            return

    walk(d.body, True, False)
    return counts


def check_bloat(graph: CallGraph, memo_failures: list) -> tuple[list, dict]:
    """Polyvariance findings plus per-residual-definition metrics."""
    annotated = graph.bta.annotated
    defs = {d.name: d for d in annotated.defs}

    metrics: dict[str, Any] = {}
    for d in annotated.defs:
        if not d.residual:
            continue
        size, data_dependent = _estimate(defs, d.name, frozenset([d.name]))
        entry = dict(_count(defs, d.name))
        entry["residual_size_estimate"] = size
        entry["size_is_lower_bound"] = data_dependent
        metrics[str(d.name)] = entry

    # Direct unboundedness from the termination analysis, then forward
    # propagation: residual defs reachable from an unbounded one via
    # memo edges inherit the blow-up (each caller variant mints callee
    # variants).
    unbounded: dict[str, set] = {}
    for fail in memo_failures:
        unbounded.setdefault(fail.def_name, set()).update(fail.params)
    if unbounded:
        succ: dict[str, set] = {}
        for e in graph.memo_edges:
            succ.setdefault(e.src, set()).add(e.dst)
        solver = Solver(lambda a, b: a or b, False)
        solver.solve(
            list(graph.nodes),
            lambda name, s: name in unbounded
            or any(
                s.get(pred)
                for pred, targets in succ.items()
                if name in targets
            ),
        )
        blown = {n for n, v in solver.env.items() if v}
    else:
        blown = set()

    findings = []
    for fail in memo_failures:
        for param in fail.params:
            findings.append(
                AnalysisFinding(
                    kind=AnalysisKind.UNBOUNDED_POLYVARIANCE,
                    def_name=fail.def_name,
                    path=fail.path,
                    message=(
                        f"static parameter {param} of specialization"
                        f" point {fail.def_name} takes unboundedly many"
                        " values: the residual program grows without"
                        " bound"
                    ),
                    cycle=fail.cycle,
                )
            )
    for name in sorted(blown):
        if name in metrics:
            metrics[name]["unbounded_polyvariance"] = True

    return findings, metrics
