"""Whole-program static analyses over (annotated) Core Scheme.

The subsystem the PR-1 static layer was missing: PR 1 checks that an
annotated program is *congruent* (``pe/check.py``) and that generated
bytecode is *well-formed* (``vm/verify.py``); this package checks that
specializing the program *terminates with bounded output*.

Entry point::

    from repro.analysis import analyze_program
    report = analyze_program(program, "SD")
    if not report.safe:
        print(report)

Built from a shared fixpoint engine (:mod:`repro.analysis.fixpoint`),
the static call graph with argument bounds
(:mod:`repro.analysis.callgraph`), the size-change termination analysis
(:mod:`repro.analysis.termination`), and the code-bloat estimator
(:mod:`repro.analysis.bloat`).
"""

from __future__ import annotations

from typing import Iterable

from repro.obs import traced
from repro.lang.ast import Program

from repro.analysis.bloat import check_bloat
from repro.analysis.callgraph import CallGraph, build_callgraph
from repro.analysis.division import (
    DivisionReport,
    VariantQuality,
    analyze_division,
    compare_divisions,
)
from repro.analysis.report import (
    AnalysisFinding,
    AnalysisKind,
    AnalysisReport,
    UnsafeProgramError,
)
from repro.analysis.termination import check_termination

__all__ = [
    "AnalysisFinding",
    "AnalysisKind",
    "AnalysisReport",
    "CallGraph",
    "DivisionReport",
    "UnsafeProgramError",
    "VariantQuality",
    "analyze_bta",
    "analyze_division",
    "analyze_program",
    "build_callgraph",
    "compare_divisions",
]


@traced("analysis.safety")
def analyze_bta(bta, division: "DivisionReport | None" = None) -> AnalysisReport:
    """Run both analyses on an already-computed BTA result.

    Under a polyvariant result the call graph — and therefore the
    size-change termination analysis — covers every function *variant*.
    ``division`` optionally attaches a precomputed division-quality
    report as a diagnostic.
    """
    graph = build_callgraph(bta)
    findings, memo_failures = check_termination(graph)
    bloat_findings, metrics = check_bloat(graph, memo_failures)
    return AnalysisReport(
        findings=tuple(findings) + tuple(bloat_findings),
        metrics=metrics,
        division=division,
    )


def analyze_program(
    program: Program | str,
    signature: str,
    goal: str | None = None,
    memo_hints: Iterable[str] = (),
    unfold_hints: Iterable[str] = (),
    bta: str = "poly",
    with_division: bool = False,
) -> AnalysisReport:
    """BTA a program and run the specialization-safety analyses on it.

    ``with_division`` additionally runs the monovariant baseline and
    attaches the :class:`DivisionReport` quality comparison (only
    meaningful with ``bta="poly"``).
    """
    from repro.lang.parser import parse_program
    from repro.pe.bta import analyze

    if isinstance(program, str):
        program = parse_program(program, goal=goal)
    result = analyze(
        program,
        signature,
        memo_hints=memo_hints,
        unfold_hints=unfold_hints,
        bta=bta,
    )
    division = None
    if with_division and bta == "poly":
        mono = analyze(
            program,
            signature,
            memo_hints=memo_hints,
            unfold_hints=unfold_hints,
            bta="mono",
        )
        division = compare_divisions(result, mono)
    return analyze_bta(result, division=division)
