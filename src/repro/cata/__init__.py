"""The algebraic framework of §5: syntax functors, catamorphisms, fusion.

The paper's theoretical development regards syntax as the least fixpoint
of the functor ``MkSyntax`` (Fig. 4), describes compilers and specializers
as catamorphisms (Fig. 5), and obtains the composition by the fusion (or
promotion) theorem of §5.4.  This package is an executable rendering:

* :func:`mk_syntax_map` — the action of ``MkSyntax`` on functions;
* :func:`cata` — the generic recursion schema of Fig. 5;
* algebras — free variables, size, unparse, the constructor algebra (whose
  catamorphism is the identity), and a compositional evaluator;
* :func:`fuse` — the fusion law: a producer parameterized over syntax
  constructors composed with a consumer algebra, with the law itself
  checked in the test suite on concrete instances.
"""

from repro.cata.algebras import (
    ConstructorAlgebra,
    CountAlgebra,
    EvalAlgebra,
    FreeVarsAlgebra,
    UnparseAlgebra,
)
from repro.cata.cata import SyntaxAlgebra, cata
from repro.cata.functor import mk_syntax_children, mk_syntax_map
from repro.cata.fusion_law import fuse

__all__ = [
    "ConstructorAlgebra",
    "CountAlgebra",
    "EvalAlgebra",
    "FreeVarsAlgebra",
    "SyntaxAlgebra",
    "UnparseAlgebra",
    "cata",
    "fuse",
    "mk_syntax_children",
    "mk_syntax_map",
]
