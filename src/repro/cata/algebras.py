"""Concrete algebras for the Fig. 5 recursion schema."""

from __future__ import annotations

from typing import Any, Sequence, Tuple

from repro.lang.ast import App, Const, Expr, If, Lam, Let, Prim, Var
from repro.lang.prims import PRIMITIVES
from repro.runtime.errors import SchemeError
from repro.runtime.values import datum_to_value, is_truthy
from repro.sexp.datum import Symbol, sym


class ConstructorAlgebra:
    """The initial algebra: the syntax constructors themselves.

    ``cata(ConstructorAlgebra(), e) == e`` — the identity law, the base
    case of the fusion argument (replacing these constructors with another
    algebra's evaluators is exactly what deforestation does).
    """

    def ev_const(self, c: Any) -> Expr:
        return Const(c)

    def ev_var(self, name: Symbol) -> Expr:
        return Var(name)

    def ev_lam(self, params: Tuple[Symbol, ...], body: Expr) -> Expr:
        return Lam(params, body)

    def ev_let(self, var: Symbol, rhs: Expr, body: Expr) -> Expr:
        return Let(var, rhs, body)

    def ev_if(self, test: Expr, then: Expr, alt: Expr) -> Expr:
        return If(test, then, alt)

    def ev_app(self, fn: Expr, args: Sequence[Expr]) -> Expr:
        return App(fn, tuple(args))

    def ev_prim(self, op: Symbol, args: Sequence[Expr]) -> Expr:
        return Prim(op, tuple(args))


class CountAlgebra:
    """Node count, compositionally."""

    def ev_const(self, c: Any) -> int:
        return 1

    def ev_var(self, name: Symbol) -> int:
        return 1

    def ev_lam(self, params, body: int) -> int:
        return 1 + body

    def ev_let(self, var, rhs: int, body: int) -> int:
        return 1 + rhs + body

    def ev_if(self, test: int, then: int, alt: int) -> int:
        return 1 + test + then + alt

    def ev_app(self, fn: int, args: Sequence[int]) -> int:
        return 1 + fn + sum(args)

    def ev_prim(self, op, args: Sequence[int]) -> int:
        return 1 + sum(args)


class FreeVarsAlgebra:
    """Free variables, compositionally."""

    def ev_const(self, c: Any) -> frozenset:
        return frozenset()

    def ev_var(self, name: Symbol) -> frozenset:
        return frozenset((name,))

    def ev_lam(self, params, body: frozenset) -> frozenset:
        return body - set(params)

    def ev_let(self, var, rhs: frozenset, body: frozenset) -> frozenset:
        return rhs | (body - {var})

    def ev_if(self, test, then, alt) -> frozenset:
        return test | then | alt

    def ev_app(self, fn: frozenset, args: Sequence[frozenset]) -> frozenset:
        out = fn
        for a in args:
            out = out | a
        return out

    def ev_prim(self, op, args: Sequence[frozenset]) -> frozenset:
        out = frozenset()
        for a in args:
            out = out | a
        return out


class UnparseAlgebra:
    """Reader data, compositionally (agrees with :mod:`repro.lang.unparse`
    on pure CS)."""

    def ev_const(self, c: Any) -> Any:
        from repro.lang.unparse import _const_datum

        return _const_datum(c)

    def ev_var(self, name: Symbol) -> Any:
        return name

    def ev_lam(self, params, body: Any) -> Any:
        return [sym("lambda"), list(params), body]

    def ev_let(self, var, rhs: Any, body: Any) -> Any:
        return [sym("let"), [var, rhs], body]

    def ev_if(self, test, then, alt) -> Any:
        return [sym("if"), test, then, alt]

    def ev_app(self, fn, args) -> Any:
        return [fn, *args]

    def ev_prim(self, op, args) -> Any:
        return [op, *args]


class EvalAlgebra:
    """A compositional (denotational-implementation) evaluator.

    Each construct denotes a function from environments to values — §5.2's
    "the meaning of an expression is a function of the meanings of its
    subexpressions" — so the catamorphism yields a *staged* evaluator: the
    syntax dispatch happens once, before any environment arrives.  (This
    is the same staging idea the cogen exploits.)
    """

    def ev_const(self, c: Any):
        value = datum_to_value(c)
        return lambda env: value

    def ev_var(self, name: Symbol):
        def meaning(env):
            try:
                return env[name]
            except KeyError:
                raise SchemeError(f"unbound variable: {name}") from None

        return meaning

    def ev_lam(self, params, body):
        def meaning(env):
            def procedure(*args):
                if len(args) != len(params):
                    raise SchemeError("arity mismatch")
                inner = dict(env)
                inner.update(zip(params, args))
                return body(inner)

            return procedure

        return meaning

    def ev_let(self, var, rhs, body):
        return lambda env: body({**env, var: rhs(env)})

    def ev_if(self, test, then, alt):
        return lambda env: then(env) if is_truthy(test(env)) else alt(env)

    def ev_app(self, fn, args):
        def meaning(env):
            procedure = fn(env)
            return procedure(*[a(env) for a in args])

        return meaning

    def ev_prim(self, op, args):
        spec = PRIMITIVES[op]

        def meaning(env):
            return spec.apply([a(env) for a in args])

        return meaning
