"""The fusion (promotion) theorem of §5.4, executable.

Deforestation removes the intermediate data structure from ``f ∘ g`` when
``g`` builds that structure with constructors that ``f`` folds over.  The
paper's move: express the producer *parameterized over the syntax
constructors* — a function from an algebra to a producer — then

    cata(f) ∘ (producer CONSTRUCTORS)  ==  producer f

"we only have to replace the syntax constructor X in the definition [of
the specializer] by the respective call to function ev-X_C from the
compiler".  :func:`fuse` is precisely that replacement; the law above is
checked on concrete producer/consumer instances in the test suite.

The system-level instance of this module's idea is
:mod:`repro.compiler.fusion`: there the producer is the whole specializer
(parameterized over the :class:`~repro.pe.backend.Backend` constructors)
and the consumer is the ANF compiler.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.cata.algebras import ConstructorAlgebra
from repro.cata.cata import SyntaxAlgebra, cata
from repro.lang.ast import Expr

# A producer factory: given an algebra over the result type, a function
# from inputs to results built through that algebra's constructors.
ProducerFactory = Callable[[SyntaxAlgebra], Callable[[Any], Any]]


def fuse(
    consumer: SyntaxAlgebra, producer_factory: ProducerFactory
) -> Callable[[Any], Any]:
    """Deforest ``cata(consumer) ∘ producer``.

    The producer must be given as a factory abstracted over the syntax
    constructors it uses; fusion instantiates it with the consumer's
    evaluation functions instead of the constructors, eliminating the
    intermediate syntax tree.
    """
    return producer_factory(consumer)


def unfused(
    consumer: SyntaxAlgebra, producer_factory: ProducerFactory
) -> Callable[[Any], Any]:
    """The two-pass composition: build the tree, then fold it.

    The reference implementation the fusion law compares against.
    """
    producer = producer_factory(ConstructorAlgebra())

    def run(x: Any) -> Any:
        tree = producer(x)
        if not isinstance(tree, Expr):
            raise TypeError("producer did not build syntax")
        return cata(consumer, tree)

    return run
