"""The generic recursion schema of Fig. 5: the catamorphism for Syntax.

An algebra supplies one evaluation function per syntactic construct
(ev-const, ev-var, ev-lam, ev-let, ev-if, ev-app, ev-prim — the tuple the
paper writes as an overlined ``ev``); :func:`cata` ties the recursive
knot.  "Apart from compositional semantics, catamorphisms are also useful
for describing compilers and specializers" (§5.2) — the algebras in
:mod:`repro.cata.algebras` and the fused compiler both fit this schema.
"""

from __future__ import annotations

from typing import Any, Protocol, Sequence, Tuple

from repro.lang.ast import App, Const, Expr, If, Lam, Let, Prim, Var
from repro.sexp.datum import Symbol


class SyntaxAlgebra(Protocol):
    """The parameter tuple of the recursion schema (Fig. 5)."""

    def ev_const(self, c: Any) -> Any: ...

    def ev_var(self, name: Symbol) -> Any: ...

    def ev_lam(self, params: Tuple[Symbol, ...], body: Any) -> Any: ...

    def ev_let(self, var: Symbol, rhs: Any, body: Any) -> Any: ...

    def ev_if(self, test: Any, then: Any, alt: Any) -> Any: ...

    def ev_app(self, fn: Any, args: Sequence[Any]) -> Any: ...

    def ev_prim(self, op: Symbol, args: Sequence[Any]) -> Any: ...


def cata(algebra: SyntaxAlgebra, expr: Expr) -> Any:
    """``cata_CS(ev)(M)`` — the generic recursion schema of Fig. 5."""
    if isinstance(expr, Const):
        return algebra.ev_const(expr.value)
    if isinstance(expr, Var):
        return algebra.ev_var(expr.name)
    if isinstance(expr, Lam):
        return algebra.ev_lam(expr.params, cata(algebra, expr.body))
    if isinstance(expr, Let):
        return algebra.ev_let(
            expr.var, cata(algebra, expr.rhs), cata(algebra, expr.body)
        )
    if isinstance(expr, If):
        return algebra.ev_if(
            cata(algebra, expr.test),
            cata(algebra, expr.then),
            cata(algebra, expr.alt),
        )
    if isinstance(expr, App):
        return algebra.ev_app(
            cata(algebra, expr.fn), [cata(algebra, a) for a in expr.args]
        )
    if isinstance(expr, Prim):
        return algebra.ev_prim(
            expr.op, [cata(algebra, a) for a in expr.args]
        )
    raise TypeError(f"cata: not a Syntax node: {type(expr).__name__}")
