"""The syntax functor ``MkSyntax`` of Fig. 4.

``Syntax = MkSyntax(Syntax)`` where::

    MkSyntax(X) = const Constants
                + var Variables
                + lam (List(Variables) × X)
                + let (Variables × X × X)
                + if (X × X × X)
                + app (X × List(X))
                + prim (Primitives × List(X))

The functor's action on a function ``f : Y → Z`` maps ``f`` over every
``X`` position, leaving the tags and first-order components alone — the
definition MkSyntax(f) spelled out in §5.1.  Our AST classes *are* the
summands, so the action is expressed over them directly.
"""

from __future__ import annotations

from typing import Callable, Tuple

from repro.lang.ast import App, Const, Expr, If, Lam, Let, Prim, Var


def mk_syntax_map(f: Callable[[Expr], Expr], node: Expr) -> Expr:
    """``MkSyntax(f)``: apply ``f`` to the recursive positions of ``node``.

    Exactly Fig. 4's definition: ``MkSyntax(f)(lam (x₁…xₙ, y)) =
    lam (x₁…xₙ, f y)`` and so on.  Constants and variables have no
    recursive positions.
    """
    if isinstance(node, (Const, Var)):
        return node
    if isinstance(node, Lam):
        return Lam(node.params, f(node.body))
    if isinstance(node, Let):
        return Let(node.var, f(node.rhs), f(node.body))
    if isinstance(node, If):
        return If(f(node.test), f(node.then), f(node.alt))
    if isinstance(node, App):
        return App(f(node.fn), tuple(f(a) for a in node.args))
    if isinstance(node, Prim):
        return Prim(node.op, tuple(f(a) for a in node.args))
    raise TypeError(f"not a Syntax node: {type(node).__name__}")


def mk_syntax_children(node: Expr) -> Tuple[Expr, ...]:
    """The recursive (``X``) positions of a node, in order."""
    if isinstance(node, (Const, Var)):
        return ()
    if isinstance(node, Lam):
        return (node.body,)
    if isinstance(node, Let):
        return (node.rhs, node.body)
    if isinstance(node, If):
        return (node.test, node.then, node.alt)
    if isinstance(node, App):
        return (node.fn, *node.args)
    if isinstance(node, Prim):
        return node.args
    raise TypeError(f"not a Syntax node: {type(node).__name__}")
