"""A disassembler for templates, for debugging, diagnostics, and tests."""

from __future__ import annotations

from repro.lang.prims import PrimSpec
from repro.vm.instructions import BRANCH_OPS, LITERAL_COUNT_OPS, LITERAL_OPERAND_OPS, Op
from repro.vm.template import Template


def jump_labels(template: Template) -> dict[int, str]:
    """Block labels (``L0``, ``L1``, ...) for every branch target, in
    address order — the labels the assembler resolved away."""
    targets = sorted(
        {
            instr[1]
            for instr in template.code
            if isinstance(instr, tuple)
            and len(instr) > 1
            and instr[0] in BRANCH_OPS
            and isinstance(instr[1], int)
        }
    )
    return {t: f"L{i}" for i, t in enumerate(targets)}


def render_instruction(
    template: Template, pc: int, labels: dict[int, str] | None = None
) -> str:
    """One instruction as text, with jump targets shown as block labels."""
    if labels is None:
        labels = jump_labels(template)
    instr = template.code[pc]
    try:
        op = Op(instr[0])
    except ValueError:
        # A fused superinstruction (run-time-only representation):
        # render its interned name and raw operands.
        from repro.vm.dispatch import opcode_name

        return " ".join([opcode_name(instr[0]), *(str(x) for x in instr[1:])])
    rendered = [op.name]
    if op in LITERAL_OPERAND_OPS:
        rendered.append(_literal(template.literals[instr[1]]))
    elif op in LITERAL_COUNT_OPS:
        rendered.append(_literal(template.literals[instr[1]]))
        rendered.append(str(instr[2]))
    elif op in BRANCH_OPS:
        target = instr[1]
        label = labels.get(target)
        rendered.append(f"-> {label} ({target})" if label else f"-> {target}")
    else:
        rendered.extend(str(x) for x in instr[1:])
    return " ".join(rendered)


def disassemble(template: Template, indent: str = "") -> str:
    """Render ``template`` (and nested templates) as readable text.

    Branch targets begin a labelled block: the target instruction is
    preceded by a ``L<n>:`` line and branches render as ``-> L<n>``.
    """
    labels = jump_labels(template)
    lines = [
        f"{indent}template {template.name}/{template.arity}"
        f" nlocals={template.nlocals}"
    ]
    for pc in range(len(template.code)):
        label = labels.get(pc)
        if label is not None:
            lines.append(f"{indent}{label}:")
        lines.append(f"{indent}  {pc:4} {render_instruction(template, pc, labels)}")
    for lit in template.literals:
        if isinstance(lit, Template):
            lines.append(disassemble(lit, indent + "    "))
    return "\n".join(lines)


def _literal(value) -> str:
    if isinstance(value, Template):
        return f"<template {value.name}>"
    if isinstance(value, PrimSpec):
        return f"<prim {value.name}>"
    return repr(value)
