"""A disassembler for templates, for debugging and for tests."""

from __future__ import annotations

from repro.lang.prims import PrimSpec
from repro.vm.instructions import BRANCH_OPS, LITERAL_COUNT_OPS, LITERAL_OPERAND_OPS, Op
from repro.vm.template import Template


def disassemble(template: Template, indent: str = "") -> str:
    """Render ``template`` (and nested templates) as readable text."""
    lines = [
        f"{indent}template {template.name}/{template.arity}"
        f" nlocals={template.nlocals}"
    ]
    for pc, instr in enumerate(template.code):
        op = Op(instr[0])
        rendered = [op.name]
        if op in LITERAL_OPERAND_OPS:
            rendered.append(_literal(template.literals[instr[1]]))
        elif op in LITERAL_COUNT_OPS:
            rendered.append(_literal(template.literals[instr[1]]))
            rendered.append(str(instr[2]))
        elif op in BRANCH_OPS:
            rendered.append(f"-> {instr[1]}")
        else:
            rendered.extend(str(x) for x in instr[1:])
        lines.append(f"{indent}  {pc:4} {' '.join(rendered)}")
    for lit in template.literals:
        if isinstance(lit, Template):
            lines.append(disassemble(lit, indent + "    "))
    return "\n".join(lines)


def _literal(value) -> str:
    if isinstance(value, Template):
        return f"<template {value.name}>"
    if isinstance(value, PrimSpec):
        return f"<prim {value.name}>"
    return repr(value)
