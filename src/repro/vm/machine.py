"""The virtual machine interpreter.

Execution model: a current frame (template, pc, local slots, operand
stack, closure environment) plus a continuation stack of saved frames.
``TAIL_CALL`` replaces the current frame, so Scheme-level loops run in
constant space; ``CALL`` pushes the current frame as a return continuation,
implementing the non-tail ``(let (x (f ...)) M)`` forms of ANF.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.lang.prims import PrimSpec, register_procedure_type
from repro.runtime.errors import SchemeError
from repro.sexp.datum import Symbol
from repro.vm.instructions import Op
from repro.vm.template import Template


class VMError(SchemeError):
    """A run-time error raised by the VM itself."""


class VmClosure:
    """A procedure value of the VM: a template plus captured values."""

    __slots__ = ("template", "env")

    def __init__(self, template: Template, env: tuple):
        self.template = template
        self.env = env

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"#<vm-closure {self.template.name}/{self.template.arity}>"


register_procedure_type(VmClosure)


class Machine:
    """A VM instance with a global environment."""

    def __init__(self, globals_: dict[Symbol, Any] | None = None):
        self.globals: dict[Symbol, Any] = globals_ if globals_ is not None else {}

    def define(self, name: Symbol, value: Any) -> None:
        self.globals[name] = value

    def procedure(self, name: Symbol) -> Any:
        try:
            return self.globals[name]
        except KeyError:
            raise VMError(f"undefined global: {name}") from None

    def call(self, fn: Any, args: Sequence[Any]) -> Any:
        """Apply a VM procedure value to arguments and run to completion."""
        if not isinstance(fn, VmClosure):
            raise VMError(f"attempt to apply non-procedure {fn!r}")
        template = fn.template
        if template.arity != len(args):
            raise VMError(
                f"{template.name}: expected {template.arity} arguments,"
                f" got {len(args)}"
            )
        locals_ = list(args) + [None] * (template.nlocals - template.arity)
        return self._run(template, locals_, fn.env)

    def call_named(self, name: Symbol, args: Sequence[Any]) -> Any:
        return self.call(self.procedure(name), args)

    # -- the dispatch loop ---------------------------------------------------
    #
    # Generated from the declarative instruction table in
    # ``repro.vm.dispatch`` — do not edit by hand.  Regenerate with
    # ``python -m repro.vm.dispatch --write`` (CI runs ``--check``).
    # ``repro.vm.dispatch.build_loop`` execs the same rendering at run
    # time, extended with fused handlers for superinstruction plans.

    # --- BEGIN GENERATED DISPATCH: production loop ---
    def _run(self, template, locals_, closed):
        """Run ``template`` to completion.

        Generated from the instruction table in
        ``repro.vm.dispatch`` -- do not edit by hand.
        Continuations are (template, pc, locals, stack, closed)."""
        code = template.code
        literals = template.literals
        pc = 0
        val = None
        stack = []
        conts = []
        globals_ = self.globals
        while True:
            instr = code[pc]
            op = instr[0]
            pc += 1
            if op == Op.CONST:
                val = literals[instr[1]]
            elif op == Op.LOCAL:
                val = locals_[instr[1]]
            elif op == Op.CLOSED:
                val = closed[instr[1]]
            elif op == Op.GLOBAL:
                name = literals[instr[1]]
                try:
                    val = globals_[name]
                except KeyError:
                    raise VMError(f"undefined global: {name}") from None
            elif op == Op.PUSH:
                stack.append(val)
            elif op == Op.SETLOC:
                locals_[instr[1]] = val
            elif op == Op.PRIM:
                spec = literals[instr[1]]
                n = instr[2]
                if n:
                    args = stack[-n:]
                    del stack[-n:]
                else:
                    args = []
                val = spec.apply(args)
            elif op == Op.MAKE_CLOSURE:
                sub = literals[instr[1]]
                n = instr[2]
                if n:
                    env = tuple(stack[-n:])
                    del stack[-n:]
                else:
                    env = ()
                val = VmClosure(sub, env)
            elif op == Op.JUMP:
                pc = instr[1]
            elif op == Op.JUMP_IF_FALSE:
                if val is False:
                    pc = instr[1]
            elif op == Op.TAIL_CALL:
                n = instr[1]
                if n:
                    args = stack[-n:]
                    del stack[-n:]
                else:
                    args = []
                fn = stack.pop()
                if isinstance(fn, VmClosure):
                    template = fn.template
                    if template.arity != n:
                        raise VMError(
                            f"{template.name}: expected {template.arity}"
                            f" arguments, got {n}"
                        )
                    code = template.code
                    literals = template.literals
                    locals_ = args + [None] * (template.nlocals - n)
                    closed = fn.env
                    stack = []
                    pc = 0
                elif isinstance(fn, PrimSpec):
                    val = fn.apply(args)
                    if not conts:
                        return val
                    template, pc, locals_, stack, closed = conts.pop()
                    code = template.code
                    literals = template.literals
                else:
                    raise VMError(f"attempt to apply non-procedure {fn!r}")
            elif op == Op.CALL:
                n = instr[1]
                if n:
                    args = stack[-n:]
                    del stack[-n:]
                else:
                    args = []
                fn = stack.pop()
                if isinstance(fn, VmClosure):
                    conts.append((template, pc, locals_, stack, closed))
                    template = fn.template
                    if template.arity != n:
                        raise VMError(
                            f"{template.name}: expected {template.arity}"
                            f" arguments, got {n}"
                        )
                    code = template.code
                    literals = template.literals
                    locals_ = args + [None] * (template.nlocals - n)
                    closed = fn.env
                    stack = []
                    pc = 0
                elif isinstance(fn, PrimSpec):
                    val = fn.apply(args)
                else:
                    raise VMError(f"attempt to apply non-procedure {fn!r}")
            elif op == Op.RETURN:
                if not conts:
                    return val
                template, pc, locals_, stack, closed = conts.pop()
                code = template.code
                literals = template.literals
            else:  # pragma: no cover - unreachable, sound assembler
                raise VMError(f"unknown opcode {op!r}")
    # --- END GENERATED DISPATCH: production loop ---
