"""Abstract object-code fragments and their constructors.

These are the code constructors the paper's compilators use (§6.1):

* :func:`sequentially` — arrange fragments in sequence;
* :func:`make_label`, :func:`instruction_using_label`,
  :func:`attach_label` — the jump machinery for conditionals;
* :func:`instruction` — a single instruction.

A fragment is a tree (:class:`Seq` over :class:`Instr`/labels) holding
*abstract* operands: literal values are wrapped in :class:`Lit` and jump
targets are :class:`Label` objects.  The assembler later relocates the tree
into a flat :class:`~repro.vm.template.Template` — the counterpart of
Scheme 48's internal relocation step, which Fig. 6's measurements include.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Tuple, Union

from repro.vm.instructions import Op


class Label:
    """A fresh assembly-time label."""

    __slots__ = ("hint",)
    _counter = 0

    def __init__(self, hint: str = "L"):
        self.hint = hint

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<label {self.hint}@{id(self):x}>"


@dataclass(frozen=True, slots=True)
class Lit:
    """An operand to be interned into the template's literal frame."""

    value: Any


Operand = Union[int, Lit, Label]


@dataclass(frozen=True, slots=True)
class Instr:
    """One abstract instruction."""

    op: Op
    operands: Tuple[Operand, ...] = ()


@dataclass(frozen=True, slots=True)
class Seq:
    """A sequence of fragments."""

    parts: Tuple["Fragment", ...]


@dataclass(frozen=True, slots=True)
class Attach:
    """A fragment whose first instruction carries a label."""

    label: Label
    fragment: "Fragment"


Fragment = Union[Instr, Seq, Attach]

EMPTY: Fragment = Seq(())


def instruction(op: Op, *operands: Operand) -> Fragment:
    """A single-instruction fragment."""
    return Instr(op, operands)


def sequentially(*fragments: Fragment) -> Fragment:
    """Arrange ``fragments`` in execution order."""
    return Seq(tuple(fragments))


def make_label(hint: str = "L") -> Label:
    """Create a fresh label."""
    return Label(hint)


def instruction_using_label(op: Op, label: Label, *operands: Operand) -> Fragment:
    """An instruction whose (last) operand is a jump target."""
    return Instr(op, operands + (label,))


def attach_label(label: Label, fragment: Fragment) -> Fragment:
    """Attach ``label`` to the entry point of ``fragment``."""
    return Attach(label, fragment)


def iter_instructions(
    fragment: Fragment,
) -> Iterator[tuple[tuple[Label, ...], Instr]]:
    """Yield ``(labels, instruction)`` pairs in linear order.

    ``labels`` are the labels attached to this instruction's position.
    Trailing labels (attached to an empty fragment at the very end) are
    reported with a sentinel ``None`` instruction by the assembler, which
    handles that case itself.
    """
    pending: list[Label] = []

    def walk(frag: Fragment) -> Iterator[tuple[tuple[Label, ...], Instr]]:
        nonlocal pending
        if isinstance(frag, Instr):
            labels = tuple(pending)
            pending = []
            yield labels, frag
        elif isinstance(frag, Seq):
            for part in frag.parts:
                yield from walk(part)
        elif isinstance(frag, Attach):
            pending.append(frag.label)
            yield from walk(frag.fragment)
        else:
            raise TypeError(f"not a fragment: {frag!r}")

    yield from walk(fragment)
    if pending:
        raise ValueError("label attached past the end of the fragment")
