"""Static bytecode verification for VM templates.

The fused system emits *executable object code directly* (§6.1, §8.2) —
there is no residual source program to eyeball, so a bug anywhere in the
cogen/fusion/compiler stack would otherwise surface only as a crash or a
silently wrong answer deep inside :mod:`repro.vm.machine`.  This module is
the output-side counterweight: a JVM-style dataflow verifier that
abstractly interprets a :class:`~repro.vm.template.Template`'s instruction
stream before the machine ever runs it.

The verifier works in two passes per template:

1. **Structural pass** — every instruction must be a known opcode with the
   right number of integer operands; literal-frame indices must be in
   range and name a literal of the right kind (``GLOBAL`` wants a symbol,
   ``PRIM`` a primitive spec, ``MAKE_CLOSURE`` a nested template); local
   slots must fall inside the frame's declared slot count; closure
   variable indices must fall inside the instantiating ``MAKE_CLOSURE``'s
   closed count; jump targets must land on instruction boundaries inside
   the code vector.
2. **Dataflow pass** — a fixpoint over the control-flow graph induced by
   :data:`~repro.vm.instructions.BRANCH_OPS` computes the operand-stack
   depth at entry to every reachable instruction.  The abstract domain is
   a single integer per program point (the VM's operand stack carries no
   types the verifier needs to track — values are uniform), so the
   fixpoint is a plain worklist: inconsistent depths at a join point,
   popping below empty (``CALL``/``TAIL_CALL``/``PRIM``/``MAKE_CLOSURE``
   arity exceeding the available depth), and control falling off the end
   of the code vector are all rejected.  Instructions the fixpoint never
   reaches are reported as *warnings*, as is operand-stack residue at a
   frame exit.

Nested templates (closures) are verified recursively through their
``MAKE_CLOSURE`` sites, which supply the closed count that bounds their
``CLOSED`` indices.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable

from repro.obs import traced
from repro.lang.prims import PrimSpec
from repro.runtime.errors import SchemeError
from repro.sexp.datum import Symbol
from repro.vm.cfg import build_cfg
from repro.vm.instructions import BRANCH_OPS, Op
from repro.vm.template import Template


class ViolationKind(Enum):
    """The verifier's violation classes."""

    BAD_OPCODE = "bad-opcode"
    BAD_OPERANDS = "bad-operands"
    BAD_JUMP_TARGET = "bad-jump-target"
    BAD_LITERAL_INDEX = "bad-literal-index"
    BAD_LITERAL_KIND = "bad-literal-kind"
    BAD_LOCAL_SLOT = "bad-local-slot"
    BAD_CLOSED_INDEX = "bad-closed-index"
    BAD_PRIM_ARITY = "bad-prim-arity"
    BAD_ARITY = "bad-arity"
    STACK_UNDERFLOW = "stack-underflow"
    STACK_MISMATCH = "stack-mismatch"
    FALLS_OFF_END = "falls-off-end"
    # Warnings: suspicious but not unsound.
    UNREACHABLE_CODE = "unreachable-code"
    LEFTOVER_STACK = "leftover-stack"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.value


WARNING_KINDS = frozenset(
    {ViolationKind.UNREACHABLE_CODE, ViolationKind.LEFTOVER_STACK}
)


@dataclass(frozen=True, slots=True)
class Violation:
    """One verification finding, anchored to an instruction offset."""

    kind: ViolationKind
    template: str            # dotted path, e.g. "power_0.lambda"
    pc: int | None           # instruction offset, None for template-level
    message: str

    @property
    def is_error(self) -> bool:
        return self.kind not in WARNING_KINDS

    def __str__(self) -> str:
        where = f"@{self.pc}" if self.pc is not None else ""
        return f"[{self.kind.value}] {self.template}{where}: {self.message}"


@dataclass(frozen=True, slots=True)
class VerifyReport:
    """All findings for a template (including nested templates)."""

    template: Template
    violations: tuple[Violation, ...]

    @property
    def errors(self) -> tuple[Violation, ...]:
        return tuple(v for v in self.violations if v.is_error)

    @property
    def warnings(self) -> tuple[Violation, ...]:
        return tuple(v for v in self.violations if not v.is_error)

    @property
    def ok(self) -> bool:
        return not self.errors

    def pretty(self) -> str:
        """Render the findings with disassembly context."""
        from repro.vm.disasm import render_instruction

        if not self.violations:
            return f"{self.template.name}: verified ok"
        lines = []
        for v in self.violations:
            severity = "error" if v.is_error else "warning"
            lines.append(f"{severity}: {v}")
            if v.pc is not None:
                context = _instruction_context(self.template, v.template, v.pc)
                if context is not None:
                    lines.append(f"    {v.pc:4} {render_instruction(*context)}")
        return "\n".join(lines)


class VerificationError(SchemeError):
    """A template failed bytecode verification."""

    def __init__(self, report: VerifyReport):
        self.report = report
        summary = "; ".join(str(v) for v in report.errors)
        super().__init__(f"bytecode verification failed: {summary}")


# Expected operand counts per opcode.
_OPERAND_COUNTS = {
    Op.CONST: 1,
    Op.LOCAL: 1,
    Op.CLOSED: 1,
    Op.GLOBAL: 1,
    Op.PUSH: 0,
    Op.SETLOC: 1,
    Op.PRIM: 2,
    Op.MAKE_CLOSURE: 2,
    Op.JUMP: 1,
    Op.JUMP_IF_FALSE: 1,
    Op.CALL: 1,
    Op.TAIL_CALL: 1,
    Op.RETURN: 0,
}

# Opcodes whose second operand is a pop count.
_COUNTED_OPS = frozenset({Op.PRIM, Op.MAKE_CLOSURE})
_LITERAL_OPS = frozenset({Op.CONST, Op.GLOBAL}) | _COUNTED_OPS
_SLOT_OPS = frozenset({Op.LOCAL, Op.SETLOC})
_CALL_OPS = frozenset({Op.CALL, Op.TAIL_CALL})


@traced("vm.verify")
def check_template(
    template: Template,
    closed_count: int = 0,
    recurse: bool = True,
) -> VerifyReport:
    """Verify ``template``; return every violation instead of raising."""
    violations: list[Violation] = []
    _check_one(template, template.name, closed_count, recurse, violations, set())
    return VerifyReport(template, tuple(violations))


def verify_template(
    template: Template,
    closed_count: int = 0,
    recurse: bool = True,
) -> VerifyReport:
    """Verify ``template``; raise :class:`VerificationError` on errors."""
    report = check_template(template, closed_count, recurse)
    if not report.ok:
        raise VerificationError(report)
    return report


def verify_templates(templates: Iterable[Template]) -> None:
    """Verify several top-level templates (each instantiated with no env)."""
    for t in templates:
        verify_template(t)


# -- one template ------------------------------------------------------------


def _check_one(
    template: Template,
    path: str,
    closed_count: int,
    recurse: bool,
    out: list[Violation],
    seen: set,
) -> None:
    code = template.code
    nlocals = template.nlocals

    if template.arity < 0 or nlocals < template.arity:
        out.append(
            Violation(
                ViolationKind.BAD_ARITY, path, None,
                f"arity {template.arity} with {nlocals} local slots",
            )
        )
    if not code:
        out.append(
            Violation(
                ViolationKind.FALLS_OFF_END, path, None,
                "empty code vector: execution falls off immediately",
            )
        )
        return

    structure_ok = _structural_pass(
        template, path, closed_count, out
    )
    if structure_ok:
        _dataflow_pass(template, path, out)

    if recurse:
        _check_nested(template, path, out, seen)


def _structural_pass(
    template: Template,
    path: str,
    closed_count: int,
    out: list[Violation],
) -> bool:
    """Per-instruction well-formedness.  Returns True when the code is
    sound enough (opcodes, operand shapes, jump targets) for dataflow."""
    code = template.code
    literals = template.literals
    cfg_ok = True

    def err(kind: ViolationKind, pc: int, message: str) -> None:
        out.append(Violation(kind, path, pc, message))

    for pc, instr in enumerate(code):
        if not isinstance(instr, tuple) or not instr:
            err(ViolationKind.BAD_OPCODE, pc, f"not an instruction: {instr!r}")
            cfg_ok = False
            continue
        op = instr[0]
        if type(op) is not Op:
            try:
                op = Op(op)
            except ValueError:
                err(
                    ViolationKind.BAD_OPCODE, pc,
                    f"unknown opcode {instr[0]!r}",
                )
                cfg_ok = False
                continue
        expected = _OPERAND_COUNTS[op]
        if len(instr) - 1 != expected:
            err(
                ViolationKind.BAD_OPERANDS, pc,
                f"{op.name} expects {expected} operand(s),"
                f" has {len(instr) - 1}",
            )
            cfg_ok = False
            continue
        operands_ok = True
        for j in range(1, len(instr)):
            o = instr[j]
            if not isinstance(o, int) or isinstance(o, bool):
                operands_ok = False
                break
        if not operands_ok:
            err(
                ViolationKind.BAD_OPERANDS, pc,
                f"{op.name} has non-integer operand(s) {instr[1:]!r}",
            )
            cfg_ok = False
            continue

        if op in _LITERAL_OPS:
            k = instr[1]
            if not 0 <= k < len(literals):
                err(
                    ViolationKind.BAD_LITERAL_INDEX, pc,
                    f"{op.name} literal index {k} outside frame of"
                    f" {len(literals)}",
                )
                continue
            lit = literals[k]
            if op is Op.GLOBAL and not isinstance(lit, Symbol):
                err(
                    ViolationKind.BAD_LITERAL_KIND, pc,
                    f"GLOBAL literal {k} is {type(lit).__name__}, not a symbol",
                )
            elif op is Op.PRIM:
                if not isinstance(lit, PrimSpec):
                    err(
                        ViolationKind.BAD_LITERAL_KIND, pc,
                        f"PRIM literal {k} is {type(lit).__name__},"
                        " not a primitive spec",
                    )
                else:
                    n = instr[2]
                    if n < 0:
                        err(
                            ViolationKind.BAD_OPERANDS, pc,
                            f"PRIM argument count {n} is negative",
                        )
                    elif n < lit.min_arity or (
                        lit.max_arity is not None and n > lit.max_arity
                    ):
                        err(
                            ViolationKind.BAD_PRIM_ARITY, pc,
                            f"{lit.name} applied to {n} argument(s); accepts"
                            f" {lit.min_arity}..{lit.max_arity or 'many'}",
                        )
            elif op is Op.MAKE_CLOSURE:
                if not isinstance(lit, Template):
                    err(
                        ViolationKind.BAD_LITERAL_KIND, pc,
                        f"MAKE_CLOSURE literal {k} is {type(lit).__name__},"
                        " not a template",
                    )
                elif instr[2] < 0:
                    err(
                        ViolationKind.BAD_OPERANDS, pc,
                        f"MAKE_CLOSURE closed count {instr[2]} is negative",
                    )
        elif op in _SLOT_OPS:
            i = instr[1]
            if not 0 <= i < template.nlocals:
                err(
                    ViolationKind.BAD_LOCAL_SLOT, pc,
                    f"{op.name} slot {i} outside frame of"
                    f" {template.nlocals} local(s)",
                )
        elif op is Op.CLOSED:
            i = instr[1]
            if not 0 <= i < closed_count:
                err(
                    ViolationKind.BAD_CLOSED_INDEX, pc,
                    f"CLOSED index {i} outside closure environment of"
                    f" {closed_count} value(s)",
                )
        elif op in BRANCH_OPS:
            t = instr[1]
            if not 0 <= t < len(code):
                err(
                    ViolationKind.BAD_JUMP_TARGET, pc,
                    f"{op.name} target {t} outside code of"
                    f" {len(code)} instruction(s)",
                )
                cfg_ok = False
        elif op in _CALL_OPS:
            if instr[1] < 0:
                err(
                    ViolationKind.BAD_OPERANDS, pc,
                    f"{op.name} argument count {instr[1]} is negative",
                )
                cfg_ok = False
    return cfg_ok


def _dataflow_pass(template: Template, path: str, out: list[Violation]) -> None:
    """Fixpoint over basic blocks: operand-stack depth per program point.

    Runs block-at-a-time over the shared :mod:`repro.vm.cfg` graph.
    Joins can only occur at block leaders (a non-leader pc's single
    in-edge is the fall-through from its predecessor), so tracking one
    entry depth per block reports exactly the pcs the old
    per-instruction worklist did.
    """
    cfg = build_cfg(template)
    end = len(template.code)
    entry_depth: dict[int, int] = {}
    mismatched: set[int] = set()
    # Leader pc -> last pc processed (underflow stops a block early; the
    # rest of the block stays unreached and is warned about below).
    reached_upto: dict[int, int] = {}
    worklist: list[tuple[int, int]] = [(cfg.entry, 0)]

    def err(kind: ViolationKind, pc: int, message: str) -> None:
        out.append(Violation(kind, path, pc, message))

    while worklist:
        leader, depth = worklist.pop()
        known = entry_depth.get(leader)
        if known is not None:
            if known != depth and leader not in mismatched:
                mismatched.add(leader)
                err(
                    ViolationKind.STACK_MISMATCH, leader,
                    f"inconsistent stack depth at join point:"
                    f" {known} vs {depth}",
                )
            continue
        entry_depth[leader] = depth

        block = cfg.blocks[leader]
        underflowed = False
        for offset, instr in enumerate(block.instrs):
            pc = leader + offset
            op = instr[0]
            if type(op) is not Op:
                op = Op(op)
            pops, pushes = _stack_effect(op, instr)
            if depth < pops:
                err(
                    ViolationKind.STACK_UNDERFLOW, pc,
                    f"{op.name} needs {pops} stack value(s), only {depth}"
                    " available",
                )
                reached_upto[leader] = pc
                underflowed = True
                break
            depth = depth - pops + pushes
            if op is Op.RETURN or op is Op.TAIL_CALL:
                if depth > 0:
                    out.append(
                        Violation(
                            ViolationKind.LEFTOVER_STACK, path, pc,
                            f"{op.name} leaves {depth} value(s) on the"
                            " operand stack",
                        )
                    )
        if underflowed:
            continue
        reached_upto[leader] = block.end - 1
        if block.falls_off:
            op = Op(block.terminator[0])
            err(
                ViolationKind.FALLS_OFF_END, block.end - 1,
                f"{op.name} falls through past the last instruction"
                " with no RETURN or tail call",
            )
        for succ in block.succs:
            worklist.append((succ, depth))

    reached: set[int] = set()
    for leader, last in reached_upto.items():
        reached.update(range(leader, last + 1))
    unreachable = [pc for pc in range(end) if pc not in reached]
    for start, stop in _contiguous_runs(unreachable):
        span = f"{start}" if start == stop else f"{start}..{stop}"
        out.append(
            Violation(
                ViolationKind.UNREACHABLE_CODE, path, start,
                f"instruction(s) {span} unreachable from entry",
            )
        )


def _stack_effect(op: Op, instr: tuple) -> tuple[int, int]:
    """(pops, pushes) on the operand stack.  ``val`` is not modelled."""
    if op is Op.PUSH:
        return 0, 1
    if op in _COUNTED_OPS:
        return instr[2], 0
    if op in _CALL_OPS:
        return instr[1] + 1, 0     # arguments plus the operator
    return 0, 0


def _check_nested(
    template: Template,
    path: str,
    out: list[Violation],
    seen: set,
) -> None:
    """Verify nested templates with the closed counts of their use sites."""
    # Closed counts per literal index, gathered from MAKE_CLOSURE sites.
    closure_counts: dict[int, set[int]] = {}
    for instr in template.code:
        if (
            isinstance(instr, tuple)
            and len(instr) == 3
            and instr[0] == Op.MAKE_CLOSURE
            and isinstance(instr[1], int)
            and 0 <= instr[1] < len(template.literals)
            and isinstance(template.literals[instr[1]], Template)
            and isinstance(instr[2], int)
            and instr[2] >= 0
        ):
            closure_counts.setdefault(instr[1], set()).add(instr[2])

    for idx, lit in enumerate(template.literals):
        if not isinstance(lit, Template):
            continue
        sub_path = f"{path}.{lit.name}"
        # A template literal never instantiated by MAKE_CLOSURE is checked
        # with an empty closure environment.
        for count in sorted(closure_counts.get(idx, {0})):
            key = (id(lit), count)
            if key in seen:
                continue
            seen.add(key)
            _check_one(lit, sub_path, count, True, out, seen)


def _contiguous_runs(values: list[int]) -> list[tuple[int, int]]:
    runs: list[tuple[int, int]] = []
    for v in values:
        if runs and runs[-1][1] == v - 1:
            runs[-1] = (runs[-1][0], v)
        else:
            runs.append((v, v))
    return runs


def _instruction_context(
    root: Template, path: str, pc: int
) -> tuple[Template, int] | None:
    """Resolve a violation's dotted template path back to the template."""
    template = root
    for segment in path.split(".")[1:]:
        for lit in template.literals:
            if isinstance(lit, Template) and lit.name == segment:
                template = lit
                break
        else:
            return None
    if 0 <= pc < len(template.code):
        return template, pc
    return None
