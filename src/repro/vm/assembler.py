"""Relocation: abstract fragments → executable templates.

This is the analogue of Scheme 48's internal relocation step: "Scheme 48
internally relocates the representation, resolves labels, and generates the
actual byte code" (§6.1).  Label resolution uses backpatching; literals are
interned into the literal frame with sharing for hashable values.
"""

from __future__ import annotations

from typing import Any

from repro.obs import traced
from repro.vm.fragments import Fragment, Label, Lit, iter_instructions
from repro.vm.instructions import BRANCH_OPS
from repro.vm.template import Template


class AssemblyError(ValueError):
    """A malformed fragment: unresolved labels, bad operands."""


@traced("vm.assemble")
def assemble(
    fragment: Fragment,
    arity: int,
    nlocals: int,
    name: str = "anonymous",
) -> Template:
    """Linearize ``fragment``, resolve labels, intern literals."""
    code: list[list] = []
    literals: list[Any] = []
    literal_index: dict[Any, int] = {}
    label_positions: dict[int, int] = {}
    patches: list[tuple[int, int, Label]] = []  # (instr idx, operand idx, label)

    def intern(value: Any) -> int:
        # The key includes the type: Python's bool/int/float cross-type
        # equality (False == 0, 1 == 1.0) must not merge distinct Scheme
        # literals.
        key = (type(value), value)
        try:
            existing = literal_index.get(key)
        except TypeError:
            existing = None  # unhashable literal: no sharing
        if existing is not None:
            return existing
        literals.append(value)
        idx = len(literals) - 1
        try:
            literal_index[key] = idx
        except TypeError:
            pass
        return idx

    for labels, instr in iter_instructions(fragment):
        position = len(code)
        for label in labels:
            if id(label) in label_positions:
                raise AssemblyError(f"label attached twice: {label!r}")
            label_positions[id(label)] = position
        encoded: list = [instr.op]
        for operand_idx, operand in enumerate(instr.operands):
            if isinstance(operand, Label):
                if instr.op not in BRANCH_OPS:
                    raise AssemblyError(
                        f"label operand on non-branch {instr.op!r}"
                    )
                patches.append((position, operand_idx + 1, operand))
                encoded.append(-1)
            elif isinstance(operand, Lit):
                encoded.append(intern(operand.value))
            elif isinstance(operand, int) and not isinstance(operand, bool):
                encoded.append(operand)
            else:
                raise AssemblyError(f"bad operand {operand!r} for {instr.op!r}")
        code.append(encoded)

    end = len(code)
    for instr_idx, operand_idx, label in patches:
        target = label_positions.get(id(label), end if _is_end_label(label) else None)
        if target is None:
            raise AssemblyError(f"unresolved label {label!r}")
        code[instr_idx][operand_idx] = target

    if nlocals < arity:
        raise AssemblyError(f"nlocals {nlocals} < arity {arity}")

    return Template(
        code=tuple(tuple(i) for i in code),
        literals=tuple(literals),
        arity=arity,
        nlocals=nlocals,
        name=name,
    )


def _is_end_label(label: Label) -> bool:
    # Labels are always attached somewhere in well-formed fragments; a jump
    # to the very end would fall off the template, which RETURN-terminated
    # code never does.
    return False
