"""The VM instruction set.

A register ``val`` holds the current value; each frame has an operand stack
for arguments under construction and a vector of local slots (parameters
first, then ``let``-allocated temporaries — the compiler's ``depth``
parameter tracks the next free slot, as in the Scheme 48 compiler).
"""

from __future__ import annotations

from enum import IntEnum, auto


class Op(IntEnum):
    """Opcodes.  Operand meanings are given per opcode."""

    CONST = auto()            # k       : val <- literals[k]
    LOCAL = auto()            # i       : val <- locals[i]
    CLOSED = auto()           # i       : val <- closure.env[i]
    GLOBAL = auto()           # k       : val <- globals[literals[k]]
    PUSH = auto()             #         : push val onto the operand stack
    SETLOC = auto()           # i       : locals[i] <- val
    PRIM = auto()             # k n     : pop n args; val <- literals[k](args)
    MAKE_CLOSURE = auto()     # k n     : pop n values; val <- closure(literals[k], values)
    JUMP = auto()             # t       : pc <- t
    JUMP_IF_FALSE = auto()    # t       : if val is #f then pc <- t
    CALL = auto()             # n       : pop n args + operator; push return continuation
    TAIL_CALL = auto()        # n       : pop n args + operator; reuse the frame
    RETURN = auto()           #         : pop continuation (or halt with val)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.name


# Opcodes whose single operand is a literal-frame index.
LITERAL_OPERAND_OPS = frozenset({Op.CONST, Op.GLOBAL})

# Opcodes whose first operand is a literal-frame index and second is a count.
LITERAL_COUNT_OPS = frozenset({Op.PRIM, Op.MAKE_CLOSURE})

# Opcodes whose operand is a jump target.
BRANCH_OPS = frozenset({Op.JUMP, Op.JUMP_IF_FALSE})
