"""Profile-guided superinstructions over the shared basic-block graph.

PR 6 removed 19–25% of *static* residual instructions; this pass closes
the *dynamic* half of ROADMAP's "raw dispatch speed" item.  Given a
:class:`~repro.vm.profile.VMProfile` (whose counting loop records
adjacent opcode pair/triple frequencies), :func:`select_superinstructions`
picks the highest-value runs of straight-line opcodes, and
:func:`fuse_template` rewrites templates on the :mod:`repro.vm.cfg`
block graph so each selected run becomes one *fused* instruction —
``(fused_opcode, *concatenated operands)`` — dispatched by a loop that
:func:`repro.vm.dispatch.build_loop` generates from the same instruction
table as the production and counting loops.  Every fused execution
retires ``len(run) - 1`` fewer dispatches.

Trust anchor: translation validation, same discipline as ``vm/opt.py``.
A fused template is never run before :func:`validate_fusion` proves

1. *round-trip identity*: :func:`lower_template` (pure operand
   un-concatenation) restores the original template exactly,
2. *verifier acceptance*: the lowered code passes
   :func:`repro.vm.verify.check_template` — the verifier stays the
   base-ISA trust anchor and never needs to learn fused opcodes,

and machine-level promotion additionally runs the fused and unfused
twins differentially (``vm/opt.py`` style) before the fused machine is
ever handed out.  Fused templates are a run-time-only representation:
they are never persisted to the image store and never re-enter the
optimizer or the assembler.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

from repro.runtime.errors import SchemeError
from repro.vm.cfg import build_cfg
from repro.vm.dispatch import (
    FUSABLE_OPS,
    FusionPlan,
    Superinstruction,
    build_loop,
    fused_for_opcode,
    make_plan,
    operand_count,
)
from repro.vm.instructions import BRANCH_OPS, Op
from repro.vm.machine import Machine, VmClosure
from repro.vm.template import Template
from repro.vm.verify import check_template


class FusionValidationError(SchemeError):
    """Translation validation rejected a fused template."""


# --------------------------------------------------------------------------
# Plan selection
# --------------------------------------------------------------------------


def select_superinstructions(
    profile: Any, max_fused: int = 8, min_count: int = 2
) -> FusionPlan:
    """Pick the highest-value fusable runs observed in a profile.

    Candidates are the profile's dynamic adjacent triples and pairs
    whose members are all straight-line (fusable) opcodes, scored by
    dispatches saved (``count * (len - 1)``), ties broken by opcode
    sequence for determinism.  Returns a plan of at most ``max_fused``
    superinstructions (interned process-wide, so repeated selection is
    stable and cheap).
    """
    candidates: list[tuple[int, tuple[int, ...], tuple[Op, ...]]] = []
    sources: tuple[Mapping[tuple, int], ...] = (
        getattr(profile, "triple_counts", {}),
        getattr(profile, "pair_counts", {}),
    )
    for counts in sources:
        for seq, count in counts.items():
            if count < min_count:
                continue
            if not all(op in FUSABLE_OPS for op in seq):
                continue
            score = count * (len(seq) - 1)
            candidates.append(
                (score, tuple(int(op) for op in seq), tuple(Op(op) for op in seq))
            )
    candidates.sort(key=lambda item: (-item[0], len(item[1]), item[1]))
    return make_plan(seq for _score, _key, seq in candidates[:max_fused])


def plan_from_template(template: Template, max_fused: int = 8) -> FusionPlan:
    """A plan from *static* adjacency (no profile): every fusable run
    that occurs in the template's blocks, ranked by occurrence count.

    Used as a profile-free fallback and by tests that want a fused
    execution path without a prior profiling run.
    """
    pair_counts: dict[tuple[Op, ...], int] = {}
    triple_counts: dict[tuple[Op, ...], int] = {}
    seen: set[int] = set()
    stack = [template]
    while stack:
        t = stack.pop()
        if id(t) in seen:
            continue
        seen.add(id(t))
        for lit in t.literals:
            if isinstance(lit, Template):
                stack.append(lit)
        cfg = build_cfg(t)
        for leader in cfg.order:
            instrs = cfg.blocks[leader].instrs
            ops = [instr[0] for instr in instrs]
            for i in range(len(ops) - 1):
                if ops[i] in FUSABLE_OPS and ops[i + 1] in FUSABLE_OPS:
                    pair = (ops[i], ops[i + 1])
                    pair_counts[pair] = pair_counts.get(pair, 0) + 1
                    if i + 2 < len(ops) and ops[i + 2] in FUSABLE_OPS:
                        triple = (ops[i], ops[i + 1], ops[i + 2])
                        triple_counts[triple] = triple_counts.get(triple, 0) + 1

    class _Static:
        pass

    static = _Static()
    static.pair_counts = pair_counts  # type: ignore[attr-defined]
    static.triple_counts = triple_counts  # type: ignore[attr-defined]
    return select_superinstructions(static, max_fused=max_fused, min_count=1)


# --------------------------------------------------------------------------
# Fusion and lowering
# --------------------------------------------------------------------------


def fuse_template(
    template: Template,
    plan: FusionPlan,
    stats: dict[str, int] | None = None,
    _memo: dict[int, Template] | None = None,
) -> Template:
    """Rewrite ``template`` (and nested templates) under ``plan``.

    Matching is per basic block, longest pattern first, greedy left to
    right; branch targets are remapped to the shortened code vector.
    Expects base-ISA input — fusing already-fused code is rejected.
    Returns the input object unchanged when nothing matches.
    """
    if _memo is None:
        _memo = {}
    found = _memo.get(id(template))
    if found is not None:
        return found
    patterns = plan.by_length_desc()
    new_literals = list(template.literals)
    changed = False
    for i, lit in enumerate(new_literals):
        if isinstance(lit, Template):
            fused = fuse_template(lit, plan, stats, _memo)
            if fused is not lit:
                new_literals[i] = fused
                changed = True
    new_code, matched = _fuse_code(template, patterns, stats)
    if not changed and not matched:
        _memo[id(template)] = template
        return template
    made = Template(
        code=new_code,
        literals=tuple(new_literals),
        arity=template.arity,
        nlocals=template.nlocals,
        name=template.name,
    )
    _memo[id(template)] = made
    return made


def _fuse_code(
    template: Template,
    patterns: Sequence[Superinstruction],
    stats: dict[str, int] | None,
) -> tuple[tuple[tuple, ...], bool]:
    code = template.code
    for instr in code:
        if type(instr[0]) is not Op:
            raise FusionValidationError(
                f"{template.name}: cannot fuse already-fused code"
                f" (opcode {instr[0]!r})"
            )
    if not patterns:
        return code, False
    cfg = build_cfg(code)
    new_code: list[tuple] = []
    pc_map: dict[int, int] = {}
    matched_any = False
    for leader in cfg.order:
        instrs = cfg.blocks[leader].instrs
        i = 0
        while i < len(instrs):
            pc_map[leader + i] = len(new_code)
            matched = None
            for sup in patterns:
                k = len(sup.ops)
                if i + k <= len(instrs) and all(
                    instrs[i + j][0] == sup.ops[j] for j in range(k)
                ):
                    matched = sup
                    break
            if matched is not None:
                operands: list[Any] = []
                for j in range(len(matched.ops)):
                    operands.extend(instrs[i + j][1:])
                new_code.append((matched.opcode, *operands))
                if stats is not None:
                    stats[matched.name] = stats.get(matched.name, 0) + 1
                matched_any = True
                i += len(matched.ops)
            else:
                new_code.append(tuple(instrs[i]))
                i += 1
    if not matched_any:
        return code, False
    out: list[tuple] = []
    for instr in new_code:
        if instr[0] in BRANCH_OPS:
            out.append((instr[0], pc_map[instr[1]]))
        else:
            out.append(instr)
    return tuple(out), True


def lower_template(
    template: Template, _memo: dict[int, Template] | None = None
) -> Template:
    """Expand fused instructions back to the base ISA.

    Pure operand un-concatenation (the fused encoding keeps member
    operands in order), with branch targets remapped to the expanded
    code vector and nested templates lowered recursively.  Lowering a
    template with no fused instructions returns it unchanged.
    """
    if _memo is None:
        _memo = {}
    found = _memo.get(id(template))
    if found is not None:
        return found
    new_literals = list(template.literals)
    changed = False
    for i, lit in enumerate(new_literals):
        if isinstance(lit, Template):
            lowered = lower_template(lit, _memo)
            if lowered is not lit:
                new_literals[i] = lowered
                changed = True
    has_fused = any(type(instr[0]) is not Op for instr in template.code)
    if not has_fused and not changed:
        _memo[id(template)] = template
        return template
    expanded: list[tuple] = []
    pc_map: dict[int, int] = {}
    for pc, instr in enumerate(template.code):
        pc_map[pc] = len(expanded)
        op = instr[0]
        if type(op) is Op:
            expanded.append(instr)
            continue
        sup = fused_for_opcode(op)
        if sup is None:
            raise FusionValidationError(
                f"{template.name}: unknown fused opcode {op!r}"
            )
        base = 1
        for member in sup.ops:
            width = operand_count(member)
            expanded.append((member, *instr[base : base + width]))
            base += width
    out: list[tuple] = []
    for instr in expanded:
        if instr[0] in BRANCH_OPS:
            out.append((instr[0], pc_map[instr[1]]))
        else:
            out.append(instr)
    made = Template(
        code=tuple(out),
        literals=tuple(new_literals),
        arity=template.arity,
        nlocals=template.nlocals,
        name=template.name,
    )
    _memo[id(template)] = made
    return made


def structurally_equal(a: Template, b: Template) -> bool:
    """Exact structural identity: code, shape, and literal frames
    (nested templates recursively; other literals by object identity or
    type-strict equality)."""
    if (
        a.name != b.name
        or a.arity != b.arity
        or a.nlocals != b.nlocals
        or len(a.code) != len(b.code)
        or len(a.literals) != len(b.literals)
    ):
        return False
    for x, y in zip(a.code, b.code):
        if tuple(x) != tuple(y):
            return False
    for x, y in zip(a.literals, b.literals):
        if isinstance(x, Template) or isinstance(y, Template):
            if not (
                isinstance(x, Template)
                and isinstance(y, Template)
                and structurally_equal(x, y)
            ):
                return False
        elif x is not y and not (type(x) is type(y) and x == y):
            return False
    return True


def validate_fusion(
    original: Template, fused: Template, closed_count: int = 0
) -> None:
    """Translation validation for one fused template (raises on failure).

    Proves (1) lowering the fused template restores ``original``
    exactly and (2) the lowered code passes the base-ISA bytecode
    verifier.  Differential execution of the fused/unfused twins is the
    machine-level half — see :func:`fuse_machine` callers.
    """
    lowered = lower_template(fused)
    if not structurally_equal(lowered, original):
        raise FusionValidationError(
            f"{original.name}: lowering the fused template does not"
            f" restore the original code"
        )
    report = check_template(lowered, closed_count=closed_count)
    if not report.ok:
        raise FusionValidationError(
            f"{original.name}: lowered fused template failed"
            f" verification: {report.violations[0]}"
        )


# --------------------------------------------------------------------------
# Superinstruction-enabled machines
# --------------------------------------------------------------------------


class SuperMachine(Machine):
    """A :class:`Machine` whose dispatch loops know a fusion plan.

    Both loops come from :func:`repro.vm.dispatch.build_loop` — the
    same instruction-table rendering as the checked-in base loops, with
    the plan's fused handlers prepended — so base-ISA templates run
    unchanged and fused templates dispatch their fused opcodes.
    ``call_profiled`` automatically picks the plan-aware counting loop
    via the ``_counting_loop`` attribute.
    """

    def __init__(
        self,
        globals_: dict | None = None,
        plan: FusionPlan | None = None,
    ):
        super().__init__(globals_)
        self.plan = plan if plan is not None else FusionPlan()
        self._run = build_loop(self.plan, counting=False).__get__(self)
        self._counting_loop = build_loop(self.plan, counting=True)


def fuse_machine(
    machine: Machine,
    plan: FusionPlan,
    validate: bool = True,
    stats: dict[str, int] | None = None,
) -> SuperMachine:
    """A :class:`SuperMachine` twin of ``machine`` with every global
    closure's template fused under ``plan``.

    Non-closure globals are shared; closure environments are preserved.
    With ``validate`` (the default), every distinct fused template must
    pass :func:`validate_fusion` before the machine is returned.
    """
    memo: dict[int, Template] = {}
    fused_globals: dict[Any, Any] = {}
    checked: set[int] = set()
    for name, value in machine.globals.items():
        if isinstance(value, VmClosure):
            fused = fuse_template(value.template, plan, stats, memo)
            if validate and id(fused) not in checked:
                validate_fusion(
                    value.template, fused, closed_count=len(value.env)
                )
                checked.add(id(fused))
            fused_globals[name] = VmClosure(fused, value.env)
        else:
            fused_globals[name] = value
    return SuperMachine(fused_globals, plan)


def fusion_table(
    plan: FusionPlan, stats: Mapping[str, int] | None = None
) -> list[dict[str, Any]]:
    """Report rows for a plan: one dict per superinstruction."""
    stats = stats or {}
    return [
        {
            "name": s.name,
            "opcode": s.opcode,
            "length": len(s.ops),
            "sites": stats.get(s.name, 0),
            "dispatches_saved_per_execution": s.dispatches_saved,
        }
        for s in plan.fused
    ]


__all__ = [
    "FusionPlan",
    "FusionValidationError",
    "SuperMachine",
    "Superinstruction",
    "fuse_machine",
    "fuse_template",
    "fusion_table",
    "lower_template",
    "make_plan",
    "plan_from_template",
    "select_superinstructions",
    "structurally_equal",
    "validate_fusion",
]

