"""Basic-block control-flow graphs over template bytecode.

Both the bytecode verifier (:mod:`repro.vm.verify`) and the bytecode
optimizer (:mod:`repro.vm.opt`) need the same decomposition of a
:class:`~repro.vm.template.Template`'s flat code vector into basic blocks
with explicit successor edges.  The verifier used to re-derive it
implicitly inside its per-instruction worklist; this module makes the
graph a first-class value the two can share (and the ``disasm --cfg``
CLI can print).

Join points can only occur at block leaders: a non-leader pc's single
in-edge is the fall-through from its textual predecessor, so any
block-granular fixpoint sees exactly the joins a per-instruction one
would.  That invariant is what lets the verifier's dataflow pass and the
optimizer's liveness/constant analyses run per block without losing
precision.

The builder assumes *structurally* sound code — known opcodes with the
right operand shapes and in-range branch targets — which the verifier's
structural pass establishes before the graph is ever needed.  It does
not assume the code is complete: a block whose fall-through runs past
the last instruction is marked :attr:`BasicBlock.falls_off` rather than
rejected, so the verifier can report ``FALLS_OFF_END`` itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.vm.instructions import BRANCH_OPS, Op
from repro.vm.template import Template

# Opcodes that end a basic block.
TERMINATOR_OPS = frozenset(
    {Op.JUMP, Op.JUMP_IF_FALSE, Op.RETURN, Op.TAIL_CALL}
)


@dataclass(slots=True)
class BasicBlock:
    """A maximal straight-line run of instructions.

    ``start`` is the leader pc and doubles as the block's identity;
    ``succs`` holds successor leader pcs with the fall-through edge
    first (matching the order the machine considers them).  Treat
    instances as immutable — they are not frozen only because the
    optimizer and verifier construct them in bulk on hot paths.
    """

    start: int
    instrs: tuple[tuple, ...]
    succs: tuple[int, ...]
    falls_off: bool  # control can run past the last instruction

    @property
    def end(self) -> int:
        """One past the last pc of the block (exclusive)."""
        return self.start + len(self.instrs)

    @property
    def terminator(self) -> tuple:
        return self.instrs[-1]


@dataclass(slots=True)
class CFG:
    """Control-flow graph: blocks keyed by leader pc, in address order."""

    blocks: dict[int, BasicBlock]
    order: tuple[int, ...]  # leader pcs in address order
    entry: int = 0

    def predecessors(self) -> dict[int, tuple[int, ...]]:
        """Leader pc -> predecessor leader pcs, in address order."""
        preds: dict[int, list[int]] = {leader: [] for leader in self.order}
        for leader in self.order:
            for succ in self.blocks[leader].succs:
                preds[succ].append(leader)
        return {leader: tuple(ps) for leader, ps in preds.items()}

    def reachable(self) -> set[int]:
        """Leader pcs reachable from the entry block."""
        seen: set[int] = set()
        work = [self.entry]
        while work:
            leader = work.pop()
            if leader in seen:
                continue
            seen.add(leader)
            work.extend(self.blocks[leader].succs)
        return seen


def leaders(code: Sequence[tuple]) -> list[int]:
    """Block leader pcs, in address order.

    Leaders are the entry pc, every branch target, and every pc
    following a terminator (the successor run is a new block even when
    unreachable, so the verifier can still warn about it).
    """
    found = {0}
    for pc, instr in enumerate(code):
        op = instr[0]
        if op in BRANCH_OPS:
            found.add(instr[1])
        if op in TERMINATOR_OPS and pc + 1 < len(code):
            found.add(pc + 1)
    return sorted(found)


def build_cfg(template_or_code: Template | Sequence[tuple]) -> CFG:
    """Build the CFG of a template (or raw code vector).

    Requires structurally sound, non-empty code: known opcodes and
    in-range branch targets.  Fall-through past the end of the code is
    tolerated and surfaces as :attr:`BasicBlock.falls_off`.
    """
    if isinstance(template_or_code, Template):
        code: Sequence[tuple] = template_or_code.code
    else:
        code = template_or_code
    if not code:
        raise ValueError("cannot build a CFG over an empty code vector")

    starts = leaders(code)
    end = len(code)
    blocks: dict[int, BasicBlock] = {}
    for i, start in enumerate(starts):
        stop = starts[i + 1] if i + 1 < len(starts) else end
        instrs = tuple(code[start:stop])
        last = instrs[-1]
        op = last[0]
        if type(op) is not Op:
            op = Op(op)
        falls_off = False
        if op is Op.JUMP:
            succs: tuple[int, ...] = (last[1],)
        elif op is Op.JUMP_IF_FALSE:
            if stop < end:
                succs = (stop, last[1])
            else:
                succs = (last[1],)
                falls_off = True
        elif op is Op.RETURN or op is Op.TAIL_CALL:
            succs = ()
        elif stop < end:
            succs = (stop,)
        else:
            succs = ()
            falls_off = True
        blocks[start] = BasicBlock(
            start=start, instrs=instrs, succs=succs, falls_off=falls_off
        )
    return CFG(blocks=blocks, order=tuple(starts))
