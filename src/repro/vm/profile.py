"""Opt-in VM execution profiling: a *counting* variant of the dispatch.

The normal dispatch loop (:meth:`repro.vm.machine.Machine._run`) is the
hot path of everything this system produces, so it carries no
instrumentation at all — not even a disabled-check per instruction.
Profiling instead runs the program through :func:`call_profiled`, a
separate dispatch loop that is semantically identical (the VM edge-case
suite runs through both loops, plus the superinstruction-enabled ones)
but counts as it goes:

* per-opcode execution counts (fused opcodes included, by fused id),
* per-template invocation counts and instruction counts,
* adjacent opcode pair/triple frequencies (superinstruction candidates),
* total instructions retired,

collected into a :class:`VMProfile`, whose :meth:`~VMProfile.hot_templates`
ranking answers the question Figs. 6-8 keep circling: *which* residual
code the time goes into.  The trust model is explicit: profiled numbers
come from a different loop than production runs, so they are execution
*counts* (exact, deterministic), not wall-clock attributions.

Both the production and the counting loop are generated from the
declarative instruction table in :mod:`repro.vm.dispatch`, so they stay
congruent by construction; the checked-in rendering below sits between
``BEGIN/END GENERATED DISPATCH`` markers and is policed by the
``python -m repro.vm.dispatch --check`` drift gate.

Attribution identity
--------------------

Counts are keyed by :class:`TemplateIdent` — ``(name, content digest)``
— not by bare name.  Distinct templates that share a name (every nested
``anonymous`` closure, re-specialized twins) keep separate rows, which
matters because tier promotion decides from this ranking; structurally
identical twins (e.g. memo-shared copies) merge, which is the right
answer for "where does the time go".  ``report()``/``to_json()`` still
render human-readable names, adding a short digest suffix only when a
name is ambiguous within the profile.

Pair/triple adjacency is *dynamic*: consecutive retired instructions
within one frame, with the chain reset across frame switches and after
any branching opcode (taken or not).  Runs that span a basic-block
leader may therefore count a pair the fuser cannot fuse — harmless, the
selection is a heuristic and every fused template is still validated.
"""

from __future__ import annotations

from typing import Any, NamedTuple, Sequence

from repro.lang.prims import PrimSpec
from repro.sexp.datum import Symbol
from repro.vm.dispatch import FUSABLE_OPS as _FUSABLE
from repro.vm.dispatch import opcode_name
from repro.vm.instructions import Op
from repro.vm.machine import Machine, VmClosure, VMError
from repro.vm.template import Template


class TemplateIdent(NamedTuple):
    """Stable per-template identity: name plus content digest."""

    name: str
    digest: str

    @property
    def short(self) -> str:
        """``name#digest8`` — the unambiguous display form."""
        return f"{self.name}#{self.digest[:8]}"


class VMProfile:
    """Execution counts collected by the profiled dispatch loop."""

    def __init__(self) -> None:
        # Opcode keys are Op members, plus plain ints for fused opcodes.
        self.opcode_counts: dict[Any, int] = {}
        self.template_invocations: dict[TemplateIdent, int] = {}
        self.template_instructions: dict[TemplateIdent, int] = {}
        self.pair_counts: dict[tuple, int] = {}
        self.triple_counts: dict[tuple, int] = {}
        self.calls = 0                 # top-level call_profiled entries
        # id(template) -> TemplateIdent.  The digest is content-stable,
        # but the id-keyed fast path must never dangle: ``_pinned``
        # holds a strong reference to every template seen, so an id
        # cannot be recycled for the lifetime of this profile.
        self._idents: dict[int, TemplateIdent] = {}
        self._pinned: list[Template] = []

    # -- attribution --------------------------------------------------------

    def _ident(self, template: Template) -> TemplateIdent:
        """The counting loops' per-frame key (id-cached digest)."""
        found = self._idents.get(id(template))
        if found is not None:
            return found
        ident = TemplateIdent(template.name, template.content_digest())
        self._idents[id(template)] = ident
        self._pinned.append(template)
        return ident

    def _display_names(self) -> dict[TemplateIdent, str]:
        """Bare names where unambiguous, ``name#digest8`` where not."""
        by_name: dict[str, int] = {}
        for ident in self.template_instructions:
            by_name[ident.name] = by_name.get(ident.name, 0) + 1
        for ident in self.template_invocations:
            if ident not in self.template_instructions:
                by_name[ident.name] = by_name.get(ident.name, 0) + 1
        return {
            ident: (ident.name if by_name.get(ident.name, 0) == 1 else ident.short)
            for ident in set(self.template_instructions)
            | set(self.template_invocations)
        }

    # -- accessors ----------------------------------------------------------

    @property
    def total_instructions(self) -> int:
        return sum(self.opcode_counts.values())

    def hot_templates(self, n: int = 10) -> list[tuple[str, int, int]]:
        """``(display name, instructions, invocations)`` by instructions.

        Rows are per template *identity*: same-named distinct templates
        stay separate (disambiguated as ``name#digest8``).
        """
        display = self._display_names()
        ranked = sorted(
            self.template_instructions.items(),
            key=lambda item: (-item[1], display[item[0]]),
        )
        return [
            (display[ident], instrs, self.template_invocations.get(ident, 0))
            for ident, instrs in ranked[:n]
        ]

    def hot_pairs(self, n: int = 10) -> list[tuple[str, int]]:
        """``("A;B", count)`` adjacent-opcode runs by dynamic frequency."""
        ranked = sorted(
            self.pair_counts.items(),
            key=lambda item: (-item[1], tuple(int(op) for op in item[0])),
        )
        return [
            (";".join(opcode_name(op) for op in seq), count)
            for seq, count in ranked[:n]
        ]

    def to_json(self) -> dict[str, Any]:
        """Machine-readable profile; empty profiles render as empty maps,

        mirroring the text report's ``(none)`` rows (no placeholder
        entries, no shape change).
        """
        display = self._display_names()
        templates = {
            display[ident]: {
                "name": ident.name,
                "digest": ident.digest,
                "instructions": instrs,
                "invocations": self.template_invocations.get(ident, 0),
            }
            for ident, instrs in sorted(
                self.template_instructions.items(),
                key=lambda item: (-item[1], display[item[0]]),
            )
        }
        return {
            "calls": self.calls,
            "total_instructions": self.total_instructions,
            "opcodes": {
                opcode_name(op): count
                for op, count in sorted(
                    self.opcode_counts.items(),
                    key=lambda item: (-item[1], int(item[0])),
                )
            },
            "pairs": {
                pair: count for pair, count in self.hot_pairs(len(self.pair_counts))
            },
            "templates": templates,
        }

    def report(self, top: int = 10) -> str:
        """A plain-text profile: opcode mix plus the hot-template ranking."""
        lines = [
            f"calls: {self.calls}"
            f"   instructions retired: {self.total_instructions}",
            "",
            "opcode counts:",
        ]
        total = self.total_instructions or 1
        for op, count in sorted(
            self.opcode_counts.items(), key=lambda item: (-item[1], int(item[0]))
        ):
            lines.append(
                f"  {opcode_name(op):<16} {count:10d}"
                f"  {100.0 * count / total:5.1f}%"
            )
        if not self.opcode_counts:
            lines.append("  (none)")
        lines.append("")
        lines.append(f"hot opcode pairs (top {top}):")
        pairs = self.hot_pairs(top)
        for pair, count in pairs:
            lines.append(f"  {pair:<28} {count:10d}")
        if not pairs:
            lines.append("  (none)")
        lines.append("")
        lines.append(f"hot templates (top {top} by instructions):")
        for name, instrs, invocations in self.hot_templates(top):
            lines.append(
                f"  {name:<28} {instrs:10d} instr"
                f"  {invocations:8d} invocation(s)"
            )
        if not self.template_instructions:
            lines.append("  (none)")
        return "\n".join(lines)


def call_profiled(
    machine: Machine, fn: Any, args: Sequence[Any], profile: VMProfile
) -> Any:
    """Apply a VM procedure under the counting dispatch loop.

    Mirrors :meth:`Machine.call`; results and raised errors are
    identical to the unprofiled loop.  Machines that carry a fusion
    plan (``SuperMachine``) expose a plan-aware counting loop as
    ``_counting_loop``; plain machines use the checked-in base loop.
    """
    if not isinstance(fn, VmClosure):
        raise VMError(f"attempt to apply non-procedure {fn!r}")
    template = fn.template
    if template.arity != len(args):
        raise VMError(
            f"{template.name}: expected {template.arity} arguments,"
            f" got {len(args)}"
        )
    locals_ = list(args) + [None] * (template.nlocals - template.arity)
    profile.calls += 1
    loop = getattr(machine, "_counting_loop", None) or _run_counting
    return loop(machine, template, locals_, fn.env, profile)


def call_named_profiled(
    machine: Machine, name: Symbol, args: Sequence[Any], profile: VMProfile
) -> Any:
    return call_profiled(machine, machine.procedure(name), args, profile)


# Generated from the declarative instruction table in
# ``repro.vm.dispatch`` — do not edit by hand.  Regenerate with
# ``python -m repro.vm.dispatch --write`` (CI runs ``--check``).

# --- BEGIN GENERATED DISPATCH: counting loop ---
def _run_counting(machine, template, locals_, closed, profile):
    """Counting twin of ``Machine._run``.

    Generated from the instruction table in
    ``repro.vm.dispatch`` -- semantics match the
    production loop by construction; the only additions
    are the count updates (opcodes, per-template
    attribution by content identity, and adjacent
    pair/triple frequencies feeding superinstruction
    selection)."""
    opcode_counts = profile.opcode_counts
    tmpl_instrs = profile.template_instructions
    tmpl_invocations = profile.template_invocations
    pair_counts = profile.pair_counts
    triple_counts = profile.triple_counts
    code = template.code
    literals = template.literals
    tkey = profile._ident(template)
    tmpl_invocations[tkey] = tmpl_invocations.get(tkey, 0) + 1
    pc = 0
    val = None
    stack = []
    conts = []
    globals_ = machine.globals
    prev1 = None
    prev2 = None
    while True:
        instr = code[pc]
        op = instr[0]
        pc += 1
        opcode_counts[op] = opcode_counts.get(op, 0) + 1
        tmpl_instrs[tkey] = tmpl_instrs.get(tkey, 0) + 1
        if prev1 is not None:
            pair = (prev1, op)
            pair_counts[pair] = pair_counts.get(pair, 0) + 1
            if prev2 is not None:
                run3 = (prev2, prev1, op)
                triple_counts[run3] = triple_counts.get(run3, 0) + 1
        prev2 = prev1
        prev1 = op if op in _FUSABLE else None
        if op == Op.CONST:
            val = literals[instr[1]]
        elif op == Op.LOCAL:
            val = locals_[instr[1]]
        elif op == Op.CLOSED:
            val = closed[instr[1]]
        elif op == Op.GLOBAL:
            name = literals[instr[1]]
            try:
                val = globals_[name]
            except KeyError:
                raise VMError(f"undefined global: {name}") from None
        elif op == Op.PUSH:
            stack.append(val)
        elif op == Op.SETLOC:
            locals_[instr[1]] = val
        elif op == Op.PRIM:
            spec = literals[instr[1]]
            n = instr[2]
            if n:
                args = stack[-n:]
                del stack[-n:]
            else:
                args = []
            val = spec.apply(args)
        elif op == Op.MAKE_CLOSURE:
            sub = literals[instr[1]]
            n = instr[2]
            if n:
                env = tuple(stack[-n:])
                del stack[-n:]
            else:
                env = ()
            val = VmClosure(sub, env)
        elif op == Op.JUMP:
            pc = instr[1]
        elif op == Op.JUMP_IF_FALSE:
            if val is False:
                pc = instr[1]
        elif op == Op.TAIL_CALL:
            n = instr[1]
            if n:
                args = stack[-n:]
                del stack[-n:]
            else:
                args = []
            fn = stack.pop()
            if isinstance(fn, VmClosure):
                template = fn.template
                if template.arity != n:
                    raise VMError(
                        f"{template.name}: expected {template.arity}"
                        f" arguments, got {n}"
                    )
                code = template.code
                literals = template.literals
                tkey = profile._ident(template)
                tmpl_invocations[tkey] = tmpl_invocations.get(tkey, 0) + 1
                locals_ = args + [None] * (template.nlocals - n)
                closed = fn.env
                stack = []
                pc = 0
            elif isinstance(fn, PrimSpec):
                val = fn.apply(args)
                if not conts:
                    return val
                template, pc, locals_, stack, closed = conts.pop()
                code = template.code
                literals = template.literals
                tkey = profile._ident(template)
            else:
                raise VMError(f"attempt to apply non-procedure {fn!r}")
        elif op == Op.CALL:
            n = instr[1]
            if n:
                args = stack[-n:]
                del stack[-n:]
            else:
                args = []
            fn = stack.pop()
            if isinstance(fn, VmClosure):
                conts.append((template, pc, locals_, stack, closed))
                template = fn.template
                if template.arity != n:
                    raise VMError(
                        f"{template.name}: expected {template.arity}"
                        f" arguments, got {n}"
                    )
                code = template.code
                literals = template.literals
                tkey = profile._ident(template)
                tmpl_invocations[tkey] = tmpl_invocations.get(tkey, 0) + 1
                locals_ = args + [None] * (template.nlocals - n)
                closed = fn.env
                stack = []
                pc = 0
            elif isinstance(fn, PrimSpec):
                val = fn.apply(args)
            else:
                raise VMError(f"attempt to apply non-procedure {fn!r}")
        elif op == Op.RETURN:
            if not conts:
                return val
            template, pc, locals_, stack, closed = conts.pop()
            code = template.code
            literals = template.literals
            tkey = profile._ident(template)
        else:  # pragma: no cover - unreachable, sound assembler
            raise VMError(f"unknown opcode {op!r}")
# --- END GENERATED DISPATCH: counting loop ---
