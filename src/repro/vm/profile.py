"""Opt-in VM execution profiling: a *counting* variant of the dispatch.

The normal dispatch loop (:meth:`repro.vm.machine.Machine._run`) is the
hot path of everything this system produces, so it carries no
instrumentation at all — not even a disabled-check per instruction.
Profiling instead runs the program through :func:`call_profiled`, a
separate dispatch loop that is semantically identical (the VM edge-case
suite runs through both loops) but counts as it goes:

* per-opcode execution counts,
* per-template invocation counts and instruction counts,
* total instructions retired,

collected into a :class:`VMProfile`, whose :meth:`~VMProfile.hot_templates`
ranking answers the question Figs. 6-8 keep circling: *which* residual
code the time goes into.  The trust model is explicit: profiled numbers
come from a different loop than production runs, so they are execution
*counts* (exact, deterministic), not wall-clock attributions.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.lang.prims import PrimSpec
from repro.sexp.datum import Symbol
from repro.vm.instructions import Op
from repro.vm.machine import Machine, VmClosure, VMError
from repro.vm.template import Template


class VMProfile:
    """Execution counts collected by the profiled dispatch loop."""

    def __init__(self) -> None:
        self.opcode_counts: dict[Op, int] = {}
        self.template_invocations: dict[str, int] = {}
        self.template_instructions: dict[str, int] = {}
        self.calls = 0                 # top-level call_profiled entries

    # -- accessors ----------------------------------------------------------

    @property
    def total_instructions(self) -> int:
        return sum(self.opcode_counts.values())

    def hot_templates(self, n: int = 10) -> list[tuple[str, int, int]]:
        """``(name, instructions, invocations)`` ranked by instructions."""
        ranked = sorted(
            self.template_instructions.items(),
            key=lambda item: (-item[1], item[0]),
        )
        return [
            (name, instrs, self.template_invocations.get(name, 0))
            for name, instrs in ranked[:n]
        ]

    def to_json(self) -> dict[str, Any]:
        return {
            "calls": self.calls,
            "total_instructions": self.total_instructions,
            "opcodes": {
                op.name: count
                for op, count in sorted(
                    self.opcode_counts.items(), key=lambda item: -item[1]
                )
            },
            "templates": {
                name: {
                    "instructions": instrs,
                    "invocations": self.template_invocations.get(name, 0),
                }
                for name, instrs, _ in self.hot_templates(n=len(
                    self.template_instructions
                ) or 1)
            },
        }

    def report(self, top: int = 10) -> str:
        """A plain-text profile: opcode mix plus the hot-template ranking."""
        lines = [
            f"calls: {self.calls}"
            f"   instructions retired: {self.total_instructions}",
            "",
            "opcode counts:",
        ]
        total = self.total_instructions or 1
        for op, count in sorted(
            self.opcode_counts.items(), key=lambda item: -item[1]
        ):
            lines.append(
                f"  {op.name:<16} {count:10d}  {100.0 * count / total:5.1f}%"
            )
        lines.append("")
        lines.append(f"hot templates (top {top} by instructions):")
        for name, instrs, invocations in self.hot_templates(top):
            lines.append(
                f"  {name:<28} {instrs:10d} instr"
                f"  {invocations:8d} invocation(s)"
            )
        if not self.template_instructions:
            lines.append("  (none)")
        return "\n".join(lines)


def call_profiled(
    machine: Machine, fn: Any, args: Sequence[Any], profile: VMProfile
) -> Any:
    """Apply a VM procedure under the counting dispatch loop.

    Mirrors :meth:`Machine.call`; results and raised errors are
    identical to the unprofiled loop.
    """
    if not isinstance(fn, VmClosure):
        raise VMError(f"attempt to apply non-procedure {fn!r}")
    template = fn.template
    if template.arity != len(args):
        raise VMError(
            f"{template.name}: expected {template.arity} arguments,"
            f" got {len(args)}"
        )
    locals_ = list(args) + [None] * (template.nlocals - template.arity)
    profile.calls += 1
    return _run_counting(machine, template, locals_, fn.env, profile)


def call_named_profiled(
    machine: Machine, name: Symbol, args: Sequence[Any], profile: VMProfile
) -> Any:
    return call_profiled(machine, machine.procedure(name), args, profile)


def _run_counting(
    machine: Machine,
    template: Template,
    locals_: list,
    closed: tuple,
    profile: VMProfile,
) -> Any:
    """The counting twin of :meth:`Machine._run`.

    Every semantic step matches the production loop instruction for
    instruction; the only additions are the count updates.  Keep the two
    loops in sync — ``tests/test_vm_edge_cases.py`` runs its dispatch
    edge cases through both.
    """
    opcode_counts = profile.opcode_counts
    tmpl_instrs = profile.template_instructions
    tmpl_invocations = profile.template_invocations

    code = template.code
    literals = template.literals
    tname = template.name
    tmpl_invocations[tname] = tmpl_invocations.get(tname, 0) + 1
    pc = 0
    val: Any = None
    stack: list = []
    conts: list[tuple] = []
    globals_ = machine.globals

    while True:
        instr = code[pc]
        op = instr[0]
        pc += 1
        opcode_counts[op] = opcode_counts.get(op, 0) + 1
        tmpl_instrs[tname] = tmpl_instrs.get(tname, 0) + 1

        if op == Op.CONST:
            val = literals[instr[1]]
        elif op == Op.LOCAL:
            val = locals_[instr[1]]
        elif op == Op.CLOSED:
            val = closed[instr[1]]
        elif op == Op.GLOBAL:
            name = literals[instr[1]]
            try:
                val = globals_[name]
            except KeyError:
                raise VMError(f"undefined global: {name}") from None
        elif op == Op.PUSH:
            stack.append(val)
        elif op == Op.SETLOC:
            locals_[instr[1]] = val
        elif op == Op.PRIM:
            spec = literals[instr[1]]
            n = instr[2]
            if n:
                args = stack[-n:]
                del stack[-n:]
            else:
                args = []
            val = spec.apply(args)
        elif op == Op.MAKE_CLOSURE:
            sub = literals[instr[1]]
            n = instr[2]
            if n:
                env = tuple(stack[-n:])
                del stack[-n:]
            else:
                env = ()
            val = VmClosure(sub, env)
        elif op == Op.JUMP:
            pc = instr[1]
        elif op == Op.JUMP_IF_FALSE:
            if val is False:
                pc = instr[1]
        elif op == Op.TAIL_CALL or op == Op.CALL:
            n = instr[1]
            if n:
                args = stack[-n:]
                del stack[-n:]
            else:
                args = []
            fn = stack.pop()
            if isinstance(fn, VmClosure):
                if op == Op.CALL:
                    conts.append((template, pc, locals_, stack, closed))
                template = fn.template
                if template.arity != n:
                    raise VMError(
                        f"{template.name}: expected {template.arity}"
                        f" arguments, got {n}"
                    )
                code = template.code
                literals = template.literals
                tname = template.name
                tmpl_invocations[tname] = tmpl_invocations.get(tname, 0) + 1
                locals_ = args + [None] * (template.nlocals - n)
                closed = fn.env
                stack = []
                pc = 0
            elif isinstance(fn, PrimSpec):
                val = fn.apply(args)
                if op == Op.TAIL_CALL:
                    if not conts:
                        return val
                    template, pc, locals_, stack, closed = conts.pop()
                    code = template.code
                    literals = template.literals
                    tname = template.name
            else:
                raise VMError(f"attempt to apply non-procedure {fn!r}")
        elif op == Op.RETURN:
            if not conts:
                return val
            template, pc, locals_, stack, closed = conts.pop()
            code = template.code
            literals = template.literals
            tname = template.name
        else:  # pragma: no cover - unreachable with a sound assembler
            raise VMError(f"unknown opcode {op!r}")
