"""Executable templates: the unit of object code.

A template is what Scheme 48 calls a template: a flat code vector plus a
literal frame.  ``MAKE_CLOSURE`` instructions reference nested templates
through the literal frame.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Tuple


@dataclass(frozen=True, slots=True)
class Template:
    """Assembled, executable object code for one procedure body."""

    code: Tuple[tuple, ...]       # (op, operand, ...) tuples, targets resolved
    literals: Tuple[Any, ...]     # constants, symbols, prim specs, templates
    arity: int                    # number of parameters
    nlocals: int                  # total local slots (params + temporaries)
    name: str = "anonymous"       # for diagnostics

    def __post_init__(self) -> None:
        # Parameters live in the first ``arity`` local slots, so a frame
        # with fewer slots than parameters cannot exist: the VM would
        # compute ``[None] * (nlocals - arity)`` with a negative count
        # and silently build a short locals frame.  ValueError rather
        # than VMError — the VM module imports this one.
        if self.nlocals < self.arity:
            raise ValueError(
                f"template {self.name}: nlocals {self.nlocals}"
                f" < arity {self.arity}"
            )
        if self.arity < 0:
            raise ValueError(
                f"template {self.name}: negative arity {self.arity}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"#<template {self.name}/{self.arity}"
            f" {len(self.code)} instrs, {len(self.literals)} literals>"
        )

    def content_digest(self) -> str:
        """A stable hex digest of the template's *content*.

        Covers name, arity, nlocals, the code vector, and the literal
        frame (nested templates recursively by their own digest; prim
        specs by name).  Two structurally identical templates — for
        example an original and its re-assembled or memo-shared twin —
        share a digest even when they are distinct objects, which is
        what profile attribution and recursive instruction counting key
        on.  Literals outside the codec's closed set fall back to
        ``repr``, so exotic host objects may weaken the cross-process
        stability (never the in-process correctness) of the digest.
        """
        return _content_digest(self, {})

    def instruction_count(self, recursive: bool = True) -> int:
        """Number of instructions, optionally including nested templates.

        A nested template that appears several times — whether as the
        *same object* in several literal slots or as several
        structurally identical copies — is counted once: dedup is by
        :meth:`content_digest`, not object identity, so the count is
        invariant under the optimizer's content-keyed memo sharing
        identical subtemplates.  The fig7 before/after comparison
        depends on both sides being counted under this same rule.
        """
        if not recursive:
            return len(self.code)
        count = 0
        memo: dict[int, str] = {}
        seen: set[str] = set()
        stack: list[Template] = [self]
        while stack:
            template = stack.pop()
            digest = _content_digest(template, memo)
            if digest in seen:
                continue
            seen.add(digest)
            count += len(template.code)
            for lit in template.literals:
                if isinstance(lit, Template):
                    stack.append(lit)
        return count


def _content_digest(template: Template, memo: dict[int, str]) -> str:
    """Recursive content digest with an id-keyed memo for shared subtrees."""
    found = memo.get(id(template))
    if found is not None:
        return found
    # Late import: prims does not depend on this module, but keeping the
    # top level import-free preserves template.py as a leaf module.
    from repro.lang.prims import PrimSpec

    hasher = hashlib.sha256()
    hasher.update(
        f"template\x00{template.name}\x00{template.arity}"
        f"\x00{template.nlocals}\x00".encode()
    )
    for instr in template.code:
        # Op has a custom name repr; operands are ints — both stable.
        hasher.update(repr(tuple(instr)).encode())
        hasher.update(b"\x00")
    for lit in template.literals:
        if isinstance(lit, Template):
            hasher.update(b"T\x00" + _content_digest(lit, memo).encode())
        elif isinstance(lit, PrimSpec):
            hasher.update(f"P\x00{lit.name}".encode())
        else:
            hasher.update(f"L\x00{type(lit).__name__}\x00{lit!r}".encode())
        hasher.update(b"\x00")
    digest = hasher.hexdigest()
    memo[id(template)] = digest
    return digest
