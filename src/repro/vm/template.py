"""Executable templates: the unit of object code.

A template is what Scheme 48 calls a template: a flat code vector plus a
literal frame.  ``MAKE_CLOSURE`` instructions reference nested templates
through the literal frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple


@dataclass(frozen=True, slots=True)
class Template:
    """Assembled, executable object code for one procedure body."""

    code: Tuple[tuple, ...]       # (op, operand, ...) tuples, targets resolved
    literals: Tuple[Any, ...]     # constants, symbols, prim specs, templates
    arity: int                    # number of parameters
    nlocals: int                  # total local slots (params + temporaries)
    name: str = "anonymous"       # for diagnostics

    def __post_init__(self) -> None:
        # Parameters live in the first ``arity`` local slots, so a frame
        # with fewer slots than parameters cannot exist: the VM would
        # compute ``[None] * (nlocals - arity)`` with a negative count
        # and silently build a short locals frame.  ValueError rather
        # than VMError — the VM module imports this one.
        if self.nlocals < self.arity:
            raise ValueError(
                f"template {self.name}: nlocals {self.nlocals}"
                f" < arity {self.arity}"
            )
        if self.arity < 0:
            raise ValueError(
                f"template {self.name}: negative arity {self.arity}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"#<template {self.name}/{self.arity}"
            f" {len(self.code)} instrs, {len(self.literals)} literals>"
        )

    def instruction_count(self, recursive: bool = True) -> int:
        """Number of instructions, optionally including nested templates.

        A template referenced from several literal slots (or shared
        between several enclosing templates) is counted once — the code
        exists once, however many closures instantiate it.
        """
        if not recursive:
            return len(self.code)
        count = 0
        seen: set[int] = set()
        stack: list[Template] = [self]
        while stack:
            template = stack.pop()
            if id(template) in seen:
                continue
            seen.add(id(template))
            count += len(template.code)
            for lit in template.literals:
                if isinstance(lit, Template):
                    stack.append(lit)
        return count
