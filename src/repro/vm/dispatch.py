"""The declarative VM instruction table and its generated dispatch loops.

PR 5 added a *counting twin* of ``Machine._run`` and kept the two loops
congruent by hand (pinned by the edge-case suite).  That discipline does
not survive superinstructions: fused handlers are synthesized per
:class:`FusionPlan`, so hand-maintained twins would multiply.  Instead,
this module is the single source of truth for dispatch:

* :data:`TABLE` describes every base opcode once — operand count,
  fusability, and the handler body as template lines.  Hook markers
  (``%ENTER_TEMPLATE%``, ``%RESUME_TEMPLATE%``) expand to profiling
  updates in the counting loop and to nothing in the production loop.
* :func:`production_loop_source` / :func:`counting_loop_source` render
  complete dispatch-loop functions from the table.  The checked-in
  loops in ``vm/machine.py`` and ``vm/profile.py`` are exactly these
  renderings (between ``BEGIN/END GENERATED DISPATCH`` markers);
  ``python -m repro.vm.dispatch --check`` is the CI drift gate and
  ``--write`` regenerates them.
* :func:`build_loop` ``exec``-compiles the same rendering at run time,
  optionally extended with fused handlers for a :class:`FusionPlan` —
  this is how ``vm/superinst.py`` obtains production and counting loops
  for superinstruction-enabled machines.  Congruence between all
  generated loops is therefore by construction, not by review.

Fused opcodes are allocated from :data:`FUSED_BASE` upward (the base
ISA stops well below it) and interned process-wide by opcode sequence,
so templates fused under different plans agree on opcode meaning and
the disassembler can name any fused instruction via :func:`opcode_name`.
"""

from __future__ import annotations

import sys
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

from repro.vm.instructions import Op

# --------------------------------------------------------------------------
# The instruction table
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class InstrSpec:
    """One opcode's declarative description.

    ``body`` lines may use ``{a0}``/``{a1}`` for operand slots (expanded
    to ``instr[k]`` with the right offset, also when concatenated into a
    fused handler) and hook-marker lines (``%NAME%``) that expand
    per-mode.  ``fusable`` marks straight-line handlers that neither
    branch nor switch frames; only those may join a superinstruction.
    """

    op: Op
    operands: int
    fusable: bool
    body: tuple[str, ...]


def _spec(op: Op, operands: int, fusable: bool, body: str) -> InstrSpec:
    return InstrSpec(op, operands, fusable, tuple(body.strip("\n").splitlines()))


_SPECS = (
    _spec(Op.CONST, 1, True, """
val = literals[{a0}]
"""),
    _spec(Op.LOCAL, 1, True, """
val = locals_[{a0}]
"""),
    _spec(Op.CLOSED, 1, True, """
val = closed[{a0}]
"""),
    _spec(Op.GLOBAL, 1, True, """
name = literals[{a0}]
try:
    val = globals_[name]
except KeyError:
    raise VMError(f"undefined global: {name}") from None
"""),
    _spec(Op.PUSH, 0, True, """
stack.append(val)
"""),
    _spec(Op.SETLOC, 1, True, """
locals_[{a0}] = val
"""),
    _spec(Op.PRIM, 2, True, """
spec = literals[{a0}]
n = {a1}
if n:
    args = stack[-n:]
    del stack[-n:]
else:
    args = []
val = spec.apply(args)
"""),
    _spec(Op.MAKE_CLOSURE, 2, True, """
sub = literals[{a0}]
n = {a1}
if n:
    env = tuple(stack[-n:])
    del stack[-n:]
else:
    env = ()
val = VmClosure(sub, env)
"""),
    _spec(Op.JUMP, 1, False, """
pc = {a0}
"""),
    _spec(Op.JUMP_IF_FALSE, 1, False, """
if val is False:
    pc = {a0}
"""),
    _spec(Op.TAIL_CALL, 1, False, """
n = {a0}
if n:
    args = stack[-n:]
    del stack[-n:]
else:
    args = []
fn = stack.pop()
if isinstance(fn, VmClosure):
    template = fn.template
    if template.arity != n:
        raise VMError(
            f"{template.name}: expected {template.arity}"
            f" arguments, got {n}"
        )
    code = template.code
    literals = template.literals
    %ENTER_TEMPLATE%
    locals_ = args + [None] * (template.nlocals - n)
    closed = fn.env
    stack = []
    pc = 0
elif isinstance(fn, PrimSpec):
    val = fn.apply(args)
    if not conts:
        return val
    template, pc, locals_, stack, closed = conts.pop()
    code = template.code
    literals = template.literals
    %RESUME_TEMPLATE%
else:
    raise VMError(f"attempt to apply non-procedure {fn!r}")
"""),
    _spec(Op.CALL, 1, False, """
n = {a0}
if n:
    args = stack[-n:]
    del stack[-n:]
else:
    args = []
fn = stack.pop()
if isinstance(fn, VmClosure):
    conts.append((template, pc, locals_, stack, closed))
    template = fn.template
    if template.arity != n:
        raise VMError(
            f"{template.name}: expected {template.arity}"
            f" arguments, got {n}"
        )
    code = template.code
    literals = template.literals
    %ENTER_TEMPLATE%
    locals_ = args + [None] * (template.nlocals - n)
    closed = fn.env
    stack = []
    pc = 0
elif isinstance(fn, PrimSpec):
    val = fn.apply(args)
else:
    raise VMError(f"attempt to apply non-procedure {fn!r}")
"""),
    _spec(Op.RETURN, 0, False, """
if not conts:
    return val
template, pc, locals_, stack, closed = conts.pop()
code = template.code
literals = template.literals
%RESUME_TEMPLATE%
"""),
)

#: Dispatch-chain order (hottest base opcodes first, matching the PR-5 loops).
ORDER: tuple[Op, ...] = tuple(spec.op for spec in _SPECS)

TABLE: dict[Op, InstrSpec] = {spec.op: spec for spec in _SPECS}

#: Straight-line opcodes eligible for superinstruction fusion.
FUSABLE_OPS: frozenset[Op] = frozenset(op for op, s in TABLE.items() if s.fusable)


def operand_count(op: Op) -> int:
    """Operand slots of a *base* opcode, from the table."""
    return TABLE[Op(op)].operands


# --------------------------------------------------------------------------
# Superinstructions: process-wide interned fused opcodes
# --------------------------------------------------------------------------

#: First fused opcode id; the base ISA (``Op``) stays well below this.
FUSED_BASE = 64

_registry_lock = threading.Lock()
_fused_by_seq: dict[tuple[Op, ...], "Superinstruction"] = {}
_fused_by_opcode: dict[int, "Superinstruction"] = {}


@dataclass(frozen=True, slots=True)
class Superinstruction:
    """A fused handler for an adjacent run of base opcodes.

    ``opcode`` is a plain int outside the ``Op`` range; the fused
    instruction's operands are the member operands concatenated in
    order, so lowering back to the base ISA is a pure un-concatenation.
    """

    opcode: int
    ops: tuple[Op, ...]
    name: str

    @property
    def operands(self) -> int:
        return sum(TABLE[op].operands for op in self.ops)

    @property
    def dispatches_saved(self) -> int:
        """Dispatches removed per execution relative to the base sequence."""
        return len(self.ops) - 1


def superinstruction(ops: Sequence[Op]) -> Superinstruction:
    """Intern a fused opcode for ``ops`` (2–4 fusable base opcodes)."""
    seq = tuple(Op(o) for o in ops)
    if not 2 <= len(seq) <= 4:
        raise ValueError(f"superinstruction length must be 2-4, got {len(seq)}")
    for op in seq:
        if op not in FUSABLE_OPS:
            raise ValueError(f"opcode {op.name} is not fusable")
    with _registry_lock:
        found = _fused_by_seq.get(seq)
        if found is not None:
            return found
        opcode = FUSED_BASE + len(_fused_by_seq)
        made = Superinstruction(opcode, seq, "+".join(op.name for op in seq))
        _fused_by_seq[seq] = made
        _fused_by_opcode[opcode] = made
        return made


def fused_for_opcode(opcode: int) -> Superinstruction | None:
    """The interned superinstruction behind a fused opcode id, if any."""
    return _fused_by_opcode.get(int(opcode))


def opcode_name(op: Any) -> str:
    """Human-readable name for a base or fused opcode value."""
    try:
        return Op(op).name
    except ValueError:
        pass
    found = _fused_by_opcode.get(int(op))
    return found.name if found is not None else f"FUSED_{int(op)}"


@dataclass(frozen=True, slots=True)
class FusionPlan:
    """An ordered selection of superinstructions to fuse and dispatch."""

    fused: tuple[Superinstruction, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.fused)

    def key(self) -> tuple[int, ...]:
        return tuple(s.opcode for s in self.fused)

    def by_length_desc(self) -> tuple[Superinstruction, ...]:
        """Match order for fusion: longest pattern first, then plan order."""
        return tuple(
            sorted(self.fused, key=lambda s: (-len(s.ops), s.opcode))
        )


def make_plan(seqs: Iterable[Sequence[Op]]) -> FusionPlan:
    """Intern every sequence and return the plan (dedup, order-preserving)."""
    fused: list[Superinstruction] = []
    for seq in seqs:
        made = superinstruction(seq)
        if made not in fused:
            fused.append(made)
    return FusionPlan(tuple(fused))


# --------------------------------------------------------------------------
# Source rendering
# --------------------------------------------------------------------------

_HOOKS: dict[str, dict[str, tuple[str, ...]]] = {
    "production": {
        "%ENTER_TEMPLATE%": (),
        "%RESUME_TEMPLATE%": (),
    },
    "counting": {
        "%ENTER_TEMPLATE%": (
            "tkey = profile._ident(template)",
            "tmpl_invocations[tkey] = tmpl_invocations.get(tkey, 0) + 1",
        ),
        "%RESUME_TEMPLATE%": (
            "tkey = profile._ident(template)",
        ),
    },
}


def _expand(lines: Iterable[str], mode: str, base: int) -> list[str]:
    """Expand hooks and operand placeholders; operands start at instr[base]."""
    out: list[str] = []
    for line in lines:
        stripped = line.strip()
        if stripped.startswith("%") and stripped.endswith("%"):
            pad = line[: len(line) - len(stripped)]
            out.extend(pad + repl for repl in _HOOKS[mode][stripped])
            continue
        for slot in range(4):
            line = line.replace("{a%d}" % slot, f"instr[{base + slot}]")
        out.append(line)
    return out


def _fused_arm(fused: Superinstruction, mode: str) -> list[str]:
    lines: list[str] = []
    base = 1
    for op in fused.ops:
        spec = TABLE[op]
        lines.extend(_expand(spec.body, mode, base))
        base += spec.operands
    return lines


def _loop_lines(plan: FusionPlan | None, counting: bool) -> list[str]:
    mode = "counting" if counting else "production"
    fused = tuple(plan.fused) if plan is not None else ()
    out: list[str] = []

    if counting:
        out.append("def _run_counting(machine, template, locals_, closed, profile):")
        out.append('    """Counting twin of ``Machine._run``.')
        out.append("")
        out.append("    Generated from the instruction table in")
        out.append("    ``repro.vm.dispatch`` -- semantics match the")
        out.append("    production loop by construction; the only additions")
        out.append("    are the count updates (opcodes, per-template")
        out.append("    attribution by content identity, and adjacent")
        out.append("    pair/triple frequencies feeding superinstruction")
        out.append('    selection)."""')
        out.append("    opcode_counts = profile.opcode_counts")
        out.append("    tmpl_instrs = profile.template_instructions")
        out.append("    tmpl_invocations = profile.template_invocations")
        out.append("    pair_counts = profile.pair_counts")
        out.append("    triple_counts = profile.triple_counts")
        out.append("    code = template.code")
        out.append("    literals = template.literals")
        out.append("    tkey = profile._ident(template)")
        out.append("    tmpl_invocations[tkey] = tmpl_invocations.get(tkey, 0) + 1")
        out.append("    pc = 0")
        out.append("    val = None")
        out.append("    stack = []")
        out.append("    conts = []")
        out.append("    globals_ = machine.globals")
        out.append("    prev1 = None")
        out.append("    prev2 = None")
    else:
        out.append("def _run(self, template, locals_, closed):")
        out.append('    """Run ``template`` to completion.')
        out.append("")
        out.append("    Generated from the instruction table in")
        out.append("    ``repro.vm.dispatch`` -- do not edit by hand.")
        out.append('    Continuations are (template, pc, locals, stack, closed)."""')
        out.append("    code = template.code")
        out.append("    literals = template.literals")
        out.append("    pc = 0")
        out.append("    val = None")
        out.append("    stack = []")
        out.append("    conts = []")
        out.append("    globals_ = self.globals")

    out.append("    while True:")
    out.append("        instr = code[pc]")
    out.append("        op = instr[0]")
    out.append("        pc += 1")
    if counting:
        out.append("        opcode_counts[op] = opcode_counts.get(op, 0) + 1")
        out.append("        tmpl_instrs[tkey] = tmpl_instrs.get(tkey, 0) + 1")
        out.append("        if prev1 is not None:")
        out.append("            pair = (prev1, op)")
        out.append("            pair_counts[pair] = pair_counts.get(pair, 0) + 1")
        out.append("            if prev2 is not None:")
        out.append("                run3 = (prev2, prev1, op)")
        out.append(
            "                triple_counts[run3] = triple_counts.get(run3, 0) + 1"
        )
        out.append("        prev2 = prev1")
        out.append("        prev1 = op if op in _FUSABLE else None")

    keyword = "if"
    for s in fused:
        out.append(f"        {keyword} op == {s.opcode}:  # {s.name}")
        out.extend("            " + line for line in _fused_arm(s, mode))
        keyword = "elif"
    for op in ORDER:
        out.append(f"        {keyword} op == Op.{op.name}:")
        out.extend("            " + line for line in _expand(TABLE[op].body, mode, 1))
        keyword = "elif"
    out.append("        else:  # pragma: no cover - unreachable, sound assembler")
    out.append('            raise VMError(f"unknown opcode {op!r}")')
    return out


def _indented(lines: list[str], indent: int) -> str:
    pad = " " * indent
    return "\n".join(pad + line if line else line for line in lines)


def production_loop_source(plan: FusionPlan | None = None, indent: int = 0) -> str:
    """Source text of the production dispatch loop (``def _run(self, ...)``)."""
    return _indented(_loop_lines(plan, counting=False), indent)


def counting_loop_source(plan: FusionPlan | None = None, indent: int = 0) -> str:
    """Source text of the counting dispatch loop (``def _run_counting(...)``)."""
    return _indented(_loop_lines(plan, counting=True), indent)


# --------------------------------------------------------------------------
# Run-time loop construction (superinstruction plans)
# --------------------------------------------------------------------------

_loop_cache_lock = threading.Lock()
_loop_cache: dict[tuple[tuple[int, ...], bool], Callable] = {}


def build_loop(plan: FusionPlan | None = None, counting: bool = False) -> Callable:
    """Compile a dispatch loop for ``plan`` (cached per plan key and mode).

    Returns an unbound function: the production variant has signature
    ``(self, template, locals_, closed)`` (bind with ``__get__`` onto a
    machine), the counting variant ``(machine, template, locals_,
    closed, profile)``.
    """
    key = ((plan.key() if plan is not None else ()), counting)
    with _loop_cache_lock:
        found = _loop_cache.get(key)
    if found is not None:
        return found
    # Late imports avoid a cycle: machine.py does not import this module.
    from repro.lang.prims import PrimSpec
    from repro.vm.machine import VMError, VmClosure

    mode = "counting" if counting else "production"
    source = counting_loop_source(plan) if counting else production_loop_source(plan)
    namespace: dict[str, Any] = {
        "Op": Op,
        "PrimSpec": PrimSpec,
        "VMError": VMError,
        "VmClosure": VmClosure,
        "_FUSABLE": FUSABLE_OPS,
    }
    exec(compile(source, f"<generated dispatch: {mode} {key[0]}>", "exec"), namespace)
    made = namespace["_run_counting" if counting else "_run"]
    with _loop_cache_lock:
        _loop_cache.setdefault(key, made)
        return _loop_cache[key]


# --------------------------------------------------------------------------
# Checked-in loop regions: drift gate
# --------------------------------------------------------------------------

_GENERATED_TARGETS: tuple[tuple[str, str, int, Callable[[], str]], ...] = (
    (
        "machine.py",
        "production loop",
        8,
        lambda: production_loop_source(indent=4),
    ),
    (
        "profile.py",
        "counting loop",
        0,
        lambda: counting_loop_source(indent=0),
    ),
)


def _markers(label: str) -> tuple[str, str]:
    return (
        f"# --- BEGIN GENERATED DISPATCH: {label} ---",
        f"# --- END GENERATED DISPATCH: {label} ---",
    )


def _split_region(text: str, label: str, filename: str) -> tuple[str, str, str]:
    begin, end = _markers(label)
    lines = text.splitlines(keepends=True)
    start = stop = -1
    for i, line in enumerate(lines):
        if line.strip() == begin:
            start = i
        elif line.strip() == end:
            stop = i
    if start < 0 or stop < 0 or stop <= start:
        raise RuntimeError(f"{filename}: generated-dispatch markers not found")
    head = "".join(lines[: start + 1])
    body = "".join(lines[start + 1 : stop])
    tail = "".join(lines[stop:])
    return head, body, tail


def check_drift() -> list[str]:
    """Compare the checked-in loops against the table rendering.

    Returns a list of human-readable mismatch descriptions (empty when
    the tree is in sync) — the CI dispatch-drift gate.
    """
    here = Path(__file__).resolve().parent
    problems: list[str] = []
    for filename, label, _marker_indent, render in _GENERATED_TARGETS:
        path = here / filename
        text = path.read_text(encoding="utf-8")
        try:
            _head, body, _tail = _split_region(text, label, filename)
        except RuntimeError as exc:
            problems.append(str(exc))
            continue
        expected = render() + "\n"
        if body != expected:
            problems.append(
                f"{filename}: checked-in {label} differs from the "
                f"instruction-table rendering (run `python -m "
                f"repro.vm.dispatch --write`)"
            )
    return problems


def write_generated() -> list[str]:
    """Regenerate the checked-in loop regions; returns rewritten files."""
    here = Path(__file__).resolve().parent
    rewritten: list[str] = []
    for filename, label, _marker_indent, render in _GENERATED_TARGETS:
        path = here / filename
        text = path.read_text(encoding="utf-8")
        head, body, tail = _split_region(text, label, filename)
        expected = render() + "\n"
        if body != expected:
            path.write_text(head + expected + tail, encoding="utf-8")
            rewritten.append(filename)
    return rewritten


def main(argv: Sequence[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.vm.dispatch",
        description=(
            "Regenerate or check the dispatch loops generated from the "
            "declarative instruction table."
        ),
    )
    group = parser.add_mutually_exclusive_group(required=True)
    group.add_argument(
        "--check",
        action="store_true",
        help="fail (exit 1) if the checked-in loops drifted from the table",
    )
    group.add_argument(
        "--write",
        action="store_true",
        help="rewrite the generated loop regions in machine.py/profile.py",
    )
    group.add_argument(
        "--print",
        choices=["production", "counting"],
        dest="print_mode",
        help="print one generated loop to stdout",
    )
    args = parser.parse_args(argv)

    if args.print_mode:
        if args.print_mode == "production":
            print(production_loop_source())
        else:
            print(counting_loop_source())
        return 0
    if args.write:
        rewritten = write_generated()
        if rewritten:
            print("regenerated: " + ", ".join(rewritten))
        else:
            print("generated dispatch loops already in sync")
        return 0
    problems = check_drift()
    for problem in problems:
        print(problem, file=sys.stderr)
    if problems:
        return 1
    print("generated dispatch loops in sync with the instruction table")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    raise SystemExit(main())
