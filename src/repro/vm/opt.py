"""Dataflow bytecode optimizer for templates, with translation validation.

The specializer already paid to expose the structure the assembler then
buries in naive bytecode: residual templates carry dead stores
(``SETLOC`` into slots nothing reads), redundant reloads (``SETLOC k``
immediately followed by ``LOCAL k``), constants recomputable at
optimization time, branches on known constants, and chains of
unconditional jumps.  This module runs a fixpoint pass pipeline over
the basic-block graph from :mod:`repro.vm.cfg`:

* **jump threading** — branches through empty forwarding blocks are
  retargeted at the final destination;
* **unreachable-block removal** — blocks no path from the entry
  reaches are dropped;
* **constant/copy propagation** (forward, via
  :class:`repro.analysis.fixpoint.Solver`) — per-block entry states map
  ``val`` and every local slot to a flat lattice ``⊥ < Const(v) < ⊤``
  (plus ``val = Slot(i)`` copy facts); the rewrite walk deletes
  redundant loads and self-stores, rematerializes known locals as
  ``CONST``, folds pure primitives applied to known, identity-safe
  constants through the literal pool, and simplifies branches whose
  condition is a known constant;
* **liveness** (backward, via the same ``Solver``) — dead stores and
  dead value loads are deleted;
* **relinearization** — surviving blocks are emitted in original
  address order, ``JUMP``-to-next instructions are peepholed away, the
  literal pool is re-interned (compacting away literals only dead code
  referenced), and unused local slots above the parameters are
  squeezed out.

Only *identity-safe* values participate in constant facts: exact
numbers, booleans, characters, the empty list, the unspecified value,
and interned symbols — values ``eqv?`` compares by value (or that are
singletons), so substituting an equal-valued object is unobservable.
Strings and pairs compare by identity and are never folded.

Every optimized template goes through **translation validation**: the
output is re-verified by :mod:`repro.vm.verify` and any error raises
:class:`TranslationValidationError` — the passes are not trusted, the
checker is.  (Differential execution against the unoptimized twin, the
other half of validation, lives in the test suite and the ``opt`` CLI,
where a corpus is available.)
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any

from repro import obs
from repro.analysis.fixpoint import Solver
from repro.runtime.errors import SchemeError
from repro.runtime.values import NIL, UNSPECIFIED
from repro.sexp.datum import Char, Symbol
from repro.vm.cfg import build_cfg
from repro.vm.instructions import BRANCH_OPS, Op
from repro.vm.template import Template
from repro.vm.verify import VerifyReport, check_template


class TranslationValidationError(SchemeError):
    """An optimized template failed re-verification."""

    def __init__(self, report: VerifyReport):
        self.report = report
        summary = "; ".join(str(v) for v in report.errors)
        super().__init__(
            f"optimizer produced invalid bytecode (translation validation"
            f" failed): {summary}"
        )


@dataclass(frozen=True, slots=True)
class OptimizationResult:
    """The optimized template tree plus per-pass accounting."""

    template: Template
    before_instructions: int       # recursive, over the whole template tree
    after_instructions: int
    passes: dict[str, int]         # pass name -> rewrites/removals applied
    skipped: bool = False          # input did not verify; returned unchanged

    @property
    def removed(self) -> int:
        return self.before_instructions - self.after_instructions

    @property
    def reduction(self) -> float:
        """Fraction of instructions removed (0.0 when nothing to remove)."""
        if not self.before_instructions:
            return 0.0
        return self.removed / self.before_instructions


# -- the abstract domain ------------------------------------------------------

class _TopType:
    """The unknown abstract value (lattice top)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "⊤"


TOP = _TopType()


@dataclass(frozen=True, slots=True)
class _Const:
    """A known identity-safe constant.  Equality is by interning key, so
    ``-0.0``/``0.0`` and ``False``/``0`` stay distinct facts."""

    key: tuple
    value: Any = field(compare=False)


@dataclass(frozen=True, slots=True)
class _Slot:
    """``val`` currently equals ``locals[slot]`` (a copy fact)."""

    slot: int


def _const_key(value: Any) -> tuple:
    # Type-tagged like the assembler's literal interning, so Python's
    # cross-type equality (False == 0, 1 == 1.0) never merges distinct
    # Scheme constants; floats key on their bit pattern so -0.0 and 0.0
    # stay apart.
    if type(value) is float:
        return (float, value.hex())
    return (type(value), value)


def _abstract(value: Any) -> Any:
    """The abstract value of a known constant: ``_Const`` when the value
    is identity-safe (substituting an ``eqv?``-equal object is
    unobservable), ``TOP`` otherwise."""
    if value is NIL or value is UNSPECIFIED:
        return _Const(_const_key(value), value)
    if isinstance(value, bool) or isinstance(value, (Symbol, Char)):
        return _Const(_const_key(value), value)
    if isinstance(value, int):
        return _Const(_const_key(value), value)
    if isinstance(value, float):
        if value != value:  # NaN: eqv?-incomparable, never fold
            return TOP
        return _Const(_const_key(value), value)
    return TOP


def _join_abs(a: Any, b: Any) -> Any:
    return a if a == b else TOP


# -- the mutable mid-level form -----------------------------------------------
#
# Blocks hold instruction *lists* whose branch operands are block ids
# (not pcs) and whose fall-throughs are explicit trailing JUMPs, so
# passes can delete and retarget freely; literal operands index a
# mutable pool that folding appends to.  Invariant: every block ends
# with JUMP, RETURN, or TAIL_CALL, and a JUMP_IF_FALSE only ever sits
# immediately before a final JUMP.


class _Fn:
    __slots__ = ("blocks", "entry", "literals", "arity", "nlocals",
                 "name", "stats", "_abs_cache")

    def __init__(self, template: Template, stats: Counter):
        cfg = build_cfg(template)
        reachable = cfg.reachable()
        dropped = sum(
            len(cfg.blocks[leader].instrs)
            for leader in cfg.order
            if leader not in reachable
        )
        if dropped:
            stats["unreachable"] += dropped
        bid_of = {
            leader: bid
            for bid, leader in enumerate(
                leader for leader in cfg.order if leader in reachable
            )
        }
        self.blocks: dict[int, list[list]] = {}
        for leader, bid in bid_of.items():
            block = cfg.blocks[leader]
            instrs: list[list] = []
            for raw in block.instrs:
                op = raw[0]
                if type(op) is not Op:
                    op = Op(op)
                if op in BRANCH_OPS:
                    instrs.append([op, bid_of[raw[1]]])
                else:
                    instrs.append([op, *raw[1:]])
            last = instrs[-1][0]
            if last is not Op.JUMP and last is not Op.RETURN \
                    and last is not Op.TAIL_CALL:
                # Explicit fall-through (verified, reachable code never
                # falls off the end, so the successor exists).
                instrs.append([Op.JUMP, bid_of[block.end]])
            self.blocks[bid] = instrs
        self.entry = 0
        self.literals: list[Any] = list(template.literals)
        self.arity = template.arity
        self.nlocals = template.nlocals
        self.name = template.name
        self.stats = stats
        self._abs_cache: dict[int, Any] = {}

    def abstract(self, index: int) -> Any:
        """``_abstract`` of literal ``index``, cached (the pool is
        append-only, so an index never changes meaning)."""
        cached = self._abs_cache.get(index)
        if cached is None:
            cached = self._abs_cache[index] = _abstract(self.literals[index])
        return cached

    def succs(self, bid: int) -> tuple[int, ...]:
        instrs = self.blocks[bid]
        last = instrs[-1]
        if last[0] is Op.RETURN or last[0] is Op.TAIL_CALL:
            return ()
        if len(instrs) >= 2 and instrs[-2][0] is Op.JUMP_IF_FALSE:
            return (last[1], instrs[-2][1])  # fall-through first
        return (last[1],)

    def predecessors(self) -> dict[int, list[int]]:
        preds: dict[int, list[int]] = {bid: [] for bid in self.blocks}
        for bid in self.blocks:
            for succ in self.succs(bid):
                if bid not in preds[succ]:
                    preds[succ].append(bid)
        return preds

    def intern(self, value: Any) -> int:
        for idx, existing in enumerate(self.literals):
            if type(existing) is type(value) and existing == value:
                return idx
        self.literals.append(value)
        return len(self.literals) - 1


# -- passes -------------------------------------------------------------------


def _thread_jumps(fn: _Fn) -> bool:
    """Retarget branches through blocks that are a single ``JUMP``."""
    forward = {
        bid: instrs[0][1]
        for bid, instrs in fn.blocks.items()
        if len(instrs) == 1 and instrs[0][0] is Op.JUMP
    }

    if not forward:
        return False

    def resolve(bid: int) -> int:
        seen = set()
        while bid in forward and bid not in seen:
            seen.add(bid)
            bid = forward[bid]
        return bid

    changed = False
    for instrs in fn.blocks.values():
        for instr in instrs:
            if instr[0] in BRANCH_OPS:
                target = resolve(instr[1])
                if target != instr[1]:
                    instr[1] = target
                    fn.stats["jump_thread"] += 1
                    changed = True
    return changed


def _drop_unreachable(fn: _Fn) -> bool:
    """Remove blocks no path from the entry reaches."""
    if len(fn.blocks) == 1:
        return False  # the entry is always reachable
    seen: set[int] = set()
    work = [fn.entry]
    while work:
        bid = work.pop()
        if bid in seen:
            continue
        seen.add(bid)
        work.extend(fn.succs(bid))
    dead = [bid for bid in fn.blocks if bid not in seen]
    for bid in dead:
        fn.stats["unreachable"] += len(fn.blocks[bid])
        del fn.blocks[bid]
    return bool(dead)


def _entry_state(fn: _Fn) -> tuple:
    return (TOP, (TOP,) * fn.nlocals)


# Hoisted operand-class sets for the hot per-instruction loops (building
# a tuple of attribute loads on every iteration is measurable at this
# call volume).
_CLOBBERS_VAL = frozenset(
    {Op.CLOSED, Op.GLOBAL, Op.PRIM, Op.MAKE_CLOSURE, Op.CALL}
)
_EFFECTFUL_VAL_KILLS = frozenset(
    {Op.GLOBAL, Op.PRIM, Op.MAKE_CLOSURE, Op.CALL}
)


def _flow_block(fn: _Fn, bid: int, state: tuple) -> tuple:
    """Abstractly execute a block; return its exit state."""
    val, locs = state[0], list(state[1])
    for instr in fn.blocks[bid]:
        op = instr[0]
        if op is Op.CONST:
            val = fn.abstract(instr[1])
        elif op is Op.LOCAL:
            known = locs[instr[1]]
            val = known if isinstance(known, _Const) else _Slot(instr[1])
        elif op is Op.SETLOC:
            locs[instr[1]] = val if isinstance(val, _Const) else TOP
            if val is TOP:
                val = _Slot(instr[1])
        elif op in _CLOBBERS_VAL:
            val = TOP
    return (val, tuple(locs))


def _solve_consts(fn: _Fn) -> dict[int, tuple | None]:
    """Forward constant/copy analysis: block id -> entry state (or None
    for blocks the fixpoint never reached)."""
    if len(fn.blocks) == 1 and not fn.succs(fn.entry):
        # Straight-line template (the common shape for small nested
        # closures): the entry state is the whole solution.
        return {fn.entry: _entry_state(fn)}
    preds = fn.predecessors()
    entry_state = _entry_state(fn)
    # Exit-state cache: _flow_block(pred) only re-runs when pred's entry
    # state has actually moved since we last flowed it (entry states move
    # a bounded number of times on the finite lattice, but the solver may
    # re-evaluate a successor far more often).
    flowed: dict[int, tuple[tuple, tuple]] = {}

    def join(a: Any, b: Any) -> Any:
        if a is None:
            return b
        if b is None:
            return a
        if a == b:  # common once the fixpoint settles; C-level compare
            return a
        return (
            _join_abs(a[0], b[0]),
            tuple(_join_abs(x, y) for x, y in zip(a[1], b[1])),
        )

    def transfer(bid: int, solver: Solver) -> tuple | None:
        state = entry_state if bid == fn.entry else None
        for pred in preds[bid]:
            pred_entry = solver.get(pred)
            if pred_entry is None:
                continue
            cached = flowed.get(pred)
            if cached is not None and cached[0] == pred_entry:
                exit_state = cached[1]
            else:
                exit_state = _flow_block(fn, pred, pred_entry)
                flowed[pred] = (pred_entry, exit_state)
            state = join(state, exit_state)
        return state

    solver = Solver(join, bottom=None)
    # The solver's worklist is LIFO; feeding keys reversed makes it
    # process blocks in layout (roughly topological) order, so this
    # forward analysis converges in about one sweep.
    solver.solve(list(reversed(fn.blocks)), transfer)
    return {bid: solver.env.get(bid) for bid in fn.blocks}


def _apply_consts(fn: _Fn, states: dict[int, tuple | None]) -> bool:
    """Rewrite each block under its solved entry state: delete redundant
    loads and stores, rematerialize known locals, fold pure primitives
    on known constants, and simplify branches on known conditions."""
    # Local bindings for the per-instruction dispatch (hot loop).
    CONST, LOCAL, CLOSED, GLOBAL = Op.CONST, Op.LOCAL, Op.CLOSED, Op.GLOBAL
    PUSH, SETLOC, PRIM = Op.PUSH, Op.SETLOC, Op.PRIM
    MAKE_CLOSURE, CALL = Op.MAKE_CLOSURE, Op.CALL
    TAIL_CALL, JUMP, JUMP_IF_FALSE = Op.TAIL_CALL, Op.JUMP, Op.JUMP_IF_FALSE
    stats = fn.stats
    changed = False
    for bid in list(fn.blocks):
        state = states.get(bid)
        if state is None:
            continue  # newly unreachable; dropped next round
        instrs = fn.blocks[bid]
        val, locs = state[0], list(state[1])
        # Block-local operand stack: (abstract value, index of the PUSH).
        stack: list[tuple[Any, int]] = []
        dead: set[int] = set()
        for idx, instr in enumerate(instrs):
            op = instr[0]
            if op is CONST:
                known = fn.abstract(instr[1])
                if known is not TOP and known == val:
                    dead.add(idx)
                    stats["copy_prop"] += 1
                else:
                    val = known
            elif op is LOCAL:
                slot = instr[1]
                known = locs[slot]
                if (isinstance(val, _Slot) and val.slot == slot) or (
                    isinstance(known, _Const) and val == known
                ):
                    dead.add(idx)
                    stats["copy_prop"] += 1
                elif isinstance(known, _Const):
                    instrs[idx] = [CONST, fn.intern(known.value)]
                    val = known
                    stats["const_prop"] += 1
                    changed = True
                else:
                    val = _Slot(slot)
            elif op is CLOSED or op is GLOBAL:
                val = TOP
            elif op is PUSH:
                stack.append((val, idx))
            elif op is SETLOC:
                slot = instr[1]
                if isinstance(val, _Slot) and val.slot == slot:
                    dead.add(idx)
                    stats["copy_prop"] += 1
                elif isinstance(val, _Const) and locs[slot] == val:
                    dead.add(idx)
                    stats["copy_prop"] += 1
                else:
                    locs[slot] = val if isinstance(val, _Const) else TOP
                    if val is TOP:
                        val = _Slot(slot)
            elif op is PRIM:
                spec = fn.literals[instr[1]]
                count = instr[2]
                folded = False
                if spec.pure and count <= len(stack):
                    args = stack[-count:] if count else []
                    if all(isinstance(a, _Const) for a, _ in args):
                        try:
                            result = spec.apply([a.value for a, _ in args])
                        except Exception:
                            result = TOP  # fold must not change errors
                        known = (
                            _abstract(result) if result is not TOP else TOP
                        )
                        if isinstance(known, _Const):
                            for _, push_idx in args:
                                dead.add(push_idx)
                            instrs[idx] = [CONST, fn.intern(known.value)]
                            val = known
                            stats["const_fold"] += 1
                            changed = True
                            folded = True
                if count:
                    del stack[-count:]
                if not folded:
                    val = TOP
            elif op is MAKE_CLOSURE:
                if instr[2]:
                    del stack[max(0, len(stack) - instr[2]):]
                val = TOP
            elif op is CALL or op is TAIL_CALL:
                del stack[max(0, len(stack) - instr[1] - 1):]
                val = TOP
            elif op is JUMP_IF_FALSE:
                if isinstance(val, _Const):
                    if val.value is False:
                        instrs[idx] = [JUMP, instr[1]]
                        dead.update(range(idx + 1, len(instrs)))
                        stats["branch_simplify"] += 1
                        changed = True
                        break
                    dead.add(idx)
                    stats["branch_simplify"] += 1
                elif instr[1] == instrs[-1][1]:
                    # Both arms land on the same block.
                    dead.add(idx)
                    stats["branch_simplify"] += 1
        if dead:
            fn.blocks[bid] = [
                instr for idx, instr in enumerate(instrs) if idx not in dead
            ]
            changed = True
    return changed


_VAL = "val"

# Placeholder passed to a backward transfer when the block has no
# successors (its ``get`` is provably never consulted).
_NO_SOLVER: Any = None


def _solve_liveness(fn: _Fn) -> dict[int, frozenset]:
    """Backward *faint-variable* liveness of local slots and the ``val``
    register: block id -> live-in set.

    The transfer skips instructions that are dead under the current
    solution (a store to a dead slot, a pure load of a dead ``val``) —
    exactly the instructions ``_eliminate_dead`` would delete — so the
    least fixpoint describes the program *after* the whole dead-code
    cascade, and one solve + one elimination pass removes chains that
    plain liveness would only peel one layer per round."""

    RETURN, TAIL_CALL, PUSH = Op.RETURN, Op.TAIL_CALL, Op.PUSH
    JUMP_IF_FALSE, SETLOC, LOCAL = Op.JUMP_IF_FALSE, Op.SETLOC, Op.LOCAL
    CONST, CLOSED = Op.CONST, Op.CLOSED

    def transfer(bid: int, solver: Solver) -> frozenset:
        live: set = set()
        for succ in fn.succs(bid):
            live |= solver.get(succ)
        for instr in reversed(fn.blocks[bid]):
            op = instr[0]
            if op is RETURN:
                live = {_VAL}
            elif op is TAIL_CALL:
                live = set()
            elif op is JUMP_IF_FALSE or op is PUSH:
                live.add(_VAL)
            elif op is SETLOC:
                if instr[1] in live:  # else faint: will be deleted
                    live.discard(instr[1])
                    live.add(_VAL)
            elif op is LOCAL:
                if _VAL in live:  # else faint
                    live.discard(_VAL)
                    live.add(instr[1])
            elif op is CONST or op is CLOSED:
                live.discard(_VAL)  # faint when val dead; either way kills
            elif op in _EFFECTFUL_VAL_KILLS:
                live.discard(_VAL)
        return frozenset(live)

    if len(fn.blocks) == 1 and not fn.succs(fn.entry):
        # Straight-line template: elimination only ever reads the live-in
        # of *successor* blocks (there are none), but compute the entry's
        # live-in anyway so the result stays an honest solution.
        return {fn.entry: transfer(fn.entry, _NO_SOLVER)}

    solver = Solver(lambda a, b: a | b, bottom=frozenset())
    solver.solve(list(fn.blocks), transfer)
    return {bid: solver.env.get(bid, frozenset()) for bid in fn.blocks}


def _eliminate_dead(fn: _Fn, live_in: dict[int, frozenset]) -> bool:
    """Delete stores to dead slots and pure loads of a dead ``val``."""
    RETURN, TAIL_CALL, PUSH = Op.RETURN, Op.TAIL_CALL, Op.PUSH
    JUMP_IF_FALSE, SETLOC, LOCAL = Op.JUMP_IF_FALSE, Op.SETLOC, Op.LOCAL
    CONST, CLOSED = Op.CONST, Op.CLOSED
    stats = fn.stats
    changed = False
    for bid, instrs in fn.blocks.items():
        live: set = set()
        for succ in fn.succs(bid):
            live |= live_in[succ]
        dead: set[int] = set()
        for idx in range(len(instrs) - 1, -1, -1):
            instr = instrs[idx]
            op = instr[0]
            if op is RETURN:
                live = {_VAL}
            elif op is TAIL_CALL:
                live = set()
            elif op is JUMP_IF_FALSE or op is PUSH:
                live.add(_VAL)
            elif op is SETLOC:
                if instr[1] not in live:
                    dead.add(idx)
                    stats["dead_store"] += 1
                else:
                    live.discard(instr[1])
                    live.add(_VAL)
            elif op is LOCAL:
                if _VAL not in live:
                    dead.add(idx)
                    stats["dead_load"] += 1
                else:
                    live.discard(_VAL)
                    live.add(instr[1])
            elif op is CONST or op is CLOSED:
                if _VAL not in live:
                    dead.add(idx)
                    stats["dead_load"] += 1
                else:
                    live.discard(_VAL)
            elif op in _EFFECTFUL_VAL_KILLS:
                # GLOBAL may raise; the rest have stack effects — never
                # deleted here even when val is dead.
                live.discard(_VAL)
        if dead:
            fn.blocks[bid] = [
                instr for idx, instr in enumerate(instrs) if idx not in dead
            ]
            changed = True
    return changed


_MAX_ROUNDS = 50


def _optimize_rounds(fn: _Fn) -> None:
    """Run the pass pipeline to a fixpoint (every rewrite is one-way, so
    the round count is bounded; the cap is a backstop).

    The typical template converges in one working round plus one
    verifying round.  Two savings keep the verifying round cheap: the
    faint-variable liveness in ``_solve_liveness`` removes whole dead
    cascades in a single solve+eliminate, and the final round skips
    dead-code elimination entirely when nothing has changed since the
    last elimination reached its fixpoint (jump threading, unreachable
    removal, and constant rewrites are the only things that could
    invalidate it).
    """
    dse_at_fixpoint = False
    for _ in range(_MAX_ROUNDS):
        cfg_changed = _thread_jumps(fn)
        cfg_changed |= _drop_unreachable(fn)
        apply_changed = _apply_consts(fn, _solve_consts(fn))
        if dse_at_fixpoint and not (cfg_changed or apply_changed):
            break
        # Dead-code elimination cascades across blocks (deleting a dead
        # store can kill the load feeding it in a predecessor); the
        # faint-variable solve handles the cascade, the drain loop is a
        # cheap fixpoint check on top.
        dead_changed = False
        while _eliminate_dead(fn, _solve_liveness(fn)):
            dead_changed = True
        dse_at_fixpoint = True
        if not (cfg_changed or apply_changed or dead_changed):
            break


# -- relinearization ----------------------------------------------------------


def _encode(fn: _Fn, optimize_literal) -> Template:
    """Emit surviving blocks back into a flat, compacted template.

    ``optimize_literal`` maps literal values for the new pool (the
    recursion hook that replaces nested templates with their optimized
    twins).
    """
    order = list(fn.blocks)
    # Peephole: a trailing JUMP to the textually next block is a no-op.
    dropped: set[int] = set()
    for pos, bid in enumerate(order):
        instrs = fn.blocks[bid]
        last = instrs[-1]
        if (
            last[0] is Op.JUMP
            and pos + 1 < len(order)
            and last[1] == order[pos + 1]
        ):
            dropped.add(bid)
            fn.stats["peephole_jump"] += 1

    starts: dict[int, int] = {}
    pc = 0
    for bid in order:
        starts[bid] = pc
        pc += len(fn.blocks[bid]) - (1 if bid in dropped else 0)

    # Literal re-interning: same type-tagged sharing as the assembler,
    # falling back to per-source-index dedup for unhashable values.
    new_literals: list[Any] = []
    by_key: dict[Any, int] = {}
    by_old: dict[int, int] = {}

    def intern_value(value: Any) -> int:
        try:
            key = (type(value), value)
            existing = by_key.get(key)
        except TypeError:
            key = None
            existing = None
        if existing is not None:
            return existing
        new_literals.append(value)
        idx = len(new_literals) - 1
        if key is not None:
            by_key[key] = idx
        return idx

    def intern_old(old: int) -> int:
        if old in by_old:
            return by_old[old]
        idx = intern_value(optimize_literal(fn.literals[old]))
        by_old[old] = idx
        return idx

    # Locals compaction: parameters keep their slots; temporaries still
    # referenced are renumbered densely above them.
    used_slots = {
        instr[1]
        for instrs in fn.blocks.values()
        for instr in instrs
        if instr[0] is Op.LOCAL or instr[0] is Op.SETLOC
    }
    slot_map = {slot: slot for slot in range(fn.arity)}
    for slot in sorted(s for s in used_slots if s >= fn.arity):
        slot_map[slot] = len(slot_map)
    squeezed = fn.nlocals - len(slot_map)
    if squeezed:
        fn.stats["locals_compaction"] += squeezed

    code: list[tuple] = []
    for bid in order:
        instrs = fn.blocks[bid]
        limit = len(instrs) - (1 if bid in dropped else 0)
        for instr in instrs[:limit]:
            op = instr[0]
            if op in BRANCH_OPS:
                code.append((op, starts[instr[1]]))
            elif op is Op.CONST or op is Op.GLOBAL:
                code.append((op, intern_old(instr[1])))
            elif op is Op.PRIM or op is Op.MAKE_CLOSURE:
                code.append((op, intern_old(instr[1]), instr[2]))
            elif op is Op.LOCAL or op is Op.SETLOC:
                code.append((op, slot_map[instr[1]]))
            else:
                code.append(tuple(instr))

    return Template(
        code=tuple(code),
        literals=tuple(new_literals),
        arity=fn.arity,
        nlocals=len(slot_map),
        name=fn.name,
    )


# -- result memoization -------------------------------------------------------
#
# RTCG's economics are "generate once, apply many" — and in between, the
# same residual shapes are regenerated over and over (re-specialization
# after cache eviction, nested closure templates shared across
# specializations, benchmark loops).  The optimizer is a deterministic
# pure function of template *content*, so results are memoized under a
# content key: regenerated-but-identical code pays a hash and a dict
# probe instead of a fixpoint pipeline.
#
# A literal participates in the key only when substituting the cached
# (equal-valued) object for it is unobservable: exact numbers, booleans,
# symbols, characters, the singletons, the process-global primitive
# specs (keyed by identity), and nested templates (recursively).
# Anything else — strings and pairs compare by ``eqv?`` identity,
# mutable host objects can drift — makes the template uncacheable and
# it is simply re-optimized each time.


class _Uncacheable(Exception):
    """The template's content has no stable, identity-safe key."""


def _literal_key(value: Any) -> tuple:
    from repro.lang.prims import PrimSpec

    if value is NIL or value is UNSPECIFIED:
        return ("s", id(value))
    if isinstance(value, Template):
        return ("t", _template_key(value))
    if isinstance(value, PrimSpec):
        return ("p", id(value))
    if isinstance(value, Symbol):
        return ("y", value.name)
    if isinstance(value, Char):
        return ("c", value.value)
    if isinstance(value, bool):
        return ("b", value)
    if isinstance(value, int):
        return ("i", value)
    if isinstance(value, float):
        if value != value:  # NaN payloads have no stable key
            raise _Uncacheable
        return ("f", value.hex())
    raise _Uncacheable


def _template_key(template: Template) -> tuple:
    return (
        template.name,
        template.arity,
        template.nlocals,
        template.code,
        tuple(_literal_key(v) for v in template.literals),
    )


_MEMO_MAX = 1024
_memo: dict[tuple, OptimizationResult] = {}


def clear_memo() -> None:
    """Drop every memoized optimization result (tests monkeypatching
    passes must call this, or stale results mask the patch)."""
    _memo.clear()


# -- entry points -------------------------------------------------------------


@obs.traced("vm.optimize")
def optimize(
    template: Template,
    closed_count: int = 0,
    validate: bool = True,
    assume_verified: bool = False,
) -> OptimizationResult:
    """Optimize ``template`` (recursively through nested closure
    templates) and return the result with per-pass accounting.

    The input must verify cleanly; unless ``assume_verified`` says the
    caller already ran the verifier, it is checked here and templates
    with errors are returned unchanged (``skipped=True``) — the
    optimizer only transforms code whose semantics the verifier pinned
    down.  With ``validate`` (the default), the *output* is re-verified
    and any error raises :class:`TranslationValidationError`.

    Results are memoized by template content (see the memoization notes
    above): re-optimizing regenerated-but-identical code is a dict
    probe.  Only validated, non-skipped results enter the memo.
    """
    try:
        key: tuple | None = (_template_key(template), closed_count)
    except _Uncacheable:
        key = None
    if key is not None:
        cached = _memo.get(key)
        if cached is not None:
            obs.count("vm.optimize.memo_hit")
            obs.count("vm.optimize.templates")
            obs.count("vm.optimize.instructions_removed", cached.removed)
            return cached

    before = template.instruction_count()
    if not assume_verified and not check_template(template, closed_count).ok:
        obs.count("vm.optimize.skipped")
        return OptimizationResult(
            template=template,
            before_instructions=before,
            after_instructions=before,
            passes={},
            skipped=True,
        )

    stats: Counter = Counter()
    memo: dict[int, Template] = {}

    def optimize_one(t: Template) -> Template:
        cached = memo.get(id(t))
        if cached is not None:
            return cached
        fn = _Fn(t, stats)
        fired_before = sum(stats.values())
        _optimize_rounds(fn)
        if sum(stats.values()) == fired_before:
            # No pass fired: re-encoding would reproduce the input (bar
            # a possible JUMP-to-next peephole, which the assembler does
            # not emit) — keep the original tuples and only swap nested
            # templates whose own optimization changed them.
            new_literals = tuple(optimize_literal(v) for v in t.literals)
            if all(a is b for a, b in zip(new_literals, t.literals)):
                optimized = t
            else:
                optimized = Template(
                    code=t.code,
                    literals=new_literals,
                    arity=t.arity,
                    nlocals=t.nlocals,
                    name=t.name,
                )
            memo[id(t)] = optimized
            return optimized
        literal_count = len(t.literals)
        optimized = _encode(fn, optimize_literal)
        delta = literal_count - len(optimized.literals)
        if delta > 0:
            stats["literal_compaction"] += delta
        memo[id(t)] = optimized
        return optimized

    def optimize_literal(value: Any) -> Any:
        if isinstance(value, Template):
            return optimize_one(value)
        return value

    optimized = optimize_one(template)

    if validate:
        report = check_template(optimized, closed_count)
        if not report.ok:
            raise TranslationValidationError(report)

    after = optimized.instruction_count()
    obs.count("vm.optimize.templates")
    obs.count("vm.optimize.instructions_removed", before - after)
    result = OptimizationResult(
        template=optimized,
        before_instructions=before,
        after_instructions=after,
        passes=dict(stats),
    )
    if validate and key is not None:
        if len(_memo) >= _MEMO_MAX:
            _memo.clear()
        _memo[key] = result
    return result


def optimize_template(
    template: Template,
    closed_count: int = 0,
    validate: bool = True,
    assume_verified: bool = False,
) -> Template:
    """:func:`optimize`, returning just the optimized template."""
    return optimize(
        template, closed_count, validate=validate,
        assume_verified=assume_verified,
    ).template


# -- the superinstruction pass ----------------------------------------------
#
# The profile-guided dynamic-speed half of the optimizer lives in
# ``repro.vm.superinst`` (it needs the dispatch-loop generator, which
# the static passes above do not); it is re-exported here because the
# two are one optimizer surface: static passes shrink the residual code,
# the superinstruction pass shrinks the dispatches the survivors retire,
# and both use the same translation-validation discipline.

from repro.vm.superinst import (  # noqa: E402  (deliberate re-export)
    FusionPlan as FusionPlan,
    FusionValidationError as FusionValidationError,
    SuperMachine as SuperMachine,
    fuse_machine as fuse_machine,
    fuse_template as fuse_template,
    lower_template as lower_template,
    plan_from_template as plan_from_template,
    select_superinstructions as select_superinstructions,
    validate_fusion as validate_fusion,
)
