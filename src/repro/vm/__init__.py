"""The bytecode virtual machine substrate.

A stack machine with closures and templates in the style of the Scheme 48
VM [32]: a *template* is a code vector plus a literal frame; object code is
first built as an abstract representation (:mod:`repro.vm.fragments`, the
constructors a compilator uses) and then *relocated* — linearized, labels
resolved, literals interned — into an executable template by
:mod:`repro.vm.assembler`, exactly the two-stage shape §6.1 describes.
"""

from repro.vm.assembler import assemble
from repro.vm.disasm import disassemble
from repro.vm.dispatch import (
    FUSABLE_OPS,
    FusionPlan,
    Superinstruction,
    build_loop,
    opcode_name,
    superinstruction,
)
from repro.vm.fragments import (
    EMPTY,
    Fragment,
    Instr,
    Label,
    Lit,
    Seq,
    attach_label,
    instruction,
    instruction_using_label,
    make_label,
    sequentially,
)
from repro.vm.instructions import Op
from repro.vm.machine import Machine, VmClosure, VMError
from repro.vm.profile import (
    TemplateIdent,
    VMProfile,
    call_named_profiled,
    call_profiled,
)
from repro.vm.superinst import (
    FusionValidationError,
    SuperMachine,
    fuse_machine,
    fuse_template,
    lower_template,
    plan_from_template,
    select_superinstructions,
    validate_fusion,
)
from repro.vm.template import Template
from repro.vm.verify import (
    VerificationError,
    VerifyReport,
    Violation,
    ViolationKind,
    check_template,
    verify_template,
    verify_templates,
)

__all__ = [
    "EMPTY",
    "FUSABLE_OPS",
    "Fragment",
    "FusionPlan",
    "FusionValidationError",
    "Instr",
    "Label",
    "Lit",
    "Machine",
    "Op",
    "Seq",
    "SuperMachine",
    "Superinstruction",
    "Template",
    "TemplateIdent",
    "VerificationError",
    "VerifyReport",
    "Violation",
    "ViolationKind",
    "VMError",
    "VMProfile",
    "VmClosure",
    "assemble",
    "attach_label",
    "build_loop",
    "call_named_profiled",
    "call_profiled",
    "check_template",
    "disassemble",
    "fuse_machine",
    "fuse_template",
    "instruction",
    "instruction_using_label",
    "lower_template",
    "make_label",
    "opcode_name",
    "plan_from_template",
    "select_superinstructions",
    "sequentially",
    "superinstruction",
    "validate_fusion",
    "verify_template",
    "verify_templates",
]
