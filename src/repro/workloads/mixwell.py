"""The MIXWELL interpreter and its input program.

MIXWELL is the small first-order functional language of the MIX project
(Jones, Sestoft, Søndergaard); Similix shipped an interpreter for it as a
standard example of compilation by partial evaluation.  A MIXWELL program
is a list of definitions::

    ((fname (param ...) = expr) ...)

    expr ::= <number>
           | <variable>
           | (quote datum)
           | (if expr expr expr)
           | (call fname expr ...)
           | (op expr ...)          ; op in the primitive table below

The first definition is the goal function; it receives the program input
as its single argument.

The interpreter below is written in the reproduction's Scheme subset with
the binding-time discipline that makes it specialize well: the program,
function names, and parameter names are static; the value environment is
dynamic.  Specializing ``mixwell-run`` with a static program is the first
Futamura projection — the residual program is the MIXWELL program compiled
to Core Scheme.
"""

from __future__ import annotations

from typing import Any

from repro.lang.ast import Program
from repro.lang.parser import parse_program
from repro.runtime.values import datum_to_value
from repro.sexp.reader import read

MIXWELL_GOAL = "mixwell-run"

# program static, input dynamic
MIXWELL_SIGNATURE = "SD"

# 93 lines matching the paper's reported interpreter size, plus call-arity
# checking (see mixwell-arity-ok? below for its binding-time story).
MIXWELL_SOURCE = """
;; The MIXWELL interpreter.
;;
;; (mixwell-run prog input) runs the MIXWELL program `prog` on `input`.
;; The first definition of the program is its goal function.

(define (mixwell-run prog input)
  (mixwell-apply (car prog)
                 prog
                 (cons input '())))

;; Apply a definition (fname (params ...) = body) to evaluated arguments.
(define (mixwell-apply def prog vals)
  (mixwell-eval (cadddr def)
                prog
                (cadr def)
                vals))

;; The expression evaluator.
(define (mixwell-eval e prog names vals)
  (cond ((number? e)
         e)
        ((symbol? e)
         (mixwell-lookup e names vals))
        ((eq? (car e) 'quote)
         (cadr e))
        ((eq? (car e) 'if)
         (if (mixwell-eval (cadr e) prog names vals)
             (mixwell-eval (caddr e) prog names vals)
             (mixwell-eval (cadddr e) prog names vals)))
        ((eq? (car e) 'call)
         (if (mixwell-arity-ok? (mixwell-function (cadr e) prog)
                                (cddr e))
             (mixwell-apply (mixwell-function (cadr e) prog)
                            prog
                            (mixwell-eval-args (cddr e) prog names vals))
             (error "mixwell: arity mismatch")))
        (else
         (mixwell-prim (car e)
                       (mixwell-eval-args (cdr e) prog names vals)))))

;; Arity checking: both lists are static when the program is static,
;; but `mixwell-length` is shared with the dynamic `length` primitive
;; below — a monovariant division poisons it; a polyvariant one gives
;; it a static variant so the checks fold away (see DESIGN.md §5j).
(define (mixwell-arity-ok? def es)
  (= (mixwell-length (cadr def))
     (mixwell-length es)))

(define (mixwell-length xs)
  (if (null? xs)
      0
      (+ 1 (mixwell-length (cdr xs)))))

;; Evaluate an argument list, left to right.
(define (mixwell-eval-args es prog names vals)
  (if (null? es)
      '()
      (cons (mixwell-eval (car es) prog names vals)
            (mixwell-eval-args (cdr es) prog names vals))))

;; The primitive operations of MIXWELL.
(define (mixwell-prim op args)
  (cond ((eq? op '+)
         (+ (car args) (cadr args)))
        ((eq? op '-)
         (- (car args) (cadr args)))
        ((eq? op '*)
         (* (car args) (cadr args)))
        ((eq? op '=)
         (= (car args) (cadr args)))
        ((eq? op '<)
         (< (car args) (cadr args)))
        ((eq? op 'car)
         (car (car args)))
        ((eq? op 'cdr)
         (cdr (car args)))
        ((eq? op 'cons)
         (cons (car args) (cadr args)))
        ((eq? op 'equal?)
         (equal? (car args) (cadr args)))
        ((eq? op 'null?)
         (null? (car args)))
        ((eq? op 'pair?)
         (pair? (car args)))
        ((eq? op 'atom?)
         (not (pair? (car args))))
        ((eq? op 'length)
         (mixwell-length (car args)))
        (else
         (error "mixwell: unknown primitive"))))

;; Variable lookup: positional in the parameter list.
(define (mixwell-lookup x names vals)
  (if (eq? x (car names))
      (car vals)
      (mixwell-lookup x (cdr names) (cdr vals))))

;; Function lookup by name.
(define (mixwell-function f prog)
  (if (eq? f (caar prog))
      (car prog)
      (mixwell-function f (cdr prog))))
"""

# The input program: a Turing-machine simulator running a binary-increment
# machine over a dynamic tape, plus the list plumbing it needs.
# 62 lines, matching the paper's reported input size.
MIXWELL_TM_PROGRAM = """
((main (tape)
       = (call run (quote ((q0 0 0 right q0)
                           (q0 1 1 right q0)
                           (q0 b b left q1)
                           (q1 0 1 left done)
                           (q1 1 0 left q1)
                           (q1 b 1 right done)))
              (quote q0)
              (quote ())
              tape))
 (run (rules state left right)
      = (if (equal? state (quote done))
            (call rewind left right)
            (call step rules
                  (call find rules state (call head right))
                  left
                  right)))
 (step (rules rule left right)
       = (if (equal? (call rule-move rule) (quote left))
             (call run rules
                   (call rule-next rule)
                   (call tail left)
                   (cons (call head left)
                         (cons (call rule-write rule)
                               (call tail right))))
             (call run rules
                   (call rule-next rule)
                   (cons (call rule-write rule) left)
                   (call tail right))))
 (find (rules state sym)
       = (if (null? rules)
             (quote (done b b right done))
             (if (equal? state (car (car rules)))
                 (if (equal? sym (car (cdr (car rules))))
                     (car rules)
                     (call find (cdr rules) state sym))
                 (call find (cdr rules) state sym))))
 (rule-write (rule)
             = (car (cdr (cdr rule))))
 (rule-move (rule)
            = (car (cdr (cdr (cdr rule)))))
 (rule-next (rule)
            = (car (cdr (cdr (cdr (cdr rule))))))
 (head (right)
       = (if (null? right)
             (quote b)
             (car right)))
 (tail (right)
       = (if (null? right)
             (quote ())
             (cdr right)))
 (rewind (left right)
         = (if (null? left)
               (call strip right)
               (call rewind (cdr left)
                     (cons (car left) right))))
 (strip (tape)
        = (if (null? tape)
              (quote ())
              (if (equal? (car tape) (quote b))
                  (call strip (cdr tape))
                  (cons (car tape)
                        (call strip (cdr tape)))))))
"""


def mixwell_interpreter() -> Program:
    """The MIXWELL interpreter, parsed."""
    return parse_program(MIXWELL_SOURCE, goal=MIXWELL_GOAL)


def mixwell_tm_program() -> Any:
    """The Turing-machine input program, as a run-time value."""
    return datum_to_value(read(MIXWELL_TM_PROGRAM))


def run_mixwell(program_value: Any, input_value: Any) -> Any:
    """Run a MIXWELL program directly (through the reference interpreter)."""
    from repro.interp import run_program

    return run_program(mixwell_interpreter(), [program_value, input_value])
