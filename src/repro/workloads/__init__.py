"""The benchmark workloads of §7.

"For our benchmarks, we used two standard examples for compilation by
partial evaluation: an interpreter for a small first-order functional
language called MIXWELL, and one for a small lazy functional language
called LAZY, both taken from the Similix distribution.  The MIXWELL
interpreter is 93 lines long and was run on a 62-line input program, the
LAZY interpreter has 127 lines of code and was run on a 26-line input
program."

The Similix distribution is not available; these are interpreters of the
same language classes and sizes written for this reproduction (see
DESIGN.md's substitution table).
"""

from repro.workloads.mixwell import (
    MIXWELL_GOAL,
    MIXWELL_SIGNATURE,
    MIXWELL_SOURCE,
    MIXWELL_TM_PROGRAM,
    mixwell_interpreter,
    mixwell_tm_program,
    run_mixwell,
)
from repro.workloads.lazy import (
    LAZY_GOAL,
    LAZY_PRIMES_PROGRAM,
    LAZY_SIGNATURE,
    LAZY_SOURCE,
    lazy_interpreter,
    lazy_primes_program,
    run_lazy,
)

__all__ = [
    "LAZY_GOAL",
    "LAZY_PRIMES_PROGRAM",
    "LAZY_SIGNATURE",
    "LAZY_SOURCE",
    "MIXWELL_GOAL",
    "MIXWELL_SIGNATURE",
    "MIXWELL_SOURCE",
    "MIXWELL_TM_PROGRAM",
    "lazy_interpreter",
    "lazy_primes_program",
    "mixwell_interpreter",
    "mixwell_tm_program",
    "run_lazy",
    "run_mixwell",
]
