"""The LAZY interpreter and its input program.

LAZY is a small lazy (call-by-name) functional language; Similix shipped an
interpreter for one as its second standard compilation-by-PE example.  A
LAZY program is a list of definitions::

    ((fname (param ...) = expr) ...)

    expr ::= <number>
           | <variable>
           | (quote datum)
           | (if expr expr expr)          ; strict in the test
           | (call fname expr ...)        ; call-by-name
           | (cons expr expr)             ; lazy pairs (streams!)
           | (car expr) | (cdr expr)      ; force the components
           | (op expr ...)                ; strict primitives

Arguments are passed as thunks and ``cons`` is lazy, so LAZY programs can
build infinite streams.  Specializing ``lazy-run`` with a static program
compiles the laziness away into explicit residual closures: the thunks the
interpreter builds are dynamic lambdas, so the residual program contains
real closures — this workload exercises the compiler's closure path
(``MAKE_CLOSURE``, captured variables) end to end.
"""

from __future__ import annotations

from typing import Any

from repro.lang.ast import Program
from repro.lang.parser import parse_program
from repro.runtime.values import datum_to_value
from repro.sexp.reader import read

LAZY_GOAL = "lazy-run"

# program static, input dynamic
LAZY_SIGNATURE = "SD"

# 127 lines, matching the paper's reported interpreter size.
LAZY_SOURCE = """
;; The LAZY interpreter: a call-by-name functional language with lazy
;; lists.  (lazy-run prog input) runs `prog` on `input`; the first
;; definition of the program is its goal function.

(define (lazy-run prog input)
  (lazy-apply (car prog)
              prog
              (cons (lambda () input) '())))

;; Apply a definition (fname (params ...) = body) to a list of thunks.
(define (lazy-apply def prog thunks)
  (lazy-eval (cadddr def)
             prog
             (cadr def)
             thunks))

;; The expression evaluator.  Values are numbers, booleans, symbols, the
;; empty list, and lazy pairs (pairs of thunks).
(define (lazy-eval e prog names thunks)
  (cond ((number? e)
         e)
        ((symbol? e)
         (lazy-force (lazy-lookup e names thunks)))
        ((eq? (car e) 'quote)
         (cadr e))
        ((eq? (car e) 'if)
         (if (lazy-eval (cadr e) prog names thunks)
             (lazy-eval (caddr e) prog names thunks)
             (lazy-eval (cadddr e) prog names thunks)))
        ((eq? (car e) 'let)
         ;; (let x e1 e2): call-by-name binding of x to e1 in e2.
         (lazy-eval (cadddr e)
                    prog
                    (cons (cadr e) names)
                    (cons (lambda ()
                            (lazy-eval (caddr e) prog names thunks))
                          thunks)))
        ((eq? (car e) 'call)
         (lazy-apply (lazy-function (cadr e) prog)
                     prog
                     (lazy-delay-args (cddr e) prog names thunks)))
        ((eq? (car e) 'cons)
         (cons (lambda ()
                 (lazy-eval (cadr e) prog names thunks))
               (lambda ()
                 (lazy-eval (caddr e) prog names thunks))))
        ((eq? (car e) 'car)
         (lazy-force (car (lazy-eval (cadr e) prog names thunks))))
        ((eq? (car e) 'cdr)
         (lazy-force (cdr (lazy-eval (cadr e) prog names thunks))))
        (else
         (lazy-prim (car e)
                    (lazy-eval-args (cdr e) prog names thunks)))))

;; Build one thunk per argument expression (call-by-name).
(define (lazy-delay-args es prog names thunks)
  (if (null? es)
      '()
      (cons (lambda ()
              (lazy-eval (car es) prog names thunks))
            (lazy-delay-args (cdr es) prog names thunks))))

;; Evaluate arguments strictly, for the strict primitives.
(define (lazy-eval-args es prog names thunks)
  (if (null? es)
      '()
      (cons (lazy-eval (car es) prog names thunks)
            (lazy-eval-args (cdr es) prog names thunks))))

;; Force a thunk.
(define (lazy-force thunk)
  (thunk))

;; The strict primitives.
(define (lazy-prim op args)
  (cond ((eq? op '+)
         (+ (car args) (cadr args)))
        ((eq? op '-)
         (- (car args) (cadr args)))
        ((eq? op '*)
         (* (car args) (cadr args)))
        ((eq? op 'remainder)
         (remainder (car args) (cadr args)))
        ((eq? op '=)
         (= (car args) (cadr args)))
        ((eq? op '<)
         (< (car args) (cadr args)))
        ((eq? op '>)
         (> (car args) (cadr args)))
        ((eq? op '<=)
         (<= (car args) (cadr args)))
        ((eq? op 'zero?)
         (zero? (car args)))
        ((eq? op 'null?)
         (null? (car args)))
        ((eq? op 'pair?)
         (pair? (car args)))
        ((eq? op 'equal?)
         (equal? (car args) (cadr args)))
        ((eq? op 'not)
         (not (car args)))
        (else
         (error "lazy: unknown primitive"))))

;; Variable lookup: positional in the parameter list.
(define (lazy-lookup x names thunks)
  (if (eq? x (car names))
      (car thunks)
      (lazy-lookup x (cdr names) (cdr thunks))))

;; Function lookup by name.
(define (lazy-function f prog)
  (if (eq? f (caar prog))
      (car prog)
      (lazy-function f (cdr prog))))
"""

# The input program: the n-th prime via the sieve of Eratosthenes over the
# infinite stream of integers — laziness is essential.
# 26 lines, matching the paper's reported input size.
LAZY_PRIMES_PROGRAM = """
((main (n)
       = (call nth
               n
               (call sieve (call from 2))))
 (nth (n s)
      = (if (zero? n)
            (car s)
            (call nth
                  (- n 1)
                  (cdr s))))
 (from (k)
       = (cons k
               (call from (+ k 1))))
 (sieve (s)
        = (let p (car s)
               (cons p
                     (call sieve
                           (call drop-multiples
                                 p
                                 (cdr s))))))
 (drop-multiples (p s)
                 = (if (zero? (remainder (car s) p))
                       (call drop-multiples p (cdr s))
                       (cons (car s)
                             (call drop-multiples p (cdr s))))))
"""


def lazy_interpreter() -> Program:
    """The LAZY interpreter, parsed."""
    return parse_program(LAZY_SOURCE, goal=LAZY_GOAL)


def lazy_primes_program() -> Any:
    """The primes input program, as a run-time value."""
    return datum_to_value(read(LAZY_PRIMES_PROGRAM))


def run_lazy(program_value: Any, input_value: Any) -> Any:
    """Run a LAZY program directly (through the reference interpreter)."""
    from repro.interp import run_program

    return run_program(lazy_interpreter(), [program_value, input_value])
