"""The span tracer: where the pipeline's time goes, stage by stage.

The paper's evaluation (Figs. 6-8) is entirely about *per-stage* cost —
generation vs compilation, source vs object code, load vs generate — so
the reproduction needs the same visibility at run time, not only inside
the benchmark suite.  A :class:`Tracer` records **spans**: named,
nestable intervals with wall-clock start, duration, per-span attributes,
and the thread they ran on.  Spans nest through a thread-local stack, so
concurrent generating extensions trace cleanly into separate subtrees.

Two export formats:

* :meth:`Tracer.chrome_trace` — the Chrome trace-event JSON format
  (``chrome://tracing`` / Perfetto): complete events (``"ph": "X"``)
  with microsecond timestamps, one row per thread.
* :meth:`Tracer.report` — a plain-text tree, one line per span, indented
  by nesting, with durations in milliseconds; plus
  :meth:`Tracer.stage_totals` for aggregate per-stage numbers.

Tracing is *installed*, never assumed: the module-level default in
:mod:`repro.obs` is a no-op whose cost is one global load and a dead
``with`` block (see the disabled-overhead benchmark), so instrumented
code paths pay almost nothing when nobody is looking.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Any, TextIO


@dataclass(slots=True)
class SpanRecord:
    """One finished span."""

    name: str
    start: float                 # seconds since the tracer's epoch
    duration: float              # seconds
    tid: int                     # thread id
    depth: int                   # nesting depth on its thread
    attrs: dict[str, Any] = field(default_factory=dict)


class _LiveSpan:
    """A span in progress; a context manager handed out by the tracer."""

    __slots__ = ("tracer", "name", "attrs", "_t0", "_depth")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict[str, Any]):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_LiveSpan":
        stack = self.tracer._stack()
        self._depth = len(stack)
        stack.append(self)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        t1 = time.perf_counter()
        self.tracer._stack().pop()
        self.tracer._record(self, t1 - self._t0, self._depth)

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the span while it is running."""
        self.attrs.update(attrs)


class Tracer:
    """Collects spans; thread-safe; export as Chrome JSON or a text tree."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        self._epoch = time.perf_counter()
        self.records: list[SpanRecord] = []

    # -- recording ----------------------------------------------------------

    def span(self, name: str, **attrs: Any) -> _LiveSpan:
        """Open a span; use as ``with tracer.span("pe.bta"): ...``."""
        return _LiveSpan(self, name, attrs)

    def _stack(self) -> list[_LiveSpan]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, live: _LiveSpan, duration: float, depth: int) -> None:
        start = time.perf_counter() - self._epoch - duration
        record = SpanRecord(
            name=live.name,
            start=start,
            duration=duration,
            tid=threading.get_ident(),
            depth=depth,
            attrs=live.attrs,
        )
        with self._lock:
            self.records.append(record)

    # -- export -------------------------------------------------------------

    def chrome_trace(self) -> dict[str, Any]:
        """The trace as a Chrome trace-event JSON object.

        Complete events (``ph: "X"``) with microsecond ``ts``/``dur``,
        loadable in ``chrome://tracing`` or https://ui.perfetto.dev.
        """
        pid = os.getpid()
        with self._lock:
            records = list(self.records)
        events = [
            {
                "name": r.name,
                "ph": "X",
                "ts": round(r.start * 1e6, 3),
                "dur": round(r.duration * 1e6, 3),
                "pid": pid,
                "tid": r.tid,
                "cat": r.name.split(".", 1)[0],
                "args": {k: _jsonable(v) for k, v in r.attrs.items()},
            }
            for r in records
        ]
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_chrome_trace(self, fh: TextIO) -> None:
        json.dump(self.chrome_trace(), fh, indent=2)

    def report(self) -> str:
        """A plain-text tree of every span, with durations and attrs.

        Spans are grouped per thread and ordered by start time; the
        recorded nesting depth (from the per-thread ``with`` stack)
        indents children under the stage that ran them.
        """
        with self._lock:
            records = sorted(self.records, key=lambda r: (r.tid, r.start))
        lines = []
        last_tid = None
        for r in records:
            if r.tid != last_tid:
                last_tid = r.tid
                lines.append(f"thread {r.tid}:")
            attrs = ""
            if r.attrs:
                attrs = "  " + " ".join(
                    f"{k}={_short(v)}" for k, v in sorted(r.attrs.items())
                )
            lines.append(
                f"  {'  ' * r.depth}{r.name:<28}"
                f" {r.duration * 1e3:9.3f} ms{attrs}"
            )
        if not lines:
            return "(no spans recorded)"
        return "\n".join(lines)

    def stage_totals(self) -> dict[str, dict[str, float]]:
        """Aggregate time per span name: ``{name: {count, seconds}}``.

        Nested stages are counted in full (a ``vm.assemble`` span inside
        ``pe.specialize`` contributes to both), which is what per-stage
        cost accounting wants.
        """
        totals: dict[str, dict[str, float]] = {}
        with self._lock:
            records = list(self.records)
        for r in records:
            entry = totals.setdefault(r.name, {"count": 0, "seconds": 0.0})
            entry["count"] += 1
            entry["seconds"] += r.duration
        return dict(sorted(totals.items()))

    def __len__(self) -> int:
        with self._lock:
            return len(self.records)


def _jsonable(value: Any) -> Any:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def _short(value: Any) -> str:
    text = str(value)
    return text if len(text) <= 40 else text[:37] + "..."
