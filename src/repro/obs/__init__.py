"""Observability for the RTCG pipeline: spans, metrics, and profiling.

Every stage of the pipeline — parse, BTA, congruence lint, safety
analysis, specialize/cogen, assemble, bytecode-verify, residual-cache
L1, image-store L2, and the VM's profiled dispatch — is instrumented
through this module's *module-level* facade:

    from repro import obs

    with obs.span("pe.bta", goal="power"):
        ...
    obs.count("cache.l1.hit")

The facade is a **no-op by default**: until a tracer/registry is
installed, :func:`span` returns a shared do-nothing context manager and
:func:`count`/:func:`observe` return after one global load and a
``None`` test.  The disabled path is benchmarked (< 3% of a fig6 cold
generation; see ``benchmarks/test_obs_overhead.py``), which is why the
instrumentation can stay in the production code paths unconditionally.

Enable collection for a region with :func:`tracing`::

    with obs.tracing() as (tracer, metrics):
        gen = make_generating_extension(src, "SD")
        gen.to_object_code([static])
    print(tracer.report())            # text tree, one line per span
    json.dump(tracer.chrome_trace(), fh)   # chrome://tracing / Perfetto
    print(metrics.report())

Installation is process-global (all threads trace into the installed
tracer — concurrent generation is precisely what needs watching) and
reentrant: nested :func:`tracing` blocks restore the outer collectors on
exit.

The CLI exposes this as ``python -m repro trace`` (pipeline spans) and
``python -m repro profile`` (VM opcode/template execution counts via
:mod:`repro.vm.profile`).
"""

from __future__ import annotations

import functools
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator, TypeVar

from repro.obs.metrics import Counter, Histogram, MetricsRegistry
from repro.obs.trace import SpanRecord, Tracer

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "SpanRecord",
    "Tracer",
    "count",
    "current_metrics",
    "current_tracer",
    "enabled",
    "install",
    "observe",
    "span",
    "time_histogram",
    "traced",
    "tracing",
    "uninstall",
]

_F = TypeVar("_F", bound=Callable[..., Any])

# The installed collectors.  ``None`` means disabled — the common case —
# and every facade function tests exactly that before doing any work.
_tracer: Tracer | None = None
_metrics: MetricsRegistry | None = None
_install_lock = threading.Lock()


class _NoopSpan:
    """The shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        pass

    def set(self, **attrs: Any) -> None:
        pass


_NOOP_SPAN = _NoopSpan()


def span(name: str, **attrs: Any):
    """A span context manager, or the shared no-op when disabled."""
    tracer = _tracer
    if tracer is None:
        return _NOOP_SPAN
    return tracer.span(name, **attrs)


def count(name: str, n: int = 1) -> None:
    """Increment a counter, if a metrics registry is installed."""
    metrics = _metrics
    if metrics is not None:
        metrics.count(name, n)


def observe(name: str, value: float) -> None:
    """Record a histogram observation, if a registry is installed."""
    metrics = _metrics
    if metrics is not None:
        metrics.observe(name, value)


def time_histogram(name: str):
    """A context manager that observes its own duration into ``name``.

    No-op (without even reading the clock) while metrics are disabled.
    """
    if _metrics is None:
        return _NOOP_SPAN
    return _TimedBlock(name)


class _TimedBlock:
    __slots__ = ("name", "_t0")

    def __init__(self, name: str):
        self.name = name

    def __enter__(self) -> "_TimedBlock":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> None:
        observe(self.name, time.perf_counter() - self._t0)


def enabled() -> bool:
    """Is any collector installed?"""
    return _tracer is not None or _metrics is not None


def current_tracer() -> Tracer | None:
    return _tracer


def current_metrics() -> MetricsRegistry | None:
    return _metrics


def traced(name: str, **attrs: Any) -> Callable[[_F], _F]:
    """Decorator: run the function under a span when tracing is enabled.

    The disabled cost is one global load and a ``None`` test on top of
    the call — cheap enough for every pipeline stage (never used inside
    the VM dispatch loop; the profiler has its own counting loop).
    """

    def decorate(fn: _F) -> _F:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            tracer = _tracer
            if tracer is None:
                return fn(*args, **kwargs)
            with tracer.span(name, **attrs):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate


def install(
    tracer: Tracer | None = None, metrics: MetricsRegistry | None = None
) -> tuple[Tracer, MetricsRegistry]:
    """Install collectors process-wide; returns the installed pair."""
    global _tracer, _metrics
    with _install_lock:
        _tracer = tracer if tracer is not None else Tracer()
        _metrics = metrics if metrics is not None else MetricsRegistry()
        return _tracer, _metrics


def uninstall() -> None:
    """Return to the disabled (no-op) state."""
    global _tracer, _metrics
    with _install_lock:
        _tracer = None
        _metrics = None


@contextmanager
def tracing(
    tracer: Tracer | None = None, metrics: MetricsRegistry | None = None
) -> Iterator[tuple[Tracer, MetricsRegistry]]:
    """Collect spans and metrics for the duration of the block.

    Restores whatever was installed before (usually: nothing), so nested
    ``tracing`` blocks and test suites compose.
    """
    global _tracer, _metrics
    with _install_lock:
        previous = (_tracer, _metrics)
    installed = install(tracer, metrics)
    try:
        yield installed
    finally:
        with _install_lock:
            _tracer, _metrics = previous
