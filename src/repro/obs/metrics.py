"""The metrics registry: counters and histograms for pipeline events.

Spans (:mod:`repro.obs.trace`) answer *where did the time go*; metrics
answer *how often did things happen and how were they distributed* —
cache hits vs misses, single-flight waits, image-store probes, verifier
runs, residual sizes.  A :class:`MetricsRegistry` holds named
:class:`Counter` and :class:`Histogram` instruments, created on first
use, all guarded by one lock (every instrumented event is far coarser
than a VM instruction, so contention is irrelevant next to the work the
event represents).

Like tracing, metrics are installed explicitly; the module-level default
in :mod:`repro.obs` drops every event on the floor for the price of a
global load and a ``None`` test.
"""

from __future__ import annotations

import threading
from typing import Any


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0


class Histogram:
    """A streaming summary of observed values (count/sum/min/max).

    Full percentile sketches are overkill here — the interesting
    distributions (generation times, residual sizes) have a handful of
    modes that min/mean/max already separate; the raw per-event values
    live in the trace when more is needed.
    """

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def summary(self) -> dict[str, float]:
        if self.count == 0:
            return {"count": 0, "sum": 0.0, "min": 0.0, "mean": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "mean": self.total / self.count,
            "max": self.max,
        }


class MetricsRegistry:
    """Named counters and histograms, created on first use."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    def count(self, name: str, n: int = 1) -> None:
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter(name)
            counter.value += n

    def observe(self, name: str, value: float) -> None:
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = Histogram(name)
            hist.observe(value)

    def counter_value(self, name: str) -> int:
        with self._lock:
            counter = self._counters.get(name)
            return counter.value if counter is not None else 0

    def snapshot(self) -> dict[str, Any]:
        """All instruments as plain data, sorted by name."""
        with self._lock:
            return {
                "counters": {
                    name: c.value
                    for name, c in sorted(self._counters.items())
                },
                "histograms": {
                    name: h.summary()
                    for name, h in sorted(self._histograms.items())
                },
            }

    def report(self) -> str:
        """A plain-text listing of every instrument."""
        snap = self.snapshot()
        lines = []
        for name, value in snap["counters"].items():
            lines.append(f"  {name:<40} {value}")
        for name, summary in snap["histograms"].items():
            lines.append(
                f"  {name:<40} count={summary['count']}"
                f" mean={summary['mean']:.6g} min={summary['min']:.6g}"
                f" max={summary['max']:.6g}"
            )
        if not lines:
            return "(no metrics recorded)"
        return "\n".join(lines)
