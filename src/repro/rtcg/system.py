"""Top-level API of the composed partial-evaluation / compilation system."""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from typing import TYPE_CHECKING

from repro.compiler.fusion import ObjectCodeBackend
from repro.lang.ast import Program

if TYPE_CHECKING:  # pragma: no cover
    from repro.pe.cogen import CompiledGeneratingExtension
from repro.lang.parser import parse_program
from repro.pe.backend import ResidualProgram, SourceBackend
from repro.pe.bta import BTAResult, analyze
from repro.pe.specializer import Specializer


class GeneratingExtension:
    """A generating extension p-gen for a program p (§3).

    Built once from a program and a binding-time signature (the expensive
    part: front end + binding-time analysis), then applied any number of
    times to static inputs, producing residual programs — as source
    (``to_source``) or directly as executable object code
    (``to_object_code``), the paper's run-time code generation.
    """

    def __init__(
        self,
        program: Program | str,
        signature: str,
        goal: str | None = None,
        memo_hints: Iterable[str] = (),
        unfold_hints: Iterable[str] = (),
        check_congruence: bool = True,
    ):
        if isinstance(program, str):
            program = parse_program(program, goal=goal)
        self.program = program
        self.signature = signature
        self.bta: BTAResult = analyze(
            program, signature, memo_hints=memo_hints, unfold_hints=unfold_hints
        )
        if check_congruence:
            # Re-check the analysis output with the independent linter: a
            # BTA bug surfaces here as an AnnotationViolation instead of a
            # mis-specialized program.
            from repro.pe.check import verify_annotated

            verify_annotated(self.bta.annotated)

    def compiled(self) -> "CompiledGeneratingExtension":
        """Compile this generating extension (the cogen path, [59]).

        The returned object maps static input to residual code without
        re-traversing the annotated program; building it corresponds to
        Fig. 8's "Load" column (loading/compiling the generator).
        """
        from repro.pe.cogen import compile_generating_extension

        return compile_generating_extension(self.bta.annotated)

    def to_source(
        self, static_args: Sequence[Any], dif_strategy: str = "duplicate"
    ) -> ResidualProgram:
        """Generate a residual *source* program (classical PE)."""
        return Specializer(
            self.bta.annotated, SourceBackend(), dif_strategy=dif_strategy
        ).run(static_args)

    def to_object_code(
        self,
        static_args: Sequence[Any],
        dif_strategy: str = "duplicate",
        verify: bool = True,
    ) -> ResidualProgram:
        """Generate residual *object code* directly (the fused system).

        ``verify`` bytecode-verifies every generated template at
        generation time (:mod:`repro.vm.verify`).
        """
        return Specializer(
            self.bta.annotated,
            ObjectCodeBackend(verify=verify),
            dif_strategy=dif_strategy,
        ).run(static_args)

    def __call__(self, static_args: Sequence[Any]) -> ResidualProgram:
        return self.to_object_code(static_args)


def make_generating_extension(
    program: Program | str,
    signature: str,
    goal: str | None = None,
    memo_hints: Iterable[str] = (),
    unfold_hints: Iterable[str] = (),
) -> GeneratingExtension:
    """Build a generating extension (BTA happens here, once)."""
    return GeneratingExtension(
        program, signature, goal=goal, memo_hints=memo_hints,
        unfold_hints=unfold_hints,
    )


def specialize_to_source(
    program: Program | str,
    signature: str,
    static_args: Sequence[Any],
    goal: str | None = None,
    **kwargs: Any,
) -> ResidualProgram:
    """One-shot: residual source program for the given static input."""
    return make_generating_extension(
        program, signature, goal=goal, **kwargs
    ).to_source(static_args)


def specialize_to_object_code(
    program: Program | str,
    signature: str,
    static_args: Sequence[Any],
    goal: str | None = None,
    **kwargs: Any,
) -> ResidualProgram:
    """One-shot: executable object code for the given static input."""
    return make_generating_extension(
        program, signature, goal=goal, **kwargs
    ).to_object_code(static_args)


def run_specialized(
    program: Program | str,
    signature: str,
    static_args: Sequence[Any],
    dynamic_args: Sequence[Any],
    goal: str | None = None,
    **kwargs: Any,
) -> Any:
    """Classic RTCG: generate code for the static input and run it."""
    residual = specialize_to_object_code(
        program, signature, static_args, goal=goal, **kwargs
    )
    return residual.run(dynamic_args)
