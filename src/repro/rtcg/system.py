"""Top-level API of the composed partial-evaluation / compilation system."""

from __future__ import annotations

import copy
import hashlib
import threading
import time
from typing import Any, Iterable, Sequence

from typing import TYPE_CHECKING

from repro import obs

from repro.compiler.fusion import ObjectCodeBackend
from repro.lang.ast import Program
from repro.lang.gensym import Gensym

if TYPE_CHECKING:  # pragma: no cover
    from repro.image.remote import TieredStore
    from repro.image.store import ImageStore
    from repro.pe.cogen import CompiledGeneratingExtension
from repro.lang.parser import parse_program
from repro.pe.backend import ResidualProgram, SourceBackend
from repro.pe.bta import BTAResult, analyze as bta_analyze
from repro.pe.errors import BudgetExceeded
from repro.pe.residual_cache import ResidualCache
from repro.pe.specializer import Specializer
from repro.pe.values import freeze_static


def bta_cache_key(bta: str, max_variants: int = 8) -> str:
    """The BTA-discipline cache discriminator.

    Shared by the residual cache, :meth:`GeneratingExtension.peek`, and
    :func:`program_digest`: residual programs specialized under
    different divisions (mono vs. poly, or poly under different variant
    caps) must never share a cache entry or an on-disk image.
    """
    return "mono" if bta == "mono" else f"poly{max_variants}"


def program_digest(
    program: Program,
    signature: str,
    memo_hints: Iterable[str] = (),
    unfold_hints: Iterable[str] = (),
    bta: str = "poly",
    max_variants: int = 8,
) -> str:
    """A stable cross-process identity for a specialization problem.

    Hashes the unparsed program text together with the goal, the
    binding-time signature, the analysis hints, and the BTA discipline
    (mono vs. poly and the variant cap — the annotation, and therefore
    the residual code, depends on it; a mono-keyed image must never
    satisfy a poly request, hence the v2 prefix): everything that
    determines what a generating extension will emit for given statics.
    On-disk image keys must include this — the in-memory residual cache
    is per-extension, so the program is implicit there, but a store
    shared between processes is not.
    """
    from repro.lang.unparse import unparse_program
    from repro.sexp.writer import write

    h = hashlib.sha256()
    h.update(b"repro-program-v2\x00")
    h.update(program.goal.name.encode("utf-8"))
    h.update(b"\x00")
    h.update(signature.encode("utf-8"))
    h.update(b"\x00")
    h.update(bta_cache_key(bta, max_variants).encode("utf-8"))
    h.update(b"\x00")
    for hint in sorted(memo_hints):
        h.update(b"m:" + hint.encode("utf-8") + b"\x00")
    for hint in sorted(unfold_hints):
        h.update(b"u:" + hint.encode("utf-8") + b"\x00")
    for d in unparse_program(program):
        h.update(write(d).encode("utf-8"))
        h.update(b"\n")
    return h.hexdigest()


def object_kind(verify: bool = True, optimize: bool = True) -> str:
    """The backend-kind cache discriminator for object-code generation.

    Must stay in lockstep with :meth:`GeneratingExtension.to_object_code`:
    residual programs generated with different verify/optimize knobs
    never share a cache entry, and external observers (the service
    layer's ``probe``) need the same key to inspect the cache.
    """
    kind = "object" if verify else "object-unverified"
    if not optimize:
        kind += "-noopt"
    return kind


class _TierState:
    """Shared promotion state for one residual cache key.

    Every per-call view of the same residual program routes its runs
    here, so the run counter crosses the threshold regardless of which
    view the caller holds.  ``machine`` is the promoted
    superinstruction machine (``None`` while cold), ``failed`` latches
    a validation failure or an empty plan — the residual then stays on
    the base machine permanently.
    """

    __slots__ = ("lock", "runs", "machine", "failed", "promoting", "plan")

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.runs = 0
        self.machine: Any = None
        self.failed = False
        self.promoting = False
        self.plan: Any = None


class _TierHook:
    """The per-residual tiering delegate attached to ``ResidualProgram.tier``.

    Interpret cold, promote hot: below the threshold (and while another
    thread is promoting, or after a failed promotion) runs go to the
    base machine; the run that crosses the threshold re-specializes the
    residual through the superinstruction pass (profile → plan → fuse →
    translation validation → differential check) and installs the fused
    machine for every subsequent run.
    """

    __slots__ = ("_ext", "_state")

    def __init__(self, ext: "GeneratingExtension", state: _TierState):
        self._ext = ext
        self._state = state

    def run(self, residual: ResidualProgram, args: Sequence[Any]) -> Any:
        state = self._state
        promote = False
        with state.lock:
            state.runs += 1
            machine = state.machine
            if (
                machine is None
                and not state.failed
                and not state.promoting
                and state.runs >= self._ext.tier_threshold
            ):
                state.promoting = True
                promote = True
        if machine is not None:
            obs.count("rtcg.tier.hot_run")
            return machine.call_named(residual.goal, list(args))
        if promote:
            return self._ext._tier_promote(state, residual, args)
        return residual.machine.call_named(residual.goal, list(args))


class GeneratingExtension:
    """A generating extension p-gen for a program p (§3).

    Built once from a program and a binding-time signature (the expensive
    part: front end + binding-time analysis), then applied any number of
    times to static inputs, producing residual programs — as source
    (``to_source``) or directly as executable object code
    (``to_object_code``), the paper's run-time code generation.

    Applications are memoized in a bounded, thread-safe LRU **residual
    cache** keyed by ``(frozen static args, dif strategy, backend
    kind)``: re-applying the extension to structurally equal static
    input returns the already-generated residual program instead of
    re-running the specializer (the paper's "built once ... applied any
    number of times", with the application side amortized too).
    ``cache_size=0`` disables the cache.  The extension is safe to share
    between threads: the cache is single-flight (concurrent misses on
    one key generate once), every generation run gets private gensym
    state, so repeated generation for one static input is byte-identical.

    ``store_dir`` adds an **L2 tier** beneath the in-memory cache: a
    content-addressed on-disk image store (:mod:`repro.image.store`).  A
    miss in the memory cache probes the store before running the
    specializer; a specialization writes its image through.  The store
    outlives the process, so a fresh extension over the same program and
    signature warm-starts from disk without specializing at all.  Every
    image loaded from disk is untrusted and re-checked by the bytecode
    verifier unless ``verify_on_load=False`` (or the application itself
    opted out with ``verify=False``).  ``store_max_bytes`` bounds the
    store; eviction is LRU.

    ``remote_store`` (a ``"host:port"`` endpoint of a
    ``python -m repro image serve-store`` object server, or a
    pre-built :class:`~repro.image.remote.RemoteStoreClient`) adds an
    **L3 tier** behind the local store: an L2 miss reads through to the
    remote (replicating hits back down), and writes are pushed behind
    asynchronously, so a fleet of workers shares one warm cache.  Remote
    images are exactly as untrusted as local ones — verify-on-load is
    the trust boundary for both.  With ``store_dir=None`` the extension
    runs remote-only.  Call :meth:`flush_store` before process exit to
    drain the write-behind queue.
    """

    def __init__(
        self,
        program: Program | str,
        signature: str,
        goal: str | None = None,
        memo_hints: Iterable[str] = (),
        unfold_hints: Iterable[str] = (),
        check_congruence: bool = True,
        cache_size: int = 128,
        store_dir: Any = None,
        store_max_bytes: int | None = None,
        remote_store: Any = None,
        verify_on_load: bool = True,
        analyze: str = "warn",
        max_unfold_depth: int = 5_000,
        max_residual_size: int = 1_000_000,
        tier_threshold: int | None = None,
        tier_max_fused: int = 8,
        bta: str = "poly",
        max_variants: int = 8,
    ):
        if analyze not in ("warn", "forbid", "off"):
            raise ValueError(f"unknown analyze mode {analyze!r}")
        if bta not in ("mono", "poly"):
            raise ValueError(f"unknown bta mode {bta!r} (use 'mono' or 'poly')")
        if tier_threshold is not None and tier_threshold < 1:
            raise ValueError(
                f"tier_threshold must be >= 1, got {tier_threshold}"
            )
        if isinstance(program, str):
            program = parse_program(program, goal=goal)
        self.program = program
        self.signature = signature
        self.bta_mode = bta
        self.max_variants = max_variants
        # The BTA-discipline discriminator threaded into every residual
        # cache key and on-disk image key (with program_digest): a
        # mono-keyed entry must never satisfy a poly request.
        self._bta_key = bta_cache_key(bta, max_variants)
        # Per-extension stage timing, always on (one perf_counter pair per
        # pipeline stage — noise next to the stages themselves); exposed
        # through ``cache_stats()["stages"]`` and the fig6/fig8 tables.
        self._stage_lock = threading.Lock()
        self._stage_seconds: dict[str, dict[str, float]] = {}
        t0 = time.perf_counter()
        self.bta: BTAResult = bta_analyze(
            program, signature, memo_hints=memo_hints,
            unfold_hints=unfold_hints, bta=bta, max_variants=max_variants,
        )
        self._add_stage("bta", time.perf_counter() - t0)
        if check_congruence:
            # Re-check the analysis output with the independent linter: a
            # BTA bug surfaces here as an AnnotationViolation instead of a
            # mis-specialized program (variant-aware: violations name the
            # function variant and its originating call sites).
            from repro.pe.check import verify_annotated

            t0 = time.perf_counter()
            verify_annotated(self.bta.annotated, self.bta.variants)
            self._add_stage("congruence", time.perf_counter() - t0)
        # Specialization-safety analysis, up front: findings either warn
        # (the runtime budgets below still backstop actual divergence) or
        # forbid (refuse the program before any specialization runs).
        self.analysis_report = None
        if analyze != "off":
            from repro.analysis import analyze_bta
            from repro.analysis.report import UnsafeProgramError

            t0 = time.perf_counter()
            self.analysis_report = analyze_bta(self.bta)
            self._add_stage("safety_analysis", time.perf_counter() - t0)
            if not self.analysis_report.safe:
                if analyze == "forbid":
                    raise UnsafeProgramError(self.analysis_report)
                import warnings

                warnings.warn(
                    "specialization-safety analysis reported findings:\n"
                    + str(self.analysis_report),
                    stacklevel=2,
                )
        self.max_unfold_depth = max_unfold_depth
        self.max_residual_size = max_residual_size
        self._cache_size = cache_size
        self.cache = ResidualCache(cache_size)
        self.verify_on_load = verify_on_load
        self.store: "ImageStore | TieredStore | None" = None
        self._program_digest: str | None = None
        if store_dir is not None or remote_store is not None:
            local = None
            if store_dir is not None:
                from repro.image.store import ImageStore

                local = ImageStore(store_dir, max_bytes=store_max_bytes)
            if remote_store is not None:
                from repro.image.remote import (
                    RemoteStoreClient,
                    TieredStore,
                    parse_endpoint,
                )

                if isinstance(remote_store, RemoteStoreClient):
                    client = remote_store
                else:
                    host, port = parse_endpoint(remote_store)
                    client = RemoteStoreClient(host, port)
                self.store = TieredStore(local, client)
                obs.count("rtcg.remote_store_attached")
            else:
                self.store = local
            self._program_digest = program_digest(
                program, signature, memo_hints, unfold_hints,
                bta=bta, max_variants=max_variants,
            )
        self._spec_lock = threading.Lock()
        self._specializer_runs = 0
        self._budget_trips = 0
        # Tiering (interpret cold, promote hot through the
        # superinstruction pass): per-cache-key promotion state, shared
        # by every per-call view of the same residual program.
        self.tier_threshold = tier_threshold
        self.tier_max_fused = tier_max_fused
        self._tier_lock = threading.Lock()
        self._tier_states: dict[Any, _TierState] = {}
        self._tier_promotions = 0
        self._tier_failures = 0

    def compiled(self) -> "CompiledGeneratingExtension":
        """Compile this generating extension (the cogen path, [59]).

        The returned object maps static input to residual code without
        re-traversing the annotated program; building it corresponds to
        Fig. 8's "Load" column (loading/compiling the generator).
        """
        from repro.pe.cogen import compile_generating_extension

        return compile_generating_extension(
            self.bta.annotated, cache_size=self._cache_size
        )

    # -- generation -------------------------------------------------------------

    def _persist_key(self, frozen: tuple, dif_strategy: str, kind: str):
        """The on-disk index key, or None when the statics embed
        process-local identity and cannot name a cross-process image."""
        if self.store is None:
            return None
        from repro.image.store import UnpersistableKey, store_key

        try:
            return store_key(
                self._program_digest or "", frozen, dif_strategy, kind
            )
        except UnpersistableKey:
            return None

    def _add_stage(self, name: str, seconds: float) -> None:
        with self._stage_lock:
            entry = self._stage_seconds.get(name)
            if entry is None:
                entry = self._stage_seconds[name] = {
                    "count": 0, "seconds": 0.0
                }
            entry["count"] += 1
            entry["seconds"] += seconds

    def _tier_state_for(self, key: Any) -> _TierState:
        with self._tier_lock:
            state = self._tier_states.get(key)
            if state is None:
                state = self._tier_states[key] = _TierState()
            return state

    def _tier_promote(
        self, state: _TierState, residual: ResidualProgram, args: Sequence[Any]
    ) -> Any:
        """Re-specialize a hot residual through the superinstruction pass.

        The promotion run doubles as the caller's run: it executes on
        the counting loop (collecting the pair/triple profile) and its
        value is returned.  A fused machine is installed only after the
        full trust chain passes — per-template translation validation
        (round-trip lowering + base-ISA re-verification, inside
        ``fuse_machine``) and a differential execution of the fused
        twin against the profiled baseline value.  Any validation
        failure (or an empty plan) latches ``state.failed``: the
        residual stays on the base machine for good, never half-fused.
        """
        from repro.lang.prims import write_value
        from repro.runtime.errors import SchemeError
        from repro.vm.profile import VMProfile, call_named_profiled
        from repro.vm.superinst import (
            FusionValidationError,
            fuse_machine,
            select_superinstructions,
        )

        goal = residual.goal
        base_machine = residual.machine
        profile = VMProfile()
        try:
            # The semantic run: user errors propagate to the caller
            # exactly as a base-machine run would raise them.
            value = call_named_profiled(
                base_machine, goal, list(args), profile
            )
        except BaseException:
            with state.lock:
                state.promoting = False
            raise
        t0 = time.perf_counter()
        try:
            with obs.span("rtcg.tier_promote", goal=str(goal)) as sp:
                plan = select_superinstructions(
                    profile, max_fused=self.tier_max_fused
                )
                if not plan:
                    with state.lock:
                        state.failed = True
                        state.promoting = False
                    obs.count("rtcg.tier.no_candidates")
                    return value
                try:
                    fused_sites: dict[str, int] = {}
                    machine = fuse_machine(
                        base_machine, plan, validate=True, stats=fused_sites
                    )
                    check = machine.call_named(goal, list(args))
                    if write_value(check) != write_value(value):
                        raise FusionValidationError(
                            f"{goal}: fused twin disagrees with the"
                            f" baseline on the promotion arguments"
                        )
                except (FusionValidationError, SchemeError):
                    # Trust anchor: any doubt and the residual stays on
                    # the base-ISA machine, permanently.
                    with state.lock:
                        state.failed = True
                        state.promoting = False
                    with self._spec_lock:
                        self._tier_failures += 1
                    obs.count("rtcg.tier.validation_failure")
                    return value
                with state.lock:
                    state.machine = machine
                    state.plan = plan
                    state.promoting = False
                with self._spec_lock:
                    self._tier_promotions += 1
                obs.count("rtcg.tier.promotion")
                sp.set(
                    fused=len(plan.fused),
                    sites=sum(fused_sites.values()),
                )
                return value
        finally:
            self._add_stage("tier_promote", time.perf_counter() - t0)
            with state.lock:
                state.promoting = False

    def _generate(
        self,
        static_args: Sequence[Any],
        dif_strategy: str,
        make_backend,
        kind: str,
        use_cache: bool,
    ) -> ResidualProgram:
        store = self.store
        frozen = None
        persist_key = None
        if (
            store is not None
            or (use_cache and self.cache.maxsize > 0)
            or self.tier_threshold is not None
        ):
            frozen = tuple(freeze_static(a) for a in static_args)
        if store is not None and frozen is not None:
            persist_key = self._persist_key(frozen, dif_strategy, kind)

        def produce() -> ResidualProgram:
            # Everything written to ``residual.stats`` here happens
            # *before* the program is published (cached / returned), so it
            # is a production fact shared by all future callers — never a
            # per-call fact.  Per-call facts go through the
            # ``with_call_stats`` view below; once a ResidualProgram is in
            # the cache it is immutable (see DESIGN.md §5f).
            #
            # L2: the on-disk image store.  A hit deserializes (and, by
            # default, re-verifies) persisted object code instead of
            # specializing; verification is skipped only when the
            # application itself opted out (kind "object-unverified").
            if store is not None and persist_key is not None:
                t0 = time.perf_counter()
                loaded = store.get(
                    persist_key,
                    verify=self.verify_on_load
                    and not kind.startswith("object-unverified"),
                )
                self._add_stage("store_probe", time.perf_counter() - t0)
                if loaded is not None:
                    loaded.stats["disk_hit"] = True
                    return loaded
            # A private name supply per run keeps residual naming
            # deterministic (byte-identical regeneration) and isolates
            # concurrent runs from each other.
            t0 = time.perf_counter()
            backend = make_backend()
            try:
                residual = Specializer(
                    self.bta.annotated,
                    backend,
                    dif_strategy=dif_strategy,
                    name_gensym=Gensym("f"),
                    max_unfold_depth=self.max_unfold_depth,
                    max_residual_size=self.max_residual_size,
                ).run(static_args)
            except BudgetExceeded:
                with self._spec_lock:
                    self._budget_trips += 1
                raise
            finally:
                # The bytecode optimizer runs inside backend.define, so
                # its wall-clock is carved out of the specialize stage —
                # stage totals stay exhaustive without double counting.
                elapsed = time.perf_counter() - t0
                opt_seconds = getattr(backend, "optimize_seconds", 0.0)
                if opt_seconds:
                    self._add_stage("optimize", opt_seconds)
                self._add_stage("specialize", elapsed - opt_seconds)
            with self._spec_lock:
                self._specializer_runs += 1
            if store is not None and persist_key is not None:
                t0 = time.perf_counter()
                digest = store.put(persist_key, residual)
                self._add_stage("store_put", time.perf_counter() - t0)
                if digest is not None:  # write-through succeeded
                    residual.stats["image_digest"] = digest
                    residual.stats["image_key"] = persist_key.digest
            return residual

        with obs.span(
            "rtcg.generate", kind=kind, goal=str(self.program.goal)
        ) as sp:
            if not use_cache or self.cache.maxsize <= 0:
                result = produce()
            else:
                key = (frozen, dif_strategy, kind, self._bta_key)
                cached, hit = self.cache.get_or_generate(key, produce)
                sp.set(cache_hit=hit)
                # The cached object is shared between every caller that
                # hits this key (and every waiter of its single flight),
                # so the per-call facts must not be written into it:
                # return a shallow view owning its own stats dict instead.
                result = cached.with_call_stats(
                    cache_hit=hit, cache=self.cache.stats()
                )
            if (
                self.tier_threshold is not None
                and frozen is not None
                and kind.startswith("object")
                and result.machine is not None
            ):
                # ``result`` is caller-owned on both paths (a fresh
                # produce() object or a with_call_stats view), so the
                # delegate attaches without mutating the shared cached
                # object; the promotion *state* is keyed per cache key
                # inside the extension, so every view of one residual
                # shares the same run counter and promoted machine.
                state = self._tier_state_for(
                    (frozen, dif_strategy, kind, self._bta_key)
                )
                result.tier = _TierHook(self, state)
            return result

    def to_source(
        self,
        static_args: Sequence[Any],
        dif_strategy: str = "duplicate",
        use_cache: bool = True,
    ) -> ResidualProgram:
        """Generate a residual *source* program (classical PE)."""
        return self._generate(
            static_args, dif_strategy, SourceBackend, "source", use_cache
        )

    def to_object_code(
        self,
        static_args: Sequence[Any],
        dif_strategy: str = "duplicate",
        verify: bool = True,
        use_cache: bool = True,
        optimize: bool = True,
    ) -> ResidualProgram:
        """Generate residual *object code* directly (the fused system).

        ``verify`` bytecode-verifies every generated template at
        generation time (:mod:`repro.vm.verify`); ``optimize`` then runs
        the dataflow bytecode optimizer (:mod:`repro.vm.opt`) over each
        template, so the L1 cache and the on-disk store hold optimized
        code.
        """
        kind = object_kind(verify, optimize)
        return self._generate(
            static_args,
            dif_strategy,
            lambda: ObjectCodeBackend(verify=verify, optimize=optimize),
            kind,
            use_cache,
        )

    def __call__(
        self,
        static_args: Sequence[Any],
        dif_strategy: str = "duplicate",
        verify: bool = True,
        optimize: bool = True,
    ) -> ResidualProgram:
        return self.to_object_code(
            static_args, dif_strategy=dif_strategy, verify=verify,
            optimize=optimize,
        )

    # -- cache introspection -----------------------------------------------------

    def peek(
        self,
        static_args: Sequence[Any],
        dif_strategy: str = "duplicate",
        kind: str = "object",
    ) -> ResidualProgram | None:
        """A read-only L1 probe: the cached residual program, or ``None``.

        Unlike generation (and unlike :meth:`ResidualCache.lookup`),
        peeking neither promotes the entry's LRU recency nor counts a
        hit, so inspection/monitoring paths — the service layer's
        ``probe`` request, dashboards polling warmth — cannot perturb
        eviction order.  ``kind`` is the backend discriminator
        (:func:`object_kind`, or ``"source"``).
        """
        if self.cache.maxsize <= 0:
            return None
        frozen = tuple(freeze_static(a) for a in static_args)
        return self.cache.peek((frozen, dif_strategy, kind, self._bta_key))

    def cache_stats(self) -> dict[str, Any]:
        """Hit/miss/eviction/generation-time counters of the cache.

        Includes ``specializer_runs`` — how many times this extension
        actually ran the specializer — and, when an image store is
        attached, its counters under ``"store"``.  A warm start shows
        ``specializer_runs == 0`` with ``store.hits > 0``.

        The returned dict is a **deep-copied snapshot**: every nested
        dict (``stages``, ``store``, ``tiering``) is detached from the
        extension's live state, so a concurrent reader — the
        specialization server snapshots stats while worker threads are
        mid-request — never observes a dict mutated under it.
        """
        stats = self.cache.stats()
        with self._spec_lock:
            stats["specializer_runs"] = self._specializer_runs
            stats["budget_trips"] = self._budget_trips
        with self._stage_lock:
            stats["stages"] = {
                name: dict(entry)
                for name, entry in sorted(self._stage_seconds.items())
            }
        if self.store is not None:
            stats["store"] = self.store.stats()
        if self.tier_threshold is not None:
            with self._tier_lock:
                states = list(self._tier_states.values())
            runs = promoted = failed = 0
            for st in states:
                with st.lock:
                    runs += st.runs
                    if st.machine is not None:
                        promoted += 1
                    if st.failed:
                        failed += 1
            with self._spec_lock:
                promotions = self._tier_promotions
                failures = self._tier_failures
            stats["tiering"] = {
                "threshold": self.tier_threshold,
                "tracked": len(states),
                "runs": runs,
                "promoted": promoted,
                "failed": failed,
                "promotions": promotions,
                "validation_failures": failures,
            }
        # Every sub-dict above is already a fresh copy taken under its
        # owning lock; the deepcopy is the guarantee that stays true as
        # the structure grows (snapshot-safety is part of the contract).
        return copy.deepcopy(stats)

    def cache_clear(self) -> None:
        self.cache.clear()

    def flush_store(self, timeout: float = 10.0) -> bool:
        """Drain the tiered store's write-behind queue so every image
        this process generated reaches the shared remote tier.  A
        no-op (``True``) without a remote store."""
        flush = getattr(self.store, "flush", None)
        if flush is None:
            return True
        return bool(flush(timeout=timeout))

    def close_store(self, flush: bool = True, timeout: float = 5.0) -> None:
        """Shut down the tiered store's worker thread and connection
        (optionally flushing first).  A no-op without a remote store."""
        close = getattr(self.store, "close", None)
        if close is not None:
            close(flush=flush, timeout=timeout)


def make_generating_extension(
    program: Program | str,
    signature: str,
    goal: str | None = None,
    memo_hints: Iterable[str] = (),
    unfold_hints: Iterable[str] = (),
    cache_size: int = 128,
    store_dir: Any = None,
    store_max_bytes: int | None = None,
    remote_store: Any = None,
    verify_on_load: bool = True,
    analyze: str = "warn",
    max_unfold_depth: int = 5_000,
    max_residual_size: int = 1_000_000,
    tier_threshold: int | None = None,
    tier_max_fused: int = 8,
    bta: str = "poly",
    max_variants: int = 8,
) -> GeneratingExtension:
    """Build a generating extension (BTA happens here, once)."""
    return GeneratingExtension(
        program, signature, goal=goal, memo_hints=memo_hints,
        unfold_hints=unfold_hints, cache_size=cache_size,
        store_dir=store_dir, store_max_bytes=store_max_bytes,
        remote_store=remote_store,
        verify_on_load=verify_on_load, analyze=analyze,
        max_unfold_depth=max_unfold_depth,
        max_residual_size=max_residual_size,
        tier_threshold=tier_threshold,
        tier_max_fused=tier_max_fused,
        bta=bta,
        max_variants=max_variants,
    )


def specialize_to_source(
    program: Program | str,
    signature: str,
    static_args: Sequence[Any],
    goal: str | None = None,
    dif_strategy: str = "duplicate",
    **kwargs: Any,
) -> ResidualProgram:
    """One-shot: residual source program for the given static input."""
    return make_generating_extension(
        program, signature, goal=goal, **kwargs
    ).to_source(static_args, dif_strategy=dif_strategy)


def specialize_to_object_code(
    program: Program | str,
    signature: str,
    static_args: Sequence[Any],
    goal: str | None = None,
    dif_strategy: str = "duplicate",
    verify: bool = True,
    optimize: bool = True,
    **kwargs: Any,
) -> ResidualProgram:
    """One-shot: executable object code for the given static input."""
    return make_generating_extension(
        program, signature, goal=goal, **kwargs
    ).to_object_code(
        static_args, dif_strategy=dif_strategy, verify=verify,
        optimize=optimize,
    )


def run_specialized(
    program: Program | str,
    signature: str,
    static_args: Sequence[Any],
    dynamic_args: Sequence[Any],
    goal: str | None = None,
    dif_strategy: str = "duplicate",
    verify: bool = True,
    optimize: bool = True,
    **kwargs: Any,
) -> Any:
    """Classic RTCG: generate code for the static input and run it."""
    residual = specialize_to_object_code(
        program, signature, static_args, goal=goal,
        dif_strategy=dif_strategy, verify=verify, optimize=optimize,
        **kwargs
    )
    return residual.run(dynamic_args)
