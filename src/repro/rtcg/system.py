"""Top-level API of the composed partial-evaluation / compilation system."""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from typing import TYPE_CHECKING

from repro.compiler.fusion import ObjectCodeBackend
from repro.lang.ast import Program
from repro.lang.gensym import Gensym

if TYPE_CHECKING:  # pragma: no cover
    from repro.pe.cogen import CompiledGeneratingExtension
from repro.lang.parser import parse_program
from repro.pe.backend import ResidualProgram, SourceBackend
from repro.pe.bta import BTAResult, analyze
from repro.pe.residual_cache import ResidualCache
from repro.pe.specializer import Specializer
from repro.pe.values import freeze_static


class GeneratingExtension:
    """A generating extension p-gen for a program p (§3).

    Built once from a program and a binding-time signature (the expensive
    part: front end + binding-time analysis), then applied any number of
    times to static inputs, producing residual programs — as source
    (``to_source``) or directly as executable object code
    (``to_object_code``), the paper's run-time code generation.

    Applications are memoized in a bounded, thread-safe LRU **residual
    cache** keyed by ``(frozen static args, dif strategy, backend
    kind)``: re-applying the extension to structurally equal static
    input returns the already-generated residual program instead of
    re-running the specializer (the paper's "built once ... applied any
    number of times", with the application side amortized too).
    ``cache_size=0`` disables the cache.  The extension is safe to share
    between threads: the cache is single-flight (concurrent misses on
    one key generate once), every generation run gets private gensym
    state, so repeated generation for one static input is byte-identical.
    """

    def __init__(
        self,
        program: Program | str,
        signature: str,
        goal: str | None = None,
        memo_hints: Iterable[str] = (),
        unfold_hints: Iterable[str] = (),
        check_congruence: bool = True,
        cache_size: int = 128,
    ):
        if isinstance(program, str):
            program = parse_program(program, goal=goal)
        self.program = program
        self.signature = signature
        self.bta: BTAResult = analyze(
            program, signature, memo_hints=memo_hints, unfold_hints=unfold_hints
        )
        if check_congruence:
            # Re-check the analysis output with the independent linter: a
            # BTA bug surfaces here as an AnnotationViolation instead of a
            # mis-specialized program.
            from repro.pe.check import verify_annotated

            verify_annotated(self.bta.annotated)
        self._cache_size = cache_size
        self.cache = ResidualCache(cache_size)

    def compiled(self) -> "CompiledGeneratingExtension":
        """Compile this generating extension (the cogen path, [59]).

        The returned object maps static input to residual code without
        re-traversing the annotated program; building it corresponds to
        Fig. 8's "Load" column (loading/compiling the generator).
        """
        from repro.pe.cogen import compile_generating_extension

        return compile_generating_extension(
            self.bta.annotated, cache_size=self._cache_size
        )

    # -- generation -------------------------------------------------------------

    def _generate(
        self,
        static_args: Sequence[Any],
        dif_strategy: str,
        make_backend,
        kind: str,
        use_cache: bool,
    ) -> ResidualProgram:
        def produce() -> ResidualProgram:
            # A private name supply per run keeps residual naming
            # deterministic (byte-identical regeneration) and isolates
            # concurrent runs from each other.
            return Specializer(
                self.bta.annotated,
                make_backend(),
                dif_strategy=dif_strategy,
                name_gensym=Gensym("f"),
            ).run(static_args)

        if not use_cache or self.cache.maxsize <= 0:
            return produce()
        key = (
            tuple(freeze_static(a) for a in static_args),
            dif_strategy,
            kind,
        )
        result, hit = self.cache.get_or_generate(key, produce)
        result.stats["cache_hit"] = hit
        result.stats["cache"] = self.cache.stats()
        return result

    def to_source(
        self,
        static_args: Sequence[Any],
        dif_strategy: str = "duplicate",
        use_cache: bool = True,
    ) -> ResidualProgram:
        """Generate a residual *source* program (classical PE)."""
        return self._generate(
            static_args, dif_strategy, SourceBackend, "source", use_cache
        )

    def to_object_code(
        self,
        static_args: Sequence[Any],
        dif_strategy: str = "duplicate",
        verify: bool = True,
        use_cache: bool = True,
    ) -> ResidualProgram:
        """Generate residual *object code* directly (the fused system).

        ``verify`` bytecode-verifies every generated template at
        generation time (:mod:`repro.vm.verify`).
        """
        kind = "object" if verify else "object-unverified"
        return self._generate(
            static_args,
            dif_strategy,
            lambda: ObjectCodeBackend(verify=verify),
            kind,
            use_cache,
        )

    def __call__(
        self,
        static_args: Sequence[Any],
        dif_strategy: str = "duplicate",
        verify: bool = True,
    ) -> ResidualProgram:
        return self.to_object_code(
            static_args, dif_strategy=dif_strategy, verify=verify
        )

    # -- cache introspection -----------------------------------------------------

    def cache_stats(self) -> dict[str, Any]:
        """Hit/miss/eviction/generation-time counters of the cache."""
        return self.cache.stats()

    def cache_clear(self) -> None:
        self.cache.clear()


def make_generating_extension(
    program: Program | str,
    signature: str,
    goal: str | None = None,
    memo_hints: Iterable[str] = (),
    unfold_hints: Iterable[str] = (),
    cache_size: int = 128,
) -> GeneratingExtension:
    """Build a generating extension (BTA happens here, once)."""
    return GeneratingExtension(
        program, signature, goal=goal, memo_hints=memo_hints,
        unfold_hints=unfold_hints, cache_size=cache_size,
    )


def specialize_to_source(
    program: Program | str,
    signature: str,
    static_args: Sequence[Any],
    goal: str | None = None,
    dif_strategy: str = "duplicate",
    **kwargs: Any,
) -> ResidualProgram:
    """One-shot: residual source program for the given static input."""
    return make_generating_extension(
        program, signature, goal=goal, **kwargs
    ).to_source(static_args, dif_strategy=dif_strategy)


def specialize_to_object_code(
    program: Program | str,
    signature: str,
    static_args: Sequence[Any],
    goal: str | None = None,
    dif_strategy: str = "duplicate",
    verify: bool = True,
    **kwargs: Any,
) -> ResidualProgram:
    """One-shot: executable object code for the given static input."""
    return make_generating_extension(
        program, signature, goal=goal, **kwargs
    ).to_object_code(static_args, dif_strategy=dif_strategy, verify=verify)


def run_specialized(
    program: Program | str,
    signature: str,
    static_args: Sequence[Any],
    dynamic_args: Sequence[Any],
    goal: str | None = None,
    dif_strategy: str = "duplicate",
    verify: bool = True,
    **kwargs: Any,
) -> Any:
    """Classic RTCG: generate code for the static input and run it."""
    residual = specialize_to_object_code(
        program, signature, static_args, goal=goal,
        dif_strategy=dif_strategy, verify=verify, **kwargs
    )
    return residual.run(dynamic_args)
