"""The composed system: run-time code generation from existing components.

This package wires the pieces into the artifacts the paper describes:

* :func:`make_generating_extension` — the PGG path: program + binding-time
  signature → a generating extension mapping static input to residual code
  (source or object code);
* :func:`specialize_to_source` / :func:`specialize_to_object_code` — one-
  shot specialization through either backend;
* :func:`run_specialized` — specialize and immediately execute: classic
  run-time code generation.
"""

from repro.rtcg.system import (
    GeneratingExtension,
    bta_cache_key,
    make_generating_extension,
    program_digest,
    run_specialized,
    specialize_to_object_code,
    specialize_to_source,
)

__all__ = [
    "GeneratingExtension",
    "bta_cache_key",
    "make_generating_extension",
    "program_digest",
    "run_specialized",
    "specialize_to_object_code",
    "specialize_to_source",
]
