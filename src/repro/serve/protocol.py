"""The wire protocol of the specialization service.

One *frame* is an 8-byte header followed by a UTF-8 JSON object::

    +----+----+---------+-------------------+----------------------+
    | 'R'| 'P'| version | length (uint32 BE)| JSON payload (bytes) |
    +----+----+---------+-------------------+----------------------+
      magic      1 byte        4 bytes         exactly `length`

(the byte after the version is reserved padding and must be zero).
Frames are self-delimiting, so one connection carries any number of
request/response exchanges; the payload is always a JSON *object* with
a ``"type"`` discriminator.

Request types the server understands:

``specialize``
    ``program`` (Scheme source text), ``signature`` (e.g. ``"SD"``),
    ``statics`` (list of Scheme datum strings, one per static
    parameter), plus knobs: ``tenant``, ``goal``, ``dif_strategy``,
    ``backend`` (``"object"``/``"source"``), ``verify``, ``optimize``,
    ``memo_hints``/``unfold_hints``, per-request budgets
    ``max_unfold_depth``/``max_residual_size`` (clamped to the tenant
    quota), ``dynamics`` (datum strings — run the residual server-side
    and return the printed value), and ``want_residual`` (include the
    residual program text in the response).
``probe``
    Same shape; answers whether the residual is already cached without
    generating anything (and without perturbing LRU recency — the
    lookup goes through :meth:`repro.pe.residual_cache.ResidualCache.peek`).
``stats``
    A snapshot of server/tenant counters.
``ping``
    Liveness.

Responses are ``result`` / ``probed`` / ``stats_result`` / ``pong``
frames, or a typed ``error`` frame — the server never writes a
traceback onto the wire::

    {"type": "error", "v": 1, "code": "ADMISSION_DENIED",
     "message": "...", "retryable": false, ...details}

Framing failures (bad magic, wrong version, oversized or truncated
frames, non-object JSON) raise :class:`FrameError` locally and are
answered with a ``BAD_FRAME`` error before the connection is closed.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Any

PROTOCOL_VERSION = 1

#: Hard ceiling on one frame's JSON payload.  Programs and residual
#: texts are small (kilobytes); anything near this bound is garbage or
#: abuse, and rejecting it early keeps a malicious peer from making the
#: server buffer arbitrary data.
MAX_FRAME_BYTES = 4 * 1024 * 1024

_MAGIC = b"RP"
_HEADER = struct.Struct(">2sBxI")

# Typed error codes (the closed set; clients may switch on these).
E_BAD_FRAME = "BAD_FRAME"            # unparseable frame; connection closes
E_BAD_REQUEST = "BAD_REQUEST"        # well-framed but malformed request
E_PARSE_ERROR = "PARSE_ERROR"        # program/static/dynamic text unreadable
E_ADMISSION_DENIED = "ADMISSION_DENIED"  # safety analyzer refused the program
E_BUDGET_EXCEEDED = "BUDGET_EXCEEDED"    # unfold/size budget tripped
E_BUSY = "BUSY"                      # pool or in-flight quota saturated
E_QUOTA_EXCEEDED = "QUOTA_EXCEEDED"  # a hard per-tenant quota refused work
E_SPECIALIZATION_ERROR = "SPECIALIZATION_ERROR"  # PE/run-time failure
E_INTERNAL = "INTERNAL"              # server-side bug (message, no traceback)

ERROR_CODES = frozenset({
    E_BAD_FRAME, E_BAD_REQUEST, E_PARSE_ERROR, E_ADMISSION_DENIED,
    E_BUDGET_EXCEEDED, E_BUSY, E_QUOTA_EXCEEDED, E_SPECIALIZATION_ERROR,
    E_INTERNAL,
})


class FrameError(ValueError):
    """A frame that cannot be decoded: bad magic, unsupported version,
    oversized length, truncated payload, or a non-object JSON body."""


def encode_frame(
    payload: dict[str, Any], max_bytes: int = MAX_FRAME_BYTES
) -> bytes:
    """Serialize one payload object into its wire frame."""
    if not isinstance(payload, dict):
        raise FrameError(
            f"frame payload must be a JSON object, got {type(payload).__name__}"
        )
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > max_bytes:
        raise FrameError(
            f"frame payload is {len(body)} bytes, over the"
            f" {max_bytes}-byte limit"
        )
    return _HEADER.pack(_MAGIC, PROTOCOL_VERSION, len(body)) + body


def decode_frame(
    data: bytes, max_bytes: int = MAX_FRAME_BYTES
) -> dict[str, Any]:
    """Decode exactly one complete frame; the inverse of
    :func:`encode_frame`.  Rejects truncated frames and trailing bytes."""
    if len(data) < _HEADER.size:
        raise FrameError(
            f"truncated frame: {len(data)} bytes, header needs"
            f" {_HEADER.size}"
        )
    magic, version, length = _HEADER.unpack_from(data)
    if magic != _MAGIC:
        raise FrameError(f"bad magic {magic!r} (expected {_MAGIC!r})")
    if version != PROTOCOL_VERSION:
        raise FrameError(
            f"unsupported protocol version {version}"
            f" (this side speaks {PROTOCOL_VERSION})"
        )
    if length > max_bytes:
        raise FrameError(
            f"frame payload of {length} bytes is over the"
            f" {max_bytes}-byte limit"
        )
    body = data[_HEADER.size:]
    if len(body) < length:
        raise FrameError(
            f"truncated frame: payload has {len(body)} of {length} bytes"
        )
    if len(body) > length:
        raise FrameError(
            f"{len(body) - length} trailing byte(s) after the frame"
        )
    return _parse_body(body)


def _parse_body(body: bytes) -> dict[str, Any]:
    try:
        payload = json.loads(body)
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"frame payload is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise FrameError(
            f"frame payload must be a JSON object,"
            f" got {type(payload).__name__}"
        )
    return payload


# -- socket-level framing ---------------------------------------------------


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes.  ``None`` on clean EOF *before* the
    first byte; :class:`FrameError` on EOF mid-read (a truncated frame)."""
    chunks: list[bytes] = []
    got = 0
    while got < n:
        chunk = sock.recv(n - got)
        if not chunk:
            if got == 0:
                return None
            raise FrameError(
                f"connection closed mid-frame ({got} of {n} bytes)"
            )
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def send_frame(
    sock: socket.socket,
    payload: dict[str, Any],
    max_bytes: int = MAX_FRAME_BYTES,
) -> None:
    """Write one frame to a connected socket."""
    sock.sendall(encode_frame(payload, max_bytes=max_bytes))


def recv_frame(
    sock: socket.socket, max_bytes: int = MAX_FRAME_BYTES
) -> dict[str, Any] | None:
    """Read one frame from a connected socket.

    Returns ``None`` on clean EOF at a frame boundary; raises
    :class:`FrameError` on garbage, truncation, or an oversized length.
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    magic, version, length = _HEADER.unpack(header)
    if magic != _MAGIC:
        raise FrameError(f"bad magic {magic!r} (expected {_MAGIC!r})")
    if version != PROTOCOL_VERSION:
        raise FrameError(
            f"unsupported protocol version {version}"
            f" (this side speaks {PROTOCOL_VERSION})"
        )
    if length > max_bytes:
        raise FrameError(
            f"frame payload of {length} bytes is over the"
            f" {max_bytes}-byte limit"
        )
    body = _recv_exact(sock, length)
    if body is None:
        raise FrameError("connection closed between header and payload")
    return _parse_body(body)


# -- frame builders ---------------------------------------------------------


def error_frame(
    code: str, message: str, retryable: bool = False, **details: Any
) -> dict[str, Any]:
    """A typed error response.  ``details`` must be JSON-serializable."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    frame = {
        "type": "error",
        "v": PROTOCOL_VERSION,
        "code": code,
        "message": message,
        "retryable": retryable,
    }
    frame.update(details)
    return frame


def specialize_request(
    program: str,
    signature: str,
    statics: list[str] | tuple[str, ...] = (),
    *,
    tenant: str = "public",
    goal: str | None = None,
    dynamics: list[str] | tuple[str, ...] | None = None,
    dif_strategy: str = "duplicate",
    backend: str = "object",
    verify: bool = True,
    optimize: bool = True,
    memo_hints: list[str] | tuple[str, ...] = (),
    unfold_hints: list[str] | tuple[str, ...] = (),
    max_unfold_depth: int | None = None,
    max_residual_size: int | None = None,
    want_residual: bool = False,
    probe: bool = False,
) -> dict[str, Any]:
    """Build a ``specialize`` (or, with ``probe=True``, a ``probe``)
    request frame.  Statics and dynamics travel as Scheme datum text."""
    frame: dict[str, Any] = {
        "type": "probe" if probe else "specialize",
        "v": PROTOCOL_VERSION,
        "tenant": tenant,
        "program": program,
        "signature": signature,
        "statics": list(statics),
        "dif_strategy": dif_strategy,
        "backend": backend,
        "verify": verify,
        "optimize": optimize,
        "want_residual": want_residual,
    }
    if goal is not None:
        frame["goal"] = goal
    if dynamics is not None:
        frame["dynamics"] = list(dynamics)
    if memo_hints:
        frame["memo_hints"] = list(memo_hints)
    if unfold_hints:
        frame["unfold_hints"] = list(unfold_hints)
    if max_unfold_depth is not None:
        frame["max_unfold_depth"] = max_unfold_depth
    if max_residual_size is not None:
        frame["max_residual_size"] = max_residual_size
    return frame


class RequestValidationError(ValueError):
    """A well-framed request with missing or ill-typed fields."""


def _expect(frame: dict, field: str, types, default=None, required=False):
    value = frame.get(field, default)
    if value is default and not required:
        return value
    if required and field not in frame:
        raise RequestValidationError(f"missing required field {field!r}")
    if not isinstance(value, types):
        names = (
            types.__name__ if isinstance(types, type)
            else "/".join(t.__name__ for t in types)
        )
        raise RequestValidationError(
            f"field {field!r} must be {names},"
            f" got {type(value).__name__}"
        )
    return value


def _expect_str_list(frame: dict, field: str, default=()) -> list[str]:
    value = frame.get(field, None)
    if value is None:
        return list(default)
    if not isinstance(value, list) or not all(
        isinstance(item, str) for item in value
    ):
        raise RequestValidationError(
            f"field {field!r} must be a list of strings"
        )
    return value


def validate_specialize(frame: dict[str, Any]) -> dict[str, Any]:
    """Check and normalize a ``specialize``/``probe`` request.

    Returns a plain dict with every knob defaulted; raises
    :class:`RequestValidationError` (mapped to a ``BAD_REQUEST`` error
    frame by the server) on any missing or ill-typed field.
    """
    out: dict[str, Any] = {
        "program": _expect(frame, "program", str, required=True),
        "signature": _expect(frame, "signature", str, required=True),
        "tenant": _expect(frame, "tenant", str, default="public"),
        "goal": _expect(frame, "goal", str),
        "statics": _expect_str_list(frame, "statics"),
        "dynamics": (
            _expect_str_list(frame, "dynamics")
            if frame.get("dynamics") is not None else None
        ),
        "dif_strategy": _expect(
            frame, "dif_strategy", str, default="duplicate"
        ),
        "backend": _expect(frame, "backend", str, default="object"),
        "verify": _expect(frame, "verify", bool, default=True),
        "optimize": _expect(frame, "optimize", bool, default=True),
        "memo_hints": _expect_str_list(frame, "memo_hints"),
        "unfold_hints": _expect_str_list(frame, "unfold_hints"),
        "max_unfold_depth": _expect(frame, "max_unfold_depth", int),
        "max_residual_size": _expect(frame, "max_residual_size", int),
        "want_residual": _expect(frame, "want_residual", bool, default=False),
    }
    if out["dif_strategy"] not in ("duplicate", "join"):
        raise RequestValidationError(
            f"unknown dif_strategy {out['dif_strategy']!r}"
        )
    if out["backend"] not in ("object", "source"):
        raise RequestValidationError(f"unknown backend {out['backend']!r}")
    for budget in ("max_unfold_depth", "max_residual_size"):
        value = out[budget]
        if value is not None and value < 1:
            raise RequestValidationError(f"{budget} must be >= 1, got {value}")
    if not out["tenant"]:
        raise RequestValidationError("tenant name must be non-empty")
    return out
