"""A concurrent, multi-tenant specialization server.

The server is a thin service layer over
:class:`repro.rtcg.GeneratingExtension`: every piece of heavy machinery
it relies on — the single-flight L1 residual cache, the content-addressed
L2 image store, the safety analyzer, the per-stage timings — already
exists in-process.  What this module adds is the production envelope:

* **Per-tenant extension registry.**  Each tenant owns its own
  generating extensions (an LRU of at most ``quota.max_programs``),
  keyed by admission digest and budget knobs.  Cache sharding falls out
  of one-extension-per-tenant: tenants never share residual caches, so
  one tenant can neither read another's residuals nor evict them.
* **Request coalescing.**  Concurrent requests for one (program,
  statics) key inside a tenant all funnel into the same extension, whose
  single-flight cache runs the specializer once and hands every waiter
  the same residual (one ``specializer_runs`` increment per key).
* **Admission control.**  Untrusted tenants' programs must pass the
  safety analyzer (``forbid`` semantics → ``ADMISSION_DENIED``);
  trusted tenants get ``warn`` semantics — findings travel in the
  response and the runtime budgets backstop divergence.
* **Quotas and graceful degradation.**  A bounded connection pool
  (overflow → typed ``BUSY`` frame, never a hung connection), a
  per-tenant in-flight cap, per-request unfold/size budgets clamped to
  the tenant ceiling (trips → typed ``BUDGET_EXCEEDED``), and idle
  timeouts on every connection.

Threading model: one accept thread plus one handler thread per live
connection, the pool bounded by ``max_connections``.  A connection
carries any number of sequential request/response exchanges.
"""

from __future__ import annotations

import hashlib
import socket
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable

from repro import obs
from repro.lang.parser import parse_program
from repro.pe.errors import BudgetExceeded, PEError
from repro.rtcg.system import GeneratingExtension, object_kind
from repro.runtime.errors import SchemeError
from repro.runtime.values import datum_to_value
from repro.serve.admission import (
    AdmissionController,
    program_admission_digest,
)
from repro.serve.protocol import (
    E_ADMISSION_DENIED,
    E_BAD_FRAME,
    E_BAD_REQUEST,
    E_BUDGET_EXCEEDED,
    E_BUSY,
    E_INTERNAL,
    E_PARSE_ERROR,
    E_SPECIALIZATION_ERROR,
    FrameError,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    RequestValidationError,
    error_frame,
    recv_frame,
    send_frame,
    validate_specialize,
)
from repro.sexp.reader import read


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant resource ceilings.

    ``max_programs`` bounds the tenant's extension registry (LRU — the
    least recently used program's extension, and with it that program's
    residual cache, is dropped first).  ``max_cached_residuals`` sizes
    each extension's L1 residual cache.  ``max_in_flight`` caps the
    tenant's concurrently executing requests (excess gets a retryable
    ``BUSY``).  ``max_unfold_depth``/``max_residual_size`` are ceilings
    for the per-request specialization budgets: a request may ask for
    less, never for more.
    """

    max_programs: int = 8
    max_cached_residuals: int = 64
    max_in_flight: int = 8
    max_unfold_depth: int = 5_000
    max_residual_size: int = 1_000_000


class _RequestRefused(Exception):
    """Internal control flow: carries the typed error frame to send."""

    def __init__(self, frame: dict[str, Any]):
        super().__init__(frame.get("message", ""))
        self.frame = frame


class _Tenant:
    """One tenant's slice of the server: extensions, quota, counters."""

    def __init__(self, name: str, quota: TenantQuota, trusted: bool,
                 store_dir: Path | None):
        self.name = name
        self.quota = quota
        self.trusted = trusted
        self.store_dir = store_dir
        self._lock = threading.Lock()
        # Serializes extension *construction* (BTA + congruence check)
        # per tenant, so concurrent first requests for one program build
        # it once; holders of only ``_lock`` (hits) are not blocked.
        self._build_lock = threading.Lock()
        self._extensions: OrderedDict[tuple, GeneratingExtension] = (
            OrderedDict()
        )
        self._in_flight = 0
        self.requests = 0
        self.denials = 0
        self.busy = 0

    def try_acquire(self) -> bool:
        with self._lock:
            if self._in_flight >= self.quota.max_in_flight:
                self.busy += 1
                return False
            self._in_flight += 1
            self.requests += 1
            return True

    def release(self) -> None:
        with self._lock:
            self._in_flight -= 1

    def lookup_extension(self, key: tuple) -> GeneratingExtension | None:
        """Registry probe for the ``probe`` request path: read-only, no
        LRU promotion — monitoring must not perturb eviction order."""
        with self._lock:
            return self._extensions.get(key)

    def extensions(self) -> list[GeneratingExtension]:
        with self._lock:
            return list(self._extensions.values())

    def get_extension(self, key: tuple, build) -> GeneratingExtension:
        with self._lock:
            ext = self._extensions.get(key)
            if ext is not None:
                self._extensions.move_to_end(key)
                return ext
        with self._build_lock:
            with self._lock:
                ext = self._extensions.get(key)
                if ext is not None:
                    self._extensions.move_to_end(key)
                    return ext
            ext = build()  # may raise _RequestRefused (admission) etc.
            with self._lock:
                self._extensions[key] = ext
                self._extensions.move_to_end(key)
                while len(self._extensions) > self.quota.max_programs:
                    self._extensions.popitem(last=False)
            obs.count("serve.tenant.extension_built")
            return ext

    def stats(self) -> dict[str, Any]:
        with self._lock:
            extensions = list(self._extensions.items())
            snapshot = {
                "trusted": self.trusted,
                "in_flight": self._in_flight,
                "requests": self.requests,
                "denials": self.denials,
                "busy": self.busy,
                "programs": len(extensions),
            }
        # ``cache_stats()`` is a deep-copied snapshot (see
        # ``GeneratingExtension.cache_stats``), safe to take while other
        # threads are specializing through the same extension.
        snapshot["extensions"] = [
            {"digest": key[0][:16], "cache": ext.cache_stats()}
            for key, ext in extensions
        ]
        return snapshot


class SpecializationServer:
    """A threaded socket server speaking :mod:`repro.serve.protocol`.

    ``trusted`` names tenants whose programs get ``warn`` admission
    semantics; everyone else is untrusted (``forbid``).  ``store_dir``
    attaches a per-tenant-sharded L2 image store, so residuals survive
    server restarts.  ``remote_store`` (``"host:port"`` of an
    ``image serve-store`` object server) attaches a shared L3 tier
    behind every tenant's L2, so a fleet of server replicas shares one
    warm cache — replica N's cold start reads replica 1's images
    through the network (and re-verifies them on load).  Use as a
    context manager, or call :meth:`start` / :meth:`stop`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        max_connections: int = 64,
        quota: TenantQuota | None = None,
        trusted: Iterable[str] = (),
        store_dir: str | Path | None = None,
        remote_store: str | None = None,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        idle_timeout: float = 300.0,
    ):
        self.host = host
        self._requested_port = port
        self.port: int | None = None
        self.max_connections = max_connections
        self.quota = quota or TenantQuota()
        self.trusted = frozenset(trusted)
        self.store_dir = Path(store_dir) if store_dir is not None else None
        self.remote_store = remote_store
        self.max_frame_bytes = max_frame_bytes
        self.idle_timeout = idle_timeout
        self.admission = AdmissionController()
        self._tenants: dict[str, _Tenant] = {}
        self._tenants_lock = threading.Lock()
        self._lock = threading.Lock()
        self._counters = {
            "connections_accepted": 0,
            "connections_rejected_busy": 0,
            "requests": 0,
            "responses_ok": 0,
            "responses_error": 0,
            "frame_errors": 0,
        }
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._handlers: set[threading.Thread] = set()
        self._connections: set[socket.socket] = set()
        self._closing = threading.Event()

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "SpecializationServer":
        listener = socket.create_server(
            (self.host, self._requested_port), reuse_port=False
        )
        listener.listen(128)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, unblock every live connection, join threads."""
        self._closing.set()
        if self._listener is not None:
            # shutdown() wakes a thread blocked in accept(); close()
            # alone leaves it blocked and the port in LISTEN, so a
            # restart on the same port would fail with EADDRINUSE.
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            connections = list(self._connections)
            handlers = list(self._handlers)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        for thread in handlers:
            thread.join(timeout=5)
        # Drain every extension's write-behind queue so images this
        # replica generated reach the shared L3 before the process dies.
        with self._tenants_lock:
            tenants = list(self._tenants.values())
        for tenant in tenants:
            for ext in tenant.extensions():
                ext.close_store(flush=True, timeout=5)

    def __enter__(self) -> "SpecializationServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # -- counters -------------------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] += n

    # -- accept / connection handling -----------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._closing.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                break  # listener closed by stop()
            with self._lock:
                active = len(self._connections)
                if active < self.max_connections:
                    self._connections.add(conn)
                    admitted = True
                else:
                    admitted = False
            if not admitted:
                # Graceful degradation at the pool boundary: a typed,
                # retryable BUSY frame, then close — never a socket
                # that neither answers nor disconnects.
                self._count("connections_rejected_busy")
                obs.count("serve.connection.rejected_busy")
                try:
                    send_frame(conn, error_frame(
                        E_BUSY,
                        f"server connection pool is full"
                        f" ({self.max_connections} connections)",
                        retryable=True,
                    ), max_bytes=self.max_frame_bytes)
                except OSError:
                    pass
                try:
                    conn.close()
                except OSError:
                    pass
                continue
            self._count("connections_accepted")
            obs.count("serve.connection.accepted")
            thread = threading.Thread(
                target=self._handle_connection, args=(conn,),
                name="repro-serve-conn", daemon=True,
            )
            with self._lock:
                self._handlers.add(thread)
            thread.start()

    def _handle_connection(self, conn: socket.socket) -> None:
        try:
            conn.settimeout(self.idle_timeout)
            while not self._closing.is_set():
                try:
                    frame = recv_frame(conn, max_bytes=self.max_frame_bytes)
                except FrameError as exc:
                    # A peer speaking garbage: answer once, typed, and
                    # drop the connection (framing is unrecoverable).
                    self._count("frame_errors")
                    obs.count("serve.frame_error")
                    try:
                        send_frame(conn, error_frame(
                            E_BAD_FRAME, str(exc)
                        ), max_bytes=self.max_frame_bytes)
                    except OSError:
                        pass
                    return
                except (TimeoutError, OSError):
                    return  # idle timeout or peer reset
                if frame is None:
                    return  # clean EOF
                response = self._dispatch(frame)
                try:
                    send_frame(
                        conn, response, max_bytes=self.max_frame_bytes
                    )
                except FrameError:
                    # The response itself does not fit a frame (huge
                    # residual): degrade to a typed error.
                    send_frame(conn, error_frame(
                        E_INTERNAL,
                        "response exceeded the frame size limit"
                        " (retry with want_residual=false)",
                    ), max_bytes=self.max_frame_bytes)
                except OSError:
                    return
        finally:
            with self._lock:
                self._connections.discard(conn)
                self._handlers.discard(threading.current_thread())
            try:
                conn.close()
            except OSError:
                pass

    # -- request dispatch ------------------------------------------------------

    def _dispatch(self, frame: dict[str, Any]) -> dict[str, Any]:
        self._count("requests")
        kind = frame.get("type")
        obs.count(f"serve.request.{kind}" if isinstance(kind, str) else
                  "serve.request.invalid")
        try:
            if kind == "specialize":
                response = self._handle_specialize(frame)
            elif kind == "probe":
                response = self._handle_probe(frame)
            elif kind == "stats":
                response = {
                    "type": "stats_result",
                    "v": PROTOCOL_VERSION,
                    "stats": self.stats(),
                }
            elif kind == "ping":
                response = {"type": "pong", "v": PROTOCOL_VERSION}
            else:
                response = error_frame(
                    E_BAD_REQUEST, f"unknown request type {kind!r}"
                )
        except _RequestRefused as exc:
            response = exc.frame
        except Exception as exc:  # noqa: BLE001 - the typed-frame boundary
            # The contract: a traceback never crosses the wire.  Genuine
            # bugs surface as INTERNAL frames (and a counter) instead of
            # killing the connection thread.
            obs.count("serve.internal_error")
            response = error_frame(
                E_INTERNAL, f"{type(exc).__name__}: {exc}"
            )
        if response.get("type") == "error":
            self._count("responses_error")
            obs.count(f"serve.response.error.{response.get('code')}")
        else:
            self._count("responses_ok")
            obs.count("serve.response.ok")
        return response

    # -- tenants ---------------------------------------------------------------

    def _tenant(self, name: str) -> _Tenant:
        with self._tenants_lock:
            tenant = self._tenants.get(name)
            if tenant is None:
                store = None
                if self.store_dir is not None:
                    # Shard the L2 store by tenant-name digest: stable
                    # across restarts, safe for arbitrary tenant names.
                    shard = hashlib.sha256(
                        name.encode("utf-8")
                    ).hexdigest()[:16]
                    store = self.store_dir / shard
                tenant = self._tenants[name] = _Tenant(
                    name, self.quota, name in self.trusted, store
                )
                obs.count("serve.tenant.created")
            return tenant

    # -- specialize ------------------------------------------------------------

    def _budgets(self, req: dict[str, Any]) -> tuple[int, int]:
        """Per-request budgets, clamped to the tenant quota ceiling."""
        quota = self.quota
        unfold = req["max_unfold_depth"]
        size = req["max_residual_size"]
        return (
            min(unfold, quota.max_unfold_depth) if unfold is not None
            else quota.max_unfold_depth,
            min(size, quota.max_residual_size) if size is not None
            else quota.max_residual_size,
        )

    def _registry_key(self, req: dict[str, Any]) -> tuple[tuple, str]:
        """The tenant-registry key and the admission digest for a
        request.  Budgets are part of the key: an extension's budgets
        are fixed at construction, so different ceilings mean different
        extensions (and separate residual caches)."""
        digest = program_admission_digest(
            req["program"], req["signature"], req["goal"],
            req["memo_hints"], req["unfold_hints"],
        )
        unfold, size = self._budgets(req)
        return (digest, unfold, size), digest

    def _build_extension(
        self, tenant: _Tenant, req: dict[str, Any], digest: str
    ) -> GeneratingExtension:
        try:
            program = parse_program(req["program"], goal=req["goal"])
        except ValueError as exc:  # ParseError / ReaderError
            raise _RequestRefused(error_frame(
                E_PARSE_ERROR, f"program does not parse: {exc}"
            )) from None
        report = self.admission.check(
            digest, program, req["signature"],
            memo_hints=req["memo_hints"], unfold_hints=req["unfold_hints"],
        )
        if not report.safe and not tenant.trusted:
            tenant.denials += 1
            self.admission.record_denial()
            raise _RequestRefused(error_frame(
                E_ADMISSION_DENIED,
                f"the specialization-safety analyzer reported"
                f" {len(report.findings)} finding(s); untrusted tenants"
                f" may only specialize provably safe programs",
                findings=[str(f) for f in report.findings],
            ))
        unfold, size = self._budgets(req)
        # Admission already ran (and cached) the analysis, so the
        # extension itself skips it; the runtime budgets stay on as the
        # dynamic backstop for warn-mode (trusted) tenants.
        return GeneratingExtension(
            program,
            req["signature"],
            memo_hints=req["memo_hints"],
            unfold_hints=req["unfold_hints"],
            analyze="off",
            cache_size=tenant.quota.max_cached_residuals,
            store_dir=tenant.store_dir,
            remote_store=self.remote_store,
            max_unfold_depth=unfold,
            max_residual_size=size,
        )

    @staticmethod
    def _parse_data(items: list[str], what: str) -> list[Any]:
        try:
            return [datum_to_value(read(item)) for item in items]
        except ValueError as exc:
            raise _RequestRefused(error_frame(
                E_PARSE_ERROR, f"{what} argument does not read: {exc}"
            )) from None

    def _handle_specialize(self, frame: dict[str, Any]) -> dict[str, Any]:
        try:
            req = validate_specialize(frame)
        except RequestValidationError as exc:
            return error_frame(E_BAD_REQUEST, str(exc))
        tenant = self._tenant(req["tenant"])
        if not tenant.try_acquire():
            obs.count("serve.busy")
            return error_frame(
                E_BUSY,
                f"tenant {tenant.name!r} is at its in-flight limit"
                f" ({tenant.quota.max_in_flight})",
                retryable=True,
            )
        t0 = time.perf_counter()
        try:
            with obs.span(
                "serve.specialize", tenant=tenant.name,
                backend=req["backend"],
            ):
                return self._specialize(tenant, req, t0)
        finally:
            tenant.release()
            obs.observe("serve.request_seconds", time.perf_counter() - t0)

    def _specialize(
        self, tenant: _Tenant, req: dict[str, Any], t0: float
    ) -> dict[str, Any]:
        statics = self._parse_data(req["statics"], "static")
        dynamics = (
            self._parse_data(req["dynamics"], "dynamic")
            if req["dynamics"] is not None else None
        )
        key, digest = self._registry_key(req)
        ext = tenant.get_extension(
            key, lambda: self._build_extension(tenant, req, digest)
        )
        try:
            if req["backend"] == "source":
                residual = ext.to_source(
                    statics, dif_strategy=req["dif_strategy"]
                )
            else:
                residual = ext.to_object_code(
                    statics,
                    dif_strategy=req["dif_strategy"],
                    verify=req["verify"],
                    optimize=req["optimize"],
                )
        except BudgetExceeded as exc:
            # The graceful-degradation contract: a diverging (or merely
            # oversized) specialization trips its budget and becomes a
            # typed frame — the worker thread survives, the connection
            # stays usable, nothing hangs.
            obs.count("serve.budget_trip")
            return error_frame(
                E_BUDGET_EXCEEDED, str(exc),
                budget=exc.budget, limit=exc.limit,
                cycle=list(exc.cycle),
            )
        except (PEError, SchemeError) as exc:
            return error_frame(
                E_SPECIALIZATION_ERROR,
                f"specialization failed: {exc}", phase="specialize",
            )
        stats = residual.stats
        if stats.get("cache_hit"):
            provenance = "l1"
        elif stats.get("l3_hit"):
            provenance = "l3"
        elif stats.get("disk_hit"):
            provenance = "l2"
        else:
            provenance = "miss"
        obs.count(f"serve.provenance.{provenance}")
        response: dict[str, Any] = {
            "type": "result",
            "v": PROTOCOL_VERSION,
            "tenant": tenant.name,
            "goal": residual.goal.name,
            "params": [p.name for p in residual.goal_params],
            "backend": req["backend"],
            "provenance": provenance,
            "elapsed_ms": (time.perf_counter() - t0) * 1e3,
            # Cumulative per-stage wall clock for this extension (a
            # deep-copied snapshot of ``cache_stats()["stages"]`` —
            # per-extension totals, not per-request figures).
            "stages": ext.cache_stats()["stages"],
        }
        report = self.admission.verdict(digest)
        if tenant.trusted:
            # warn semantics: surface cached findings without blocking.
            if report is not None and not report.safe:
                response["admission_warnings"] = [
                    str(f) for f in report.findings
                ]
        if report is not None and report.division is not None:
            # Division-quality diagnostics from admission: how much the
            # polyvariant BTA sharpened this program's division.
            d = report.division
            response["division"] = {
                "variants": len(d.variants),
                "recovered_params": d.recovered_param_count,
                "spurious_lifts_removed": d.spurious_lift_count,
                "decision_deltas": d.decision_delta_count,
                "widened": list(d.widened),
            }
        if req["want_residual"]:
            response["residual"] = residual.fingerprint()
        response["fingerprint_digest"] = hashlib.sha256(
            residual.fingerprint().encode("utf-8")
        ).hexdigest()
        if dynamics is not None:
            from repro.lang.prims import write_value

            try:
                response["value"] = write_value(residual.run(dynamics))
            except BudgetExceeded as exc:
                return error_frame(
                    E_BUDGET_EXCEEDED, str(exc),
                    budget=exc.budget, limit=exc.limit, phase="run",
                )
            except (PEError, SchemeError) as exc:
                return error_frame(
                    E_SPECIALIZATION_ERROR,
                    f"running the residual failed: {exc}", phase="run",
                )
        return response

    # -- probe -----------------------------------------------------------------

    def _handle_probe(self, frame: dict[str, Any]) -> dict[str, Any]:
        try:
            req = validate_specialize(frame)
        except RequestValidationError as exc:
            return error_frame(E_BAD_REQUEST, str(exc))
        with self._tenants_lock:
            tenant = self._tenants.get(req["tenant"])
        response = {
            "type": "probed",
            "v": PROTOCOL_VERSION,
            "tenant": req["tenant"],
            "extension": False,
            "cached": False,
        }
        if tenant is None:
            return response
        key, _digest = self._registry_key(req)
        ext = tenant.lookup_extension(key)
        if ext is None:
            return response
        response["extension"] = True
        statics = self._parse_data(req["statics"], "static")
        kind = (
            "source" if req["backend"] == "source"
            else object_kind(req["verify"], req["optimize"])
        )
        # Read-only inspection: ``peek`` neither promotes LRU recency
        # nor counts a hit, so monitoring warmth cannot perturb the
        # tenant's eviction order.
        response["cached"] = ext.peek(
            statics, dif_strategy=req["dif_strategy"], kind=kind
        ) is not None
        return response

    # -- stats -----------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """A deep snapshot of server, admission, and tenant counters."""
        with self._lock:
            counters = dict(self._counters)
            active = len(self._connections)
        with self._tenants_lock:
            tenants = dict(self._tenants)
        return {
            "host": self.host,
            "port": self.port,
            "max_connections": self.max_connections,
            "active_connections": active,
            "counters": counters,
            "admission": self.admission.stats(),
            "quota": {
                "max_programs": self.quota.max_programs,
                "max_cached_residuals": self.quota.max_cached_residuals,
                "max_in_flight": self.quota.max_in_flight,
                "max_unfold_depth": self.quota.max_unfold_depth,
                "max_residual_size": self.quota.max_residual_size,
            },
            "tenants": {
                name: tenant.stats() for name, tenant in sorted(
                    tenants.items()
                )
            },
        }
