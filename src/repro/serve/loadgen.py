"""A load generator for the specialization service.

Drives N concurrent clients (real sockets, real frames — the same path
production callers take) against a server and reports latency
percentiles and throughput.  The request mix is the §7 benchmark
workloads by default: each client repeatedly asks the server to
specialize the MIXWELL and LAZY interpreters to their §7 input
programs.

Cold/warm split: each client's *first* request per workload is a cold
sample — it either runs the specializer or waits on the single-flight
leader doing so (the stampede is the point: all clients start together
behind a barrier) — and every later request is a warm sample served
from the tenant's residual cache.  The fig10 claim is that warm p50 is
a small constant (freeze + L1 lookup + one frame round trip) while cold
p50 carries BTA + specialization, so the gap is the service-side
restatement of the paper's amortization story.

Used by ``python -m repro loadgen`` and
``benchmarks/test_fig10_service_latency.py``.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Iterable

from repro.serve.client import ServiceError, SpecializationClient
from repro.serve.protocol import FrameError


def builtin_workloads() -> dict[str, dict[str, Any]]:
    """The §7 workload request payloads, keyed by workload name."""
    from repro.workloads import (
        LAZY_GOAL,
        LAZY_PRIMES_PROGRAM,
        LAZY_SIGNATURE,
        LAZY_SOURCE,
        MIXWELL_GOAL,
        MIXWELL_SIGNATURE,
        MIXWELL_SOURCE,
        MIXWELL_TM_PROGRAM,
    )

    return {
        "mixwell": {
            "program": MIXWELL_SOURCE,
            "signature": MIXWELL_SIGNATURE,
            "goal": MIXWELL_GOAL,
            "statics": [MIXWELL_TM_PROGRAM],
        },
        "lazy": {
            "program": LAZY_SOURCE,
            "signature": LAZY_SIGNATURE,
            "goal": LAZY_GOAL,
            "statics": [LAZY_PRIMES_PROGRAM],
        },
    }


def percentile(sorted_values: list[float], p: float) -> float:
    """Nearest-rank percentile of an ascending list (p in [0, 100])."""
    if not sorted_values:
        return float("nan")
    rank = max(
        0, min(len(sorted_values) - 1,
               int(round(p / 100.0 * len(sorted_values) + 0.5)) - 1)
    )
    return sorted_values[rank]


def _latency_summary(samples_ms: list[float]) -> dict[str, Any]:
    ordered = sorted(samples_ms)
    return {
        "n": len(ordered),
        "p50": percentile(ordered, 50),
        "p90": percentile(ordered, 90),
        "p99": percentile(ordered, 99),
        "min": ordered[0] if ordered else float("nan"),
        "max": ordered[-1] if ordered else float("nan"),
    }


def run_load(
    host: str,
    port: int,
    clients: int = 10,
    requests: int = 16,
    workloads: dict[str, dict[str, Any]] | None = None,
    tenant: str = "loadgen",
    timeout: float = 120.0,
    think_ms: float = 0.0,
) -> dict[str, Any]:
    """Run the load and return the report dict.

    ``requests`` is per client; every client cycles round-robin through
    the workloads, all under one tenant (so the cold work is coalesced
    across clients by the single-flight cache — the report's
    ``coalescing`` section proves it from server-side counters).

    ``think_ms`` is a per-client pause between requests.  Zero is a
    closed-loop saturation test (throughput mode); a small think time
    measures request latency without the clients themselves saturating
    the process (latency mode — what fig10 reports).
    """
    if workloads is None:
        workloads = builtin_workloads()
    if not workloads:
        raise ValueError("loadgen needs at least one workload")
    names = list(workloads)
    barrier = threading.Barrier(clients)
    samples: list[tuple[str, float, str | None, str | None, bool]] = []
    protocol_errors = [0]
    merge_lock = threading.Lock()

    def client_body(client_index: int) -> None:
        local: list[tuple[str, float, str | None, str | None, bool]] = []
        failures = 0
        try:
            with SpecializationClient(host, port, timeout=timeout) as c:
                barrier.wait(timeout=timeout)
                for i in range(requests):
                    name = names[i % len(names)]
                    payload = workloads[name]
                    first = i < len(names)
                    t0 = time.perf_counter()
                    try:
                        result = c.specialize(
                            payload["program"],
                            payload["signature"],
                            payload.get("statics", ()),
                            tenant=tenant,
                            goal=payload.get("goal"),
                            dynamics=payload.get("dynamics"),
                            want_residual=False,
                        )
                        latency = time.perf_counter() - t0
                        local.append((
                            name, latency, result.get("provenance"),
                            None, first,
                        ))
                    except ServiceError as exc:
                        latency = time.perf_counter() - t0
                        local.append((name, latency, None, exc.code, first))
                    if think_ms > 0 and i + 1 < requests:
                        time.sleep(think_ms / 1e3)
        except (FrameError, ConnectionError, OSError, threading.BrokenBarrierError):
            failures = 1
        with merge_lock:
            samples.extend(local)
            protocol_errors[0] += failures

    threads = [
        threading.Thread(target=client_body, args=(i,), daemon=True)
        for i in range(clients)
    ]
    t_start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)
    duration = time.perf_counter() - t_start

    ok = [s for s in samples if s[3] is None]
    errors: dict[str, int] = {}
    for _, _, _, code, _ in samples:
        if code is not None:
            errors[code] = errors.get(code, 0) + 1

    per_workload: dict[str, Any] = {}
    all_cold: list[float] = []
    all_warm: list[float] = []
    for name in names:
        cold = [s[1] * 1e3 for s in ok if s[0] == name and s[4]]
        warm = [s[1] * 1e3 for s in ok if s[0] == name and not s[4]]
        provenance: dict[str, int] = {}
        for _, _, prov, _, _ in (s for s in ok if s[0] == name):
            provenance[prov or "?"] = provenance.get(prov or "?", 0) + 1
        all_cold.extend(cold)
        all_warm.extend(warm)
        entry = {
            "requests": len(cold) + len(warm),
            "provenance": provenance,
            "cold_ms": _latency_summary(cold),
            "warm_ms": _latency_summary(warm),
        }
        if cold and warm and entry["warm_ms"]["p50"] > 0:
            entry["p50_speedup"] = (
                entry["cold_ms"]["p50"] / entry["warm_ms"]["p50"]
            )
        per_workload[name] = entry

    report: dict[str, Any] = {
        "host": host,
        "port": port,
        "tenant": tenant,
        "clients": clients,
        "requests_per_client": requests,
        "total_requests": len(samples),
        "ok": len(ok),
        "errors": errors,
        "protocol_errors": protocol_errors[0],
        "duration_seconds": duration,
        "throughput_rps": (len(ok) / duration) if duration > 0 else 0.0,
        "workloads": per_workload,
        "overall": {
            "cold_ms": _latency_summary(all_cold),
            "warm_ms": _latency_summary(all_warm),
        },
    }

    # Server-side ground truth for the coalescing claim: across the
    # whole run, the tenant's extensions must have run the specializer
    # once per distinct (workload, statics) key — not once per client.
    try:
        with SpecializationClient(host, port, timeout=timeout) as c:
            stats = c.stats()
        tstats = stats.get("tenants", {}).get(tenant, {})
        specializer_runs = sum(
            e["cache"].get("specializer_runs", 0)
            for e in tstats.get("extensions", [])
        )
        report["coalescing"] = {
            "distinct_keys": len(names),
            "specializer_runs": specializer_runs,
            "coalesced": specializer_runs <= len(names),
        }
        report["server"] = {
            "counters": stats.get("counters", {}),
            "admission": stats.get("admission", {}),
        }
    except (ServiceError, FrameError, ConnectionError, OSError):
        report["coalescing"] = None
    return report


def render_report(report: dict[str, Any]) -> str:
    """A human-readable rendering of :func:`run_load`'s report."""
    lines = [
        f"loadgen: {report['clients']} client(s) x"
        f" {report['requests_per_client']} request(s)"
        f" against {report['host']}:{report['port']}"
        f" (tenant {report['tenant']!r})",
        f"  ok {report['ok']}/{report['total_requests']}"
        f"  errors {sum(report['errors'].values())}"
        f"  protocol errors {report['protocol_errors']}"
        f"  throughput {report['throughput_rps']:.1f} req/s"
        f"  in {report['duration_seconds']:.2f}s",
    ]
    for name, entry in report["workloads"].items():
        cold, warm = entry["cold_ms"], entry["warm_ms"]
        prov = ", ".join(
            f"{k}:{v}" for k, v in sorted(entry["provenance"].items())
        )
        lines.append(
            f"  {name:<10} cold p50 {cold['p50']:8.2f} ms (n={cold['n']})"
            f"  warm p50 {warm['p50']:8.2f} ms"
            f" p99 {warm['p99']:8.2f} ms (n={warm['n']})"
            + (f"  speedup {entry['p50_speedup']:.1f}x"
               if "p50_speedup" in entry else "")
        )
        lines.append(f"  {'':<10} provenance: {prov}")
    coalescing = report.get("coalescing")
    if coalescing:
        verdict = "ok" if coalescing["coalesced"] else "NOT COALESCED"
        lines.append(
            f"  coalescing: {coalescing['specializer_runs']} specializer"
            f" run(s) for {coalescing['distinct_keys']} distinct key(s)"
            f" [{verdict}]"
        )
    return "\n".join(lines)


def select_workloads(names: Iterable[str]) -> dict[str, dict[str, Any]]:
    """Subset of the builtin workloads by name (for ``--workload``)."""
    available = builtin_workloads()
    chosen = {}
    for name in names:
        if name not in available:
            raise ValueError(
                f"unknown workload {name!r}"
                f" (available: {', '.join(sorted(available))})"
            )
        chosen[name] = available[name]
    return chosen
