"""Specialization as a service: a concurrent multi-tenant RTCG server.

The paper's payoff is that a generating extension turns specialization
into a cheap run-time facility; this package turns that facility into a
*service* other processes call into.  It is a thin, long-lived layer
over :class:`repro.rtcg.GeneratingExtension` — all the amortization
machinery (single-flight L1 residual cache, content-addressed L2 image
store, safety analyzer, stage timings) already exists in-process; the
server adds the multi-tenant production pieces:

* a versioned, length-prefixed JSON frame protocol
  (:mod:`repro.serve.protocol`) — typed error frames, never tracebacks;
* a threaded socket server (:mod:`repro.serve.server`) with a bounded
  connection pool, a per-tenant generating-extension registry (cache
  sharding falls out of one-extension-per-tenant), request coalescing
  via the single-flight cache, per-tenant quotas, and graceful
  degradation (typed ``BUSY``/``BUDGET`` responses);
* admission control (:mod:`repro.serve.admission`) — the PR-4 safety
  analyzer gates untrusted tenants' programs, verdicts cached by
  program digest;
* a blocking client with connection reuse (:mod:`repro.serve.client`);
* a load generator (:mod:`repro.serve.loadgen`) reporting p50/p99
  latency and throughput over the §7 workloads.

CLI: ``python -m repro serve`` / ``python -m repro loadgen``.
Protocol and quota semantics are documented in DESIGN.md §5i.
"""

from repro.serve.admission import AdmissionController
from repro.serve.client import ServiceError, SpecializationClient
from repro.serve.protocol import (
    FrameError,
    PROTOCOL_VERSION,
    decode_frame,
    encode_frame,
)
from repro.serve.server import SpecializationServer, TenantQuota

__all__ = [
    "AdmissionController",
    "FrameError",
    "PROTOCOL_VERSION",
    "ServiceError",
    "SpecializationClient",
    "SpecializationServer",
    "TenantQuota",
    "decode_frame",
    "encode_frame",
]
