"""A blocking client for the specialization service.

One :class:`SpecializationClient` owns one TCP connection and reuses it
for any number of request/response exchanges (the protocol is
self-delimiting, so there is no per-request connection cost).  Typed
``error`` frames from the server surface as :class:`ServiceError` with
the error ``code`` preserved; transport-level failures surface as
:class:`ConnectionError`/:class:`FrameError`.

    with SpecializationClient("127.0.0.1", port) as client:
        result = client.specialize(POWER, "DS", statics=["10"],
                                   dynamics=["2"])
        assert result["value"] == "1024"
"""

from __future__ import annotations

import socket
import time
from typing import Any

from repro.serve.protocol import (
    MAX_FRAME_BYTES,
    FrameError,
    recv_frame,
    send_frame,
    specialize_request,
)


class ServiceError(Exception):
    """A typed error frame from the server.

    ``code`` is one of :data:`repro.serve.protocol.ERROR_CODES`;
    ``retryable`` says whether backing off and retrying can help
    (``BUSY``) or not (``ADMISSION_DENIED``, ``BUDGET_EXCEEDED``);
    ``details`` carries any extra fields of the frame (e.g. the
    analyzer ``findings`` of an admission denial).
    """

    def __init__(self, frame: dict[str, Any]):
        self.code = frame.get("code", "INTERNAL")
        self.retryable = bool(frame.get("retryable", False))
        self.details = {
            k: v for k, v in frame.items()
            if k not in ("type", "v", "code", "message", "retryable")
        }
        super().__init__(f"{self.code}: {frame.get('message', '')}")


class SpecializationClient:
    """A blocking protocol client with connection reuse."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = 60.0,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_frame_bytes = max_frame_bytes
        self._sock: socket.socket | None = None

    # -- connection management -------------------------------------------------

    def connect(self) -> "SpecializationClient":
        if self._sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "SpecializationClient":
        return self.connect()

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # -- the request/response round trip ---------------------------------------

    def request(self, frame: dict[str, Any]) -> dict[str, Any]:
        """Send one frame, return the response frame.

        Raises :class:`ServiceError` for typed ``error`` responses and
        :class:`ConnectionError` when the server hangs up (e.g. after a
        ``BAD_FRAME``, or a pool-full ``BUSY`` at accept time — that
        one arrives as a :class:`ServiceError` first).

        Any *transport-level* failure mid-exchange — a ``socket.timeout``
        or peer reset from ``send_frame``/``recv_frame``, or a torn
        frame (:class:`FrameError`) — closes and resets the connection
        before the exception propagates: the stream may hold half a
        frame, and reusing it would desync every later exchange on this
        client.  The next :meth:`request` transparently reconnects.
        (A :class:`ServiceError` arrives on an in-sync stream and keeps
        the connection open.)
        """
        self.connect()
        assert self._sock is not None
        try:
            send_frame(self._sock, frame, max_bytes=self.max_frame_bytes)
            response = recv_frame(self._sock, max_bytes=self.max_frame_bytes)
        except (OSError, FrameError):
            self.close()
            raise
        if response is None:
            self.close()
            raise ConnectionError(
                "server closed the connection without a response"
            )
        if response.get("type") == "error":
            raise ServiceError(response)
        return response

    # -- convenience wrappers ----------------------------------------------------

    def specialize(
        self,
        program: str,
        signature: str,
        statics: list[str] | tuple[str, ...] = (),
        **knobs: Any,
    ) -> dict[str, Any]:
        """Specialize ``program`` to ``statics``; the ``result`` frame.

        ``knobs`` are the keyword fields of
        :func:`repro.serve.protocol.specialize_request` (``tenant``,
        ``goal``, ``dynamics``, ``backend``, budgets, ...).
        """
        return self.request(
            specialize_request(program, signature, statics, **knobs)
        )

    def probe(
        self,
        program: str,
        signature: str,
        statics: list[str] | tuple[str, ...] = (),
        **knobs: Any,
    ) -> dict[str, Any]:
        """Is this residual already cached?  Never generates anything
        and never perturbs the tenant's cache recency."""
        return self.request(
            specialize_request(program, signature, statics, probe=True,
                               **knobs)
        )

    def ping(self) -> bool:
        return self.request({"type": "ping"}).get("type") == "pong"

    def stats(self) -> dict[str, Any]:
        """The server's stats snapshot (server/admission/tenant counters)."""
        return self.request({"type": "stats"})["stats"]


def wait_for_server(
    host: str, port: int, timeout: float = 10.0, interval: float = 0.05
) -> None:
    """Block until a server answers ``ping`` at (host, port).

    For scripts (and CI) that start ``python -m repro serve`` as a
    separate process and must not race its bind/listen.  Raises
    :class:`ConnectionError` when the deadline passes.
    """
    deadline = time.monotonic() + timeout
    last: Exception | None = None
    while time.monotonic() < deadline:
        try:
            with SpecializationClient(host, port, timeout=interval * 10) as c:
                if c.ping():
                    return
        except (OSError, FrameError, ServiceError) as exc:
            last = exc
        time.sleep(interval)
    raise ConnectionError(
        f"no specialization server answered at {host}:{port}"
        f" within {timeout}s" + (f" (last error: {last})" if last else "")
    )
