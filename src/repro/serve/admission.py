"""Admission control for the specialization service.

Untrusted callers hand the server arbitrary programs to specialize, and
specialization is a fixpoint computation that need not terminate — the
exact threat the PR-4 safety analyzer (size-change termination +
quasi-termination + bloat bounds, :mod:`repro.analysis`) was built to
rule out statically.  The admission controller runs that analyzer once
per distinct program and caches the verdict by *program digest*, so a
tenant re-submitting the same program (the common case — the whole point
of the service is re-application) pays for the analysis exactly once per
server lifetime.

Policy is the server's: tenants marked trusted get ``"warn"`` semantics
(findings are reported in the response, specialization proceeds under
the runtime unfold/size budgets), untrusted tenants get ``"forbid"``
(an ``ADMISSION_DENIED`` error frame, nothing is specialized).  Either
way the runtime budgets stay on as the dynamic backstop.
"""

from __future__ import annotations

import hashlib
import threading
from typing import Any, Iterable

from repro import obs
from repro.analysis import AnalysisReport, analyze_bta, compare_divisions
from repro.lang.ast import Program
from repro.pe.bta import analyze as bta_analyze


def program_admission_digest(
    program_text: str,
    signature: str,
    goal: str | None,
    memo_hints: Iterable[str] = (),
    unfold_hints: Iterable[str] = (),
    bta: str = "poly",
) -> str:
    """A stable identity for an admission question.

    Hashes everything the analyzer's verdict depends on: the program
    *text* (pre-parse — two textually equal submissions are the same
    question), the binding-time signature, the goal, the hints, and the
    BTA discipline (the verdict is computed over the variant graph, so
    a mono verdict must never answer a poly question or vice versa —
    hence the v2 prefix).
    """
    h = hashlib.sha256()
    h.update(b"repro-admission-v2\x00")
    for part in (program_text, signature, goal or "", bta):
        h.update(part.encode("utf-8"))
        h.update(b"\x00")
    for hint in sorted(memo_hints):
        h.update(b"m:" + hint.encode("utf-8") + b"\x00")
    for hint in sorted(unfold_hints):
        h.update(b"u:" + hint.encode("utf-8") + b"\x00")
    return h.hexdigest()


class AdmissionController:
    """Runs the specialization-safety analyzer, caching verdicts.

    The cache is keyed by :func:`program_admission_digest` and shared
    across tenants — a verdict is a property of the (program, signature,
    hints) triple, not of who asked.  Thread-safe; concurrent first
    requests for one digest may race the analysis, which is harmless
    (same verdict, last writer wins).
    """

    def __init__(self, max_entries: int = 1024):
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._verdicts: dict[str, AnalysisReport] = {}
        self._analyzed = 0
        self._hits = 0
        self._denied = 0

    def check(
        self,
        digest: str,
        program: Program,
        signature: str,
        memo_hints: Iterable[str] = (),
        unfold_hints: Iterable[str] = (),
        bta: str = "poly",
    ) -> AnalysisReport:
        """The cached safety verdict for an already-parsed program.

        Under ``bta="poly"`` the verdict also carries the
        division-quality diagnostic (poly vs. mono baseline) — cached
        with the verdict, so the mono baseline is computed once per
        distinct program.
        """
        with self._lock:
            report = self._verdicts.get(digest)
            if report is not None:
                self._hits += 1
        if report is not None:
            obs.count("serve.admission.cache_hit")
            return report
        with obs.span("serve.admission.analyze", digest=digest[:12]):
            result = bta_analyze(
                program,
                signature,
                memo_hints=memo_hints,
                unfold_hints=unfold_hints,
                bta=bta,
            )
            division = None
            if bta == "poly":
                mono = bta_analyze(
                    program,
                    signature,
                    memo_hints=memo_hints,
                    unfold_hints=unfold_hints,
                    bta="mono",
                )
                division = compare_divisions(result, mono)
            report = analyze_bta(result, division=division)
        obs.count("serve.admission.analyzed")
        with self._lock:
            if len(self._verdicts) >= self.max_entries:
                # Verdict cache overflow: drop the oldest insertions.
                # Correctness is unaffected — a dropped verdict is
                # simply re-analyzed on its next request.
                for stale in list(self._verdicts)[: self.max_entries // 2]:
                    del self._verdicts[stale]
            self._verdicts[digest] = report
            self._analyzed += 1
        return report

    def verdict(self, digest: str) -> AnalysisReport | None:
        """The cached verdict, if any (no analysis is triggered)."""
        with self._lock:
            return self._verdicts.get(digest)

    def record_denial(self) -> None:
        with self._lock:
            self._denied += 1
        obs.count("serve.admission.denied")

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "cached_verdicts": len(self._verdicts),
                "analyzed": self._analyzed,
                "cache_hits": self._hits,
                "denied": self._denied,
            }
