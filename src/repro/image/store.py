"""A content-addressed on-disk store for residual-code images.

The process-level residual cache (:mod:`repro.pe.residual_cache`) makes
*re-application* of a generating extension a lookup — but only within one
process.  This store is the L2 tier beneath it: residual programs are
encoded with :mod:`repro.image.codec` and kept on disk, content-addressed
by the SHA-256 of their image bytes, with an index mapping the
specialization key — ``(program digest, frozen statics, dif strategy,
backend kind)`` — to the content address.  A fresh process (or another
process on the same machine) warm-starts by hitting the index instead of
re-running the specializer.

Robustness properties:

* **Atomic writes** — objects and index refs are written to a temporary
  file and ``os.replace``\\ d into place, so readers never observe a
  half-written image (the CRC would catch one anyway).
* **Advisory locking** — writers and the garbage collector take an
  ``fcntl`` lock on ``<root>/.lock`` so concurrent processes do not race
  gc against writes.  Readers rely on atomic replacement and take no lock.
* **Graceful degradation** — an unwritable or missing store directory
  never breaks specialization: writes are counted as errors and skipped,
  reads simply miss, and the extension falls back to generating.
* **Trust boundary** — every image read from disk is *untrusted*; by
  default each loaded template is re-checked by the bytecode verifier
  before the residual program is returned.
* **Bounded size** — :meth:`ImageStore.gc` evicts least-recently-used
  objects until the store fits ``max_bytes`` and drops dangling refs.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro import obs
from repro.image.codec import (
    CodecError,
    decode_residual,
    encode_residual,
)
from repro.pe.backend import ResidualProgram
from repro.sexp.datum import Char, Symbol
from repro.vm.verify import VerificationError

try:  # advisory locking is POSIX-only; the store degrades without it
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]


class UnpersistableKey(ValueError):
    """A specialization key that has no stable cross-process identity.

    Frozen statics that embed object identity (specialization-time
    closures, opaque host objects) change meaning between processes;
    persisting under such a key would serve wrong code later.
    """


@dataclass(frozen=True, slots=True)
class StoreKey:
    """A stable, hashed specialization key for the on-disk index."""

    digest: str

    def __str__(self) -> str:
        return self.digest


# Freeze tags (repro.pe.values._freeze) that embed ``id()`` and are
# therefore meaningless outside the producing process.
_IDENTITY_TAGS = frozenset({"closure", "opaque"})


def _key_bytes(value: Any, out: bytearray) -> None:
    """Serialize a frozen static value deterministically, or refuse."""
    if isinstance(value, tuple):
        if value and isinstance(value[0], str) and value[0] in _IDENTITY_TAGS:
            raise UnpersistableKey(
                f"frozen static contains an identity-keyed {value[0]!r}"
                " component; it cannot name a cross-process image"
            )
        out += b"(%d:" % len(value)
        for item in value:
            _key_bytes(item, out)
        out += b")"
    elif value is None:
        out += b"n;"
    elif value is True:
        out += b"t;"
    elif value is False:
        out += b"f;"
    elif isinstance(value, int):
        out += b"i%d;" % value
    elif isinstance(value, float):
        out += b"d" + value.hex().encode("ascii") + b";"
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += b"s%d:" % len(raw) + raw + b";"
    elif isinstance(value, bytes):
        out += b"b%d:" % len(value) + value + b";"
    elif isinstance(value, Symbol):
        raw = value.name.encode("utf-8")
        out += b"y%d:" % len(raw) + raw + b";"
    elif isinstance(value, Char):
        out += b"c" + value.value.encode("utf-8") + b";"
    else:
        raise UnpersistableKey(
            f"frozen static contains a {type(value).__name__}, which has"
            " no stable cross-process serialization"
        )


def store_key(
    program_digest: str,
    frozen_statics: tuple,
    dif_strategy: str,
    kind: str,
) -> StoreKey:
    """Hash a specialization key into a stable on-disk index name.

    Raises :class:`UnpersistableKey` when the frozen statics embed
    process-local identity (closures, opaque objects).
    """
    out = bytearray()
    out += b"repro-image-key-v1\x00"
    _key_bytes(
        (program_digest, frozen_statics, dif_strategy, kind), out
    )
    return StoreKey(hashlib.sha256(bytes(out)).hexdigest())


def verify_residual(residual: ResidualProgram) -> None:
    """Bytecode-verify every template of a (disk-loaded, untrusted)
    residual program.  Raises
    :class:`~repro.vm.verify.VerificationError` on the first unsound
    template; residual *source* programs have nothing executable yet and
    pass vacuously."""
    from repro.vm.machine import VmClosure
    from repro.vm.verify import verify_template

    if residual.machine is None:
        return
    for value in residual.machine.globals.values():
        if isinstance(value, VmClosure):
            verify_template(value.template)


class ImageStore:
    """A content-addressed store of residual-code images on disk.

    Layout::

        <root>/objects/<aa>/<digest>   framed image bytes (content address)
        <root>/index/<key digest>      text file naming an object digest
        <root>/.lock                   advisory write/gc lock

    ``max_bytes`` (optional) bounds the total object payload; exceeding
    it triggers an LRU :meth:`gc` after each write.
    """

    def __init__(self, root: str | os.PathLike, max_bytes: int | None = None):
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.index_dir = self.root / "index"
        self._lock_path = self.root / ".lock"
        self.max_bytes = max_bytes
        self._counter_lock = threading.Lock()
        self._counters = {
            "hits": 0,
            "misses": 0,
            "writes": 0,
            "write_errors": 0,
            "read_errors": 0,
            "verify_failures": 0,
            "gc_removed_objects": 0,
        }
        self.writable = True
        try:
            self.objects_dir.mkdir(parents=True, exist_ok=True)
            self.index_dir.mkdir(parents=True, exist_ok=True)
        except OSError:
            # Missing and uncreatable, or read-only: reads may still work.
            self.writable = False

    # -- internals ------------------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        with self._counter_lock:
            self._counters[name] += n

    @contextmanager
    def _locked(self) -> Iterator[None]:
        """Advisory exclusive lock for multi-process write/gc safety."""
        if fcntl is None:
            yield
            return
        try:
            fh = open(self._lock_path, "a+b")
        except OSError:
            yield  # unwritable store: nothing to protect
            return
        try:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            yield
        finally:
            try:
                fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
            finally:
                fh.close()

    def _atomic_write(self, path: Path, data: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _object_path(self, digest: str) -> Path:
        return self.objects_dir / digest[:2] / digest

    # -- the store API --------------------------------------------------------

    def put(self, key: StoreKey, residual: ResidualProgram) -> str | None:
        """Write ``residual`` through to disk under ``key``.

        Returns the content digest, or ``None`` when the store is
        unwritable or the program is not imageable — persistence
        failures never propagate into specialization.
        """
        with obs.span("image.put", key=key.digest[:12]):
            if not self.writable:
                self._count("write_errors")
                obs.count("image.l2.write_error")
                return None
            try:
                data = encode_residual(residual)
            except CodecError:
                self._count("write_errors")
                obs.count("image.l2.write_error")
                return None
            digest = hashlib.sha256(data).hexdigest()
            try:
                with self._locked():
                    obj = self._object_path(digest)
                    if not obj.exists():
                        self._atomic_write(obj, data)
                    self._atomic_write(
                        self.index_dir / key.digest,
                        (digest + "\n").encode("ascii"),
                    )
                    if self.max_bytes is not None:
                        self._gc_locked(self.max_bytes)
            except OSError:
                self._count("write_errors")
                obs.count("image.l2.write_error")
                return None
            self._count("writes")
            obs.count("image.l2.write")
            obs.observe("image.l2.bytes", len(data))
            return digest

    def get(
        self,
        key: StoreKey,
        verify: bool = True,
        check_fingerprint: bool = True,
    ) -> ResidualProgram | None:
        """Look ``key`` up; decode, and (by default) verify, on a hit.

        Returns ``None`` on a miss *or* on any integrity failure — a
        corrupt or unverifiable image behaves like a miss, and the
        caller regenerates.
        """
        with obs.span("image.probe", key=key.digest[:12]) as sp:
            try:
                ref = (self.index_dir / key.digest).read_text().strip()
            except OSError:
                self._count("misses")
                obs.count("image.l2.miss")
                return None
            try:
                residual = self.load(
                    ref, verify=verify, check_fingerprint=check_fingerprint
                )
            except FileNotFoundError:
                self._count("misses")
                obs.count("image.l2.miss")
                return None
            except CodecError:
                self._count("read_errors")
                self._count("misses")
                obs.count("image.l2.read_error")
                obs.count("image.l2.miss")
                return None
            except VerificationError:
                self._count("verify_failures")
                self._count("misses")
                obs.count("image.l2.verify_failure")
                obs.count("image.l2.miss")
                return None
            self._count("hits")
            obs.count("image.l2.hit")
            sp.set(hit=True)
            return residual

    def load(
        self,
        digest: str,
        verify: bool = True,
        check_fingerprint: bool = True,
    ) -> ResidualProgram:
        """Load an image by content digest.  Raises on any failure:
        :class:`FileNotFoundError`, :class:`CodecError` (corruption,
        staleness, content-address mismatch), or
        :class:`~repro.vm.verify.VerificationError` when the loaded
        object code does not verify."""
        with obs.span("image.load", digest=digest[:12]):
            path = self._object_path(digest)
            data = path.read_bytes()
            actual = hashlib.sha256(data).hexdigest()
            if actual != digest:
                raise CodecError(
                    f"content-address mismatch: object named {digest[:12]}..."
                    f" hashes to {actual[:12]}..."
                )
            residual = decode_residual(
                data, check_fingerprint=check_fingerprint
            )
            if verify:
                with obs.span("image.verify_on_load"):
                    self._verify(residual)
        residual.stats["image_digest"] = digest
        try:
            os.utime(path)  # LRU recency for gc()
        except OSError:
            pass
        return residual

    @staticmethod
    def _verify(residual: ResidualProgram) -> None:
        verify_residual(residual)

    def ls(self, strict: bool = False) -> list[dict[str, Any]]:
        """Describe every indexed image: key, object digest, size,
        mtime, and — when decodable — goal name, kind, and parameters.

        By default an unreadable store degrades to an empty listing
        (consistent with reads elsewhere: a broken store behaves like a
        miss).  ``strict=True`` raises :class:`OSError` instead — the
        CLI's ops story wants "this store is broken", not "this store
        is empty"."""
        entries = []
        try:
            refs = sorted(self.index_dir.iterdir())
        except OSError as exc:
            if strict:
                raise OSError(
                    f"cannot read image store at {self.root}: {exc}"
                ) from exc
            return entries
        for ref in refs:
            if ref.name.startswith("."):
                continue
            entry: dict[str, Any] = {"key": ref.name}
            try:
                digest = ref.read_text().strip()
                entry["object"] = digest
                path = self._object_path(digest)
                st = path.stat()
                entry["bytes"] = st.st_size
                entry["mtime"] = st.st_mtime
                residual = decode_residual(
                    path.read_bytes(), check_fingerprint=False
                )
                entry["goal"] = residual.goal.name
                entry["params"] = [p.name for p in residual.goal_params]
                entry["kind"] = (
                    "object" if residual.machine is not None else "source"
                )
            except (OSError, CodecError) as exc:
                entry["error"] = str(exc)
            entries.append(entry)
        return entries

    def gc(
        self, max_bytes: int | None = None, dry_run: bool = False
    ) -> dict[str, Any]:
        """Evict least-recently-used objects beyond the size budget and
        drop index refs to missing objects.

        ``dry_run`` reports what *would* be evicted — the object digests
        and the bytes that would be reclaimed — without unlinking
        anything (the report gains ``would_remove`` and keeps
        ``bytes_after`` at the projected post-gc size).
        """
        limit = self.max_bytes if max_bytes is None else max_bytes
        with self._locked():
            return self._gc_locked(limit, dry_run=dry_run)

    def _gc_locked(
        self, limit: int | None, dry_run: bool = False
    ) -> dict[str, Any]:
        objects: list[tuple[float, int, Path]] = []
        total = 0
        try:
            for shard in self.objects_dir.iterdir():
                if not shard.is_dir():
                    continue
                for obj in shard.iterdir():
                    if obj.name.startswith("."):
                        continue
                    try:
                        st = obj.stat()
                    except OSError:
                        continue
                    objects.append((st.st_mtime, st.st_size, obj))
                    total += st.st_size
        except OSError:
            report: dict[str, Any] = {
                "removed_objects": 0, "removed_refs": 0,
                "bytes_before": 0, "bytes_after": 0,
            }
            if dry_run:
                report["dry_run"] = True
                report["would_remove"] = []
            return report
        before = total
        removed = 0
        doomed: set[str] = set()
        would_remove: list[dict[str, Any]] = []
        if limit is not None and total > limit:
            for _, size, obj in sorted(objects):  # oldest first
                if total <= limit:
                    break
                if dry_run:
                    would_remove.append({"object": obj.name, "bytes": size})
                else:
                    try:
                        obj.unlink()
                    except OSError:
                        continue
                doomed.add(obj.name)
                total -= size
                removed += 1
        removed_refs = 0
        try:
            for ref in self.index_dir.iterdir():
                if ref.name.startswith("."):
                    continue
                try:
                    digest = ref.read_text().strip()
                except OSError:
                    continue
                dangling = (
                    digest in doomed
                    or not self._object_path(digest).exists()
                )
                if dangling:
                    if dry_run:
                        removed_refs += 1
                        continue
                    try:
                        ref.unlink()
                        removed_refs += 1
                    except OSError:
                        pass
        except OSError:
            pass
        if removed and not dry_run:
            self._count("gc_removed_objects", removed)
        report = {
            "removed_objects": removed,
            "removed_refs": removed_refs,
            "bytes_before": before,
            "bytes_after": total,
        }
        if dry_run:
            report["dry_run"] = True
            report["would_remove"] = would_remove
        return report

    def stats(self) -> dict[str, Any]:
        """A snapshot of the store counters."""
        with self._counter_lock:
            snapshot: dict[str, Any] = dict(self._counters)
        snapshot["writable"] = self.writable
        snapshot["root"] = str(self.root)
        return snapshot
