"""A content-addressed store for residual-code images.

The process-level residual cache (:mod:`repro.pe.residual_cache`) makes
*re-application* of a generating extension a lookup — but only within one
process.  This store is the L2 tier beneath it: residual programs are
encoded with :mod:`repro.image.codec` and kept on disk, content-addressed
by the SHA-256 of their image bytes, with an index mapping the
specialization key — ``(program digest, frozen statics, dif strategy,
backend kind)`` — to the content address.  A fresh process (or another
process on the same machine) warm-starts by hitting the index instead of
re-running the specializer.

Byte-level storage is behind the :class:`StoreBackend` protocol:
:class:`LocalStoreBackend` is the original content-addressed directory
layout, and :class:`repro.image.remote.RemoteStoreClient` speaks the same
protocol over TCP so stores can be tiered across machines
(:class:`repro.image.remote.TieredStore`).

Robustness properties:

* **Atomic, durable writes** — objects and index refs are written to a
  temporary file, flushed and ``fsync``\\ ed, then ``os.replace``\\ d into
  place (with a best-effort directory fsync), so readers never observe a
  half-written image and a crash cannot leave a torn object behind the
  rename.
* **Advisory locking** — writers and the garbage collector take an
  ``fcntl`` lock on ``<root>/.lock`` so concurrent processes do not race
  gc against writes.  Readers rely on atomic replacement and take no lock.
* **Graceful degradation** — an unwritable or missing store directory
  never breaks specialization: writes are counted as errors and skipped,
  reads simply miss, and the extension falls back to generating.  A torn
  or malformed index ref is a miss, never an exception, and
  :meth:`ImageStore.gc` prunes it.
* **Trust boundary** — every image read from disk is *untrusted*; by
  default each loaded template is re-checked by the bytecode verifier
  before the residual program is returned.
* **Bounded size** — :meth:`ImageStore.gc` evicts least-recently-used
  objects until the store fits ``max_bytes`` and drops dangling refs.
* **Repair** — :meth:`ImageStore.fsck` scans every object, quarantines
  anything torn (content-address or framing mismatch), and prunes the
  refs that pointed at it.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, ContextManager, Iterator, Protocol, runtime_checkable

from repro import obs
from repro.image.codec import (
    CodecError,
    decode_residual,
    encode_residual,
)
from repro.pe.backend import ResidualProgram
from repro.sexp.datum import Char, Symbol
from repro.vm.verify import VerificationError

try:  # advisory locking is POSIX-only; the store degrades without it
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]


class UnpersistableKey(ValueError):
    """A specialization key that has no stable cross-process identity.

    Frozen statics that embed object identity (specialization-time
    closures, opaque host objects) change meaning between processes;
    persisting under such a key would serve wrong code later.
    """


@dataclass(frozen=True, slots=True)
class StoreKey:
    """A stable, hashed specialization key for the on-disk index."""

    digest: str

    def __str__(self) -> str:
        return self.digest


@dataclass(frozen=True, slots=True)
class ObjectStat:
    """Size and recency of one stored object, keyed by content digest."""

    digest: str
    size: int
    mtime: float


_HEX_DIGITS = frozenset("0123456789abcdef")


def plausible_digest(digest: str) -> bool:
    """Whether ``digest`` is shaped like a SHA-256 hex content address.

    A torn index-ref write can leave an empty or garbage ref behind;
    treating those as addresses would turn a miss into an exception (an
    empty ref names the objects *directory*).
    """
    return len(digest) == 64 and all(c in _HEX_DIGITS for c in digest)


# Freeze tags (repro.pe.values._freeze) that embed ``id()`` and are
# therefore meaningless outside the producing process.
_IDENTITY_TAGS = frozenset({"closure", "opaque"})


def _key_bytes(value: Any, out: bytearray) -> None:
    """Serialize a frozen static value deterministically, or refuse."""
    if isinstance(value, tuple):
        if value and isinstance(value[0], str) and value[0] in _IDENTITY_TAGS:
            raise UnpersistableKey(
                f"frozen static contains an identity-keyed {value[0]!r}"
                " component; it cannot name a cross-process image"
            )
        out += b"(%d:" % len(value)
        for item in value:
            _key_bytes(item, out)
        out += b")"
    elif value is None:
        out += b"n;"
    elif value is True:
        out += b"t;"
    elif value is False:
        out += b"f;"
    elif isinstance(value, int):
        out += b"i%d;" % value
    elif isinstance(value, float):
        out += b"d" + value.hex().encode("ascii") + b";"
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += b"s%d:" % len(raw) + raw + b";"
    elif isinstance(value, bytes):
        out += b"b%d:" % len(value) + value + b";"
    elif isinstance(value, Symbol):
        raw = value.name.encode("utf-8")
        out += b"y%d:" % len(raw) + raw + b";"
    elif isinstance(value, Char):
        out += b"c" + value.value.encode("utf-8") + b";"
    else:
        raise UnpersistableKey(
            f"frozen static contains a {type(value).__name__}, which has"
            " no stable cross-process serialization"
        )


def store_key(
    program_digest: str,
    frozen_statics: tuple,
    dif_strategy: str,
    kind: str,
) -> StoreKey:
    """Hash a specialization key into a stable on-disk index name.

    Raises :class:`UnpersistableKey` when the frozen statics embed
    process-local identity (closures, opaque objects).
    """
    out = bytearray()
    out += b"repro-image-key-v1\x00"
    _key_bytes(
        (program_digest, frozen_statics, dif_strategy, kind), out
    )
    return StoreKey(hashlib.sha256(bytes(out)).hexdigest())


def verify_residual(residual: ResidualProgram) -> None:
    """Bytecode-verify every template of a (disk-loaded, untrusted)
    residual program.  Raises
    :class:`~repro.vm.verify.VerificationError` on the first unsound
    template; residual *source* programs have nothing executable yet and
    pass vacuously."""
    from repro.vm.machine import VmClosure
    from repro.vm.verify import verify_template

    if residual.machine is None:
        return
    for value in residual.machine.globals.values():
        if isinstance(value, VmClosure):
            verify_template(value.template)


@runtime_checkable
class StoreBackend(Protocol):
    """Byte-level storage behind :class:`ImageStore`.

    A backend stores opaque object payloads keyed by SHA-256 content
    digest plus a flat ``key digest -> object digest`` reference index.
    All methods raise :class:`OSError` (or a subclass — the remote
    backend's transport error is one) on storage failure; ``ImageStore``
    maps those to misses and error counters.  Backends do **not**
    decode, hash-check, or verify payloads — integrity and trust stay in
    ``ImageStore``, so a hostile or corrupt backend can never hand the
    process unverified code.
    """

    writable: bool

    def location(self) -> str:
        """Human-readable backend address (path or host:port)."""
        ...

    def locked(self) -> ContextManager[None]:
        """Exclusive advisory lock spanning a write/gc critical section."""
        ...

    def read_object(self, digest: str) -> bytes:
        """Return the payload stored at ``digest``; raise ``OSError``
        (``FileNotFoundError`` for a missing object) otherwise."""
        ...

    def write_object(
        self, digest: str, data: bytes, durable: bool = True
    ) -> None:
        """Store ``data`` at ``digest``.  ``durable=False`` may skip
        crash-durability (fsync) — callers use it only for payloads that
        are reconstructible from another tier."""
        ...

    def has_object(self, digest: str) -> bool: ...

    def stat_object(self, digest: str) -> ObjectStat: ...

    def touch_object(self, digest: str) -> None:
        """Mark ``digest`` recently used (LRU recency); best-effort."""
        ...

    def delete_object(self, digest: str) -> bool: ...

    def quarantine_object(self, digest: str) -> bool:
        """Move a corrupt object out of the addressable namespace (or
        delete it when the backend has no quarantine area)."""
        ...

    def list_objects(self) -> list[ObjectStat]: ...

    def read_ref(self, key: str) -> str: ...

    def write_ref(
        self, key: str, digest: str, durable: bool = True
    ) -> None: ...

    def delete_ref(self, key: str) -> bool: ...

    def list_ref_keys(self) -> list[str]: ...


class LocalStoreBackend:
    """The content-addressed directory layout, extracted from the
    original ``ImageStore`` unchanged except for durability::

        <root>/objects/<aa>/<digest>   opaque payload (content address)
        <root>/index/<key digest>      text file naming an object digest
        <root>/quarantine/<digest>     objects fsck moved aside
        <root>/.lock                   advisory write/gc lock

    Writes are atomic **and durable**: the temp file is flushed and
    fsynced before ``os.replace``, and the parent directory is fsynced
    after (best-effort), so a crash right after a "successful" write
    cannot resurrect as a zero-length or torn object.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        self.index_dir = self.root / "index"
        self.quarantine_dir = self.root / "quarantine"
        self._lock_path = self.root / ".lock"
        self.writable = True
        try:
            self.objects_dir.mkdir(parents=True, exist_ok=True)
            self.index_dir.mkdir(parents=True, exist_ok=True)
        except OSError:
            # Missing and uncreatable, or read-only: reads may still work.
            self.writable = False

    def location(self) -> str:
        return str(self.root)

    @contextmanager
    def _locked_cm(self) -> Iterator[None]:
        if fcntl is None:
            yield
            return
        try:
            fh = open(self._lock_path, "a+b")
        except OSError:
            yield  # unwritable store: nothing to protect
            return
        try:
            fcntl.flock(fh.fileno(), fcntl.LOCK_EX)
            yield
        finally:
            try:
                fcntl.flock(fh.fileno(), fcntl.LOCK_UN)
            finally:
                fh.close()

    def locked(self) -> ContextManager[None]:
        return self._locked_cm()

    def _object_path(self, digest: str) -> Path:
        return self.objects_dir / digest[:2] / digest

    def _atomic_write(
        self, path: Path, data: bytes, durable: bool = True
    ) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=".tmp-")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(data)
                if durable:
                    fh.flush()
                    os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if durable:
            self._fsync_dir(path.parent)

    @staticmethod
    def _fsync_dir(path: Path) -> None:
        """Persist a rename by fsyncing its directory (best-effort: some
        filesystems refuse to fsync a directory fd)."""
        try:
            dirfd = os.open(path, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(dirfd)
        except OSError:
            pass
        finally:
            os.close(dirfd)

    # -- objects --------------------------------------------------------------

    def read_object(self, digest: str) -> bytes:
        if not plausible_digest(digest):
            raise FileNotFoundError(f"malformed object digest {digest!r}")
        return self._object_path(digest).read_bytes()

    def write_object(
        self, digest: str, data: bytes, durable: bool = True
    ) -> None:
        self._atomic_write(self._object_path(digest), data, durable=durable)

    def has_object(self, digest: str) -> bool:
        return (
            plausible_digest(digest)
            and self._object_path(digest).is_file()
        )

    def stat_object(self, digest: str) -> ObjectStat:
        if not plausible_digest(digest):
            raise FileNotFoundError(f"malformed object digest {digest!r}")
        st = self._object_path(digest).stat()
        return ObjectStat(digest=digest, size=st.st_size, mtime=st.st_mtime)

    def touch_object(self, digest: str) -> None:
        try:
            os.utime(self._object_path(digest))
        except OSError:
            pass

    def delete_object(self, digest: str) -> bool:
        try:
            self._object_path(digest).unlink()
        except OSError:
            return False
        return True

    def quarantine_object(self, digest: str) -> bool:
        src = self._object_path(digest)
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(src, self.quarantine_dir / digest)
            return True
        except OSError:
            return self.delete_object(digest)

    def list_objects(self) -> list[ObjectStat]:
        out: list[ObjectStat] = []
        for shard in self.objects_dir.iterdir():
            if not shard.is_dir():
                continue
            try:
                entries = list(shard.iterdir())
            except OSError:
                continue
            for obj in entries:
                if obj.name.startswith("."):
                    continue
                try:
                    st = obj.stat()
                except OSError:
                    continue
                out.append(
                    ObjectStat(
                        digest=obj.name, size=st.st_size, mtime=st.st_mtime
                    )
                )
        return out

    # -- refs -----------------------------------------------------------------

    def read_ref(self, key: str) -> str:
        return (self.index_dir / key).read_text().strip()

    def write_ref(
        self, key: str, digest: str, durable: bool = True
    ) -> None:
        self._atomic_write(
            self.index_dir / key, (digest + "\n").encode("ascii"),
            durable=durable,
        )

    def delete_ref(self, key: str) -> bool:
        try:
            (self.index_dir / key).unlink()
        except OSError:
            return False
        return True

    def list_ref_keys(self) -> list[str]:
        return sorted(
            ref.name
            for ref in self.index_dir.iterdir()
            if not ref.name.startswith(".")
        )


class ImageStore:
    """A content-addressed store of residual-code images.

    Integrity, trust, counters, and eviction policy live here; byte
    storage is delegated to a :class:`StoreBackend`
    (:class:`LocalStoreBackend` over ``root`` by default).

    ``max_bytes`` (optional) bounds the total object payload; exceeding
    it triggers an LRU :meth:`gc` after each write.
    """

    def __init__(
        self,
        root: str | os.PathLike | None = None,
        max_bytes: int | None = None,
        backend: StoreBackend | None = None,
    ):
        if backend is None:
            if root is None:
                raise ValueError("ImageStore needs a root or a backend")
            backend = LocalStoreBackend(root)
        self.backend = backend
        self.root = Path(root) if root is not None else Path(
            backend.location()
        )
        self.max_bytes = max_bytes
        self._counter_lock = threading.Lock()
        self._counters = {
            "hits": 0,
            "misses": 0,
            "writes": 0,
            "write_errors": 0,
            "read_errors": 0,
            "verify_failures": 0,
            "adopts": 0,
            "gc_removed_objects": 0,
            "gc_removed_refs": 0,
            "fsck_corrupt": 0,
        }

    @property
    def writable(self) -> bool:
        return self.backend.writable

    # -- local-backend conveniences (tests and the CLI reach for these) -------

    @property
    def objects_dir(self) -> Path:
        return self.backend.objects_dir  # type: ignore[attr-defined]

    @property
    def index_dir(self) -> Path:
        return self.backend.index_dir  # type: ignore[attr-defined]

    def _object_path(self, digest: str) -> Path:
        return self.backend._object_path(digest)  # type: ignore[attr-defined]

    def _atomic_write(self, path: Path, data: bytes) -> None:
        self.backend._atomic_write(path, data)  # type: ignore[attr-defined]

    # -- internals ------------------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        with self._counter_lock:
            self._counters[name] += n

    @contextmanager
    def _locked(self) -> Iterator[None]:
        with self.backend.locked():
            yield

    # -- the store API --------------------------------------------------------

    def put(self, key: StoreKey, residual: ResidualProgram) -> str | None:
        """Write ``residual`` through under ``key``.

        Returns the content digest, or ``None`` when the store is
        unwritable or the program is not imageable — persistence
        failures never propagate into specialization.
        """
        with obs.span("image.put", key=key.digest[:12]):
            if not self.writable:
                self._count("write_errors")
                obs.count("image.l2.write_error")
                return None
            try:
                data = encode_residual(residual)
            except CodecError:
                self._count("write_errors")
                obs.count("image.l2.write_error")
                return None
            digest = hashlib.sha256(data).hexdigest()
            try:
                with self._locked():
                    if not self.backend.has_object(digest):
                        self.backend.write_object(digest, data)
                    self.backend.write_ref(key.digest, digest)
                    if self.max_bytes is not None:
                        self._gc_locked(self.max_bytes)
            except OSError:
                self._count("write_errors")
                obs.count("image.l2.write_error")
                return None
            self._count("writes")
            obs.count("image.l2.write")
            obs.observe("image.l2.bytes", len(data))
            return digest

    def adopt(self, key: StoreKey, digest: str, data: bytes) -> bool:
        """Adopt already-encoded image bytes (e.g. replicated down from
        a remote tier) under ``key``.

        The content address is re-checked before anything touches the
        backend; the payload stays untrusted until :meth:`get` verifies
        it on the next load.  Returns ``True`` when stored.

        Adopted bytes are written **non-durably** (no fsync): unlike
        :meth:`put`, a replica is reconstructible from the tier it came
        from, every load re-checks the content address anyway, and the
        fsyncs would otherwise tax the remote *read* path.
        """
        if not self.writable:
            self._count("write_errors")
            return False
        if hashlib.sha256(data).hexdigest() != digest:
            self._count("write_errors")
            obs.count("image.l2.write_error")
            return False
        try:
            with self._locked():
                if not self.backend.has_object(digest):
                    self.backend.write_object(digest, data, durable=False)
                self.backend.write_ref(key.digest, digest, durable=False)
                if self.max_bytes is not None:
                    self._gc_locked(self.max_bytes)
        except OSError:
            self._count("write_errors")
            obs.count("image.l2.write_error")
            return False
        self._count("adopts")
        obs.count("image.l2.adopt")
        return True

    def read_object(self, digest: str) -> bytes | None:
        """Raw framed image bytes for ``digest`` (content-checked), or
        ``None`` — used by the tiered store's write-behind path."""
        try:
            data = self.backend.read_object(digest)
        except OSError:
            return None
        if hashlib.sha256(data).hexdigest() != digest:
            return None
        return data

    def get(
        self,
        key: StoreKey,
        verify: bool = True,
        check_fingerprint: bool = True,
    ) -> ResidualProgram | None:
        """Look ``key`` up; decode, and (by default) verify, on a hit.

        Returns ``None`` on a miss *or* on any integrity failure — a
        corrupt image, a torn ref, or an object gc'd between the index
        read and the load all behave like a miss, and the caller
        regenerates.
        """
        with obs.span("image.probe", key=key.digest[:12]) as sp:
            try:
                ref = self.backend.read_ref(key.digest)
            except OSError:
                self._count("misses")
                obs.count("image.l2.miss")
                return None
            if not plausible_digest(ref):
                # A torn ref write; gc() will prune it.
                self._count("read_errors")
                self._count("misses")
                obs.count("image.l2.read_error")
                obs.count("image.l2.miss")
                return None
            try:
                residual = self.load(
                    ref, verify=verify, check_fingerprint=check_fingerprint
                )
            except FileNotFoundError:
                self._count("misses")
                obs.count("image.l2.miss")
                return None
            except OSError:
                self._count("read_errors")
                self._count("misses")
                obs.count("image.l2.read_error")
                obs.count("image.l2.miss")
                return None
            except CodecError:
                self._count("read_errors")
                self._count("misses")
                obs.count("image.l2.read_error")
                obs.count("image.l2.miss")
                return None
            except VerificationError:
                self._count("verify_failures")
                self._count("misses")
                obs.count("image.l2.verify_failure")
                obs.count("image.l2.miss")
                return None
            self._count("hits")
            obs.count("image.l2.hit")
            sp.set(hit=True)
            return residual

    def load(
        self,
        digest: str,
        verify: bool = True,
        check_fingerprint: bool = True,
    ) -> ResidualProgram:
        """Load an image by content digest.  Raises on any failure:
        :class:`FileNotFoundError`, :class:`CodecError` (corruption,
        staleness, content-address mismatch), or
        :class:`~repro.vm.verify.VerificationError` when the loaded
        object code does not verify."""
        with obs.span("image.load", digest=digest[:12]):
            data = self.backend.read_object(digest)
            actual = hashlib.sha256(data).hexdigest()
            if actual != digest:
                raise CodecError(
                    f"content-address mismatch: object named {digest[:12]}..."
                    f" hashes to {actual[:12]}..."
                )
            residual = decode_residual(
                data, check_fingerprint=check_fingerprint
            )
            if verify:
                with obs.span("image.verify_on_load"):
                    self._verify(residual)
        residual.stats["image_digest"] = digest
        self.backend.touch_object(digest)  # LRU recency for gc()
        return residual

    @staticmethod
    def _verify(residual: ResidualProgram) -> None:
        verify_residual(residual)

    def ls(self, strict: bool = False) -> list[dict[str, Any]]:
        """Describe every indexed image: key, object digest, size,
        mtime, and — when decodable — goal name, kind, and parameters.

        By default an unreadable store degrades to an empty listing
        (consistent with reads elsewhere: a broken store behaves like a
        miss).  ``strict=True`` raises :class:`OSError` instead — the
        CLI's ops story wants "this store is broken", not "this store
        is empty"."""
        entries: list[dict[str, Any]] = []
        try:
            keys = self.backend.list_ref_keys()
        except OSError as exc:
            if strict:
                raise OSError(
                    f"cannot read image store at {self.root}: {exc}"
                ) from exc
            return entries
        for key in keys:
            entry: dict[str, Any] = {"key": key}
            try:
                digest = self.backend.read_ref(key)
                entry["object"] = digest
                st = self.backend.stat_object(digest)
                entry["bytes"] = st.size
                entry["mtime"] = st.mtime
                residual = decode_residual(
                    self.backend.read_object(digest), check_fingerprint=False
                )
                entry["goal"] = residual.goal.name
                entry["params"] = [p.name for p in residual.goal_params]
                entry["kind"] = (
                    "object" if residual.machine is not None else "source"
                )
            except (OSError, CodecError) as exc:
                entry["error"] = str(exc)
            entries.append(entry)
        return entries

    def gc(
        self, max_bytes: int | None = None, dry_run: bool = False
    ) -> dict[str, Any]:
        """Evict least-recently-used objects beyond the size budget and
        drop index refs that dangle — refs to missing objects *and*
        torn/malformed refs a crashed writer left behind.

        ``dry_run`` reports what *would* be evicted — the object digests
        and the bytes that would be reclaimed — without unlinking
        anything (the report gains ``would_remove`` and keeps
        ``bytes_after`` at the projected post-gc size).
        """
        limit = self.max_bytes if max_bytes is None else max_bytes
        with self._locked():
            return self._gc_locked(limit, dry_run=dry_run)

    def _gc_locked(
        self, limit: int | None, dry_run: bool = False
    ) -> dict[str, Any]:
        try:
            objects = sorted(
                self.backend.list_objects(),
                key=lambda st: (st.mtime, st.size, st.digest),
            )
        except OSError:
            report: dict[str, Any] = {
                "removed_objects": 0, "removed_refs": 0,
                "bytes_before": 0, "bytes_after": 0,
            }
            if dry_run:
                report["dry_run"] = True
                report["would_remove"] = []
            return report
        total = sum(st.size for st in objects)
        before = total
        removed = 0
        doomed: set[str] = set()
        would_remove: list[dict[str, Any]] = []
        if limit is not None and total > limit:
            for st in objects:  # oldest first
                if total <= limit:
                    break
                if dry_run:
                    would_remove.append(
                        {"object": st.digest, "bytes": st.size}
                    )
                elif not self.backend.delete_object(st.digest):
                    continue
                doomed.add(st.digest)
                total -= st.size
                removed += 1
        removed_refs = 0
        try:
            keys = self.backend.list_ref_keys()
        except OSError:
            keys = []
        for key in keys:
            try:
                digest = self.backend.read_ref(key)
            except OSError:
                continue
            dangling = (
                not plausible_digest(digest)  # torn/garbage ref
                or digest in doomed
                or not self.backend.has_object(digest)
            )
            if dangling:
                if dry_run:
                    removed_refs += 1
                elif self.backend.delete_ref(key):
                    removed_refs += 1
        if not dry_run:
            if removed:
                self._count("gc_removed_objects", removed)
            if removed_refs:
                self._count("gc_removed_refs", removed_refs)
        report = {
            "removed_objects": removed,
            "removed_refs": removed_refs,
            "bytes_before": before,
            "bytes_after": total,
        }
        if dry_run:
            report["dry_run"] = True
            report["would_remove"] = would_remove
        return report

    def fsck(self) -> dict[str, Any]:
        """Scan every object for corruption and repair the store.

        Each object is re-hashed against its content address and its
        framing is decoded (CRC-checked); anything torn — e.g. a
        zero-length object left by a crash before the durability fix —
        is quarantined (moved aside, or deleted when that fails) and the
        index refs pointing at it are pruned, so later gets miss cleanly
        instead of paying a read error forever.
        """
        with self._locked():
            checked = 0
            corrupt: list[str] = []
            try:
                objects = self.backend.list_objects()
            except OSError:
                objects = []
            for st in objects:
                checked += 1
                try:
                    data = self.backend.read_object(st.digest)
                except OSError:
                    corrupt.append(st.digest)
                    continue
                if hashlib.sha256(data).hexdigest() != st.digest:
                    corrupt.append(st.digest)
                    continue
                try:
                    decode_residual(data, check_fingerprint=False)
                except CodecError:
                    corrupt.append(st.digest)
            quarantined = 0
            for digest in corrupt:
                if self.backend.quarantine_object(digest):
                    quarantined += 1
            corrupt_set = set(corrupt)
            removed_refs = 0
            try:
                keys = self.backend.list_ref_keys()
            except OSError:
                keys = []
            for key in keys:
                try:
                    digest = self.backend.read_ref(key)
                except OSError:
                    continue
                if not plausible_digest(digest) or digest in corrupt_set:
                    if self.backend.delete_ref(key):
                        removed_refs += 1
        if corrupt:
            self._count("fsck_corrupt", len(corrupt))
            obs.count("image.l2.fsck_corrupt", len(corrupt))
        return {
            "checked": checked,
            "corrupt": corrupt,
            "quarantined": quarantined,
            "removed_refs": removed_refs,
            "ok": not corrupt,
        }

    def stats(self) -> dict[str, Any]:
        """A snapshot of the store counters."""
        with self._counter_lock:
            snapshot: dict[str, Any] = dict(self._counters)
        snapshot["writable"] = self.writable
        snapshot["root"] = str(self.root)
        return snapshot
