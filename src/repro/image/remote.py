"""A remote L3 object tier for the image store, and the tiering glue.

``ObjectServer`` exposes a :class:`~repro.image.store.LocalStoreBackend`
over TCP using the same length-prefixed JSON frame codec as the
specialization service (:mod:`repro.serve.protocol`), with four new
frame types:

``obj_get``
    By ``digest`` or by index ``key``; answers an ``obj_result`` with
    base64 payload bytes on a hit.  The server re-hashes before serving
    so a corrupt object on the server degrades to a miss, never to
    poisoned bytes (clients re-check and re-verify anyway — remote
    images stay untrusted until verify-on-load passes).
``obj_put``
    Content-addressed upload: the server re-hashes the payload against
    the claimed digest and refuses mismatches, dedups by digest, and
    optionally writes a ``key -> digest`` index ref in the same request.
    A ``data``-less ``obj_put`` writes just the ref (used by sync when
    the object is already present).
``obj_stat``
    Existence/size/recency probe by digest or key, without payload.
``obj_sync``
    The full inventory — object stats plus the ref index — powering
    bulk ``image sync`` (push) and ``image prefetch`` (pull).

``RemoteStoreClient`` speaks this protocol and implements the
:class:`~repro.image.store.StoreBackend` protocol, so
``ImageStore(backend=RemoteStoreClient(...))`` works directly; all its
failures surface as :class:`RemoteStoreError` (an ``OSError``, so store
code treats transport trouble exactly like disk trouble).  The client
keeps one connection open, resets it on any transport error (a stream
that died mid-frame may hold half a message — reusing it would desync),
and retries idempotent exchanges with bounded exponential backoff.

``TieredStore`` composes L2 (local ``ImageStore``) over L3 (remote):

* **read-through** — an L2 miss probes L3; a hit is decoded, verified,
  counted, and *replicated down* into L2 so the next process on this
  machine pays only the local price;
* **negative cache** — an L3 miss is remembered for ``negative_ttl``
  seconds so cold keys do not hammer the network;
* **circuit breaking** — a transport error marks the remote down for
  ``retry_interval`` seconds; while down, reads skip straight to a miss
  and the specializer proceeds locally;
* **async write-behind** — puts land in L2 synchronously and are pushed
  to L3 by a worker thread through a bounded queue (saturation drops
  the oldest-work-not-yet-queued with a counter, never blocks the
  specializer); the worker doubles as the reconnect probe, so a queued
  backlog drains as soon as the remote comes back.
"""

from __future__ import annotations

import base64
import hashlib
import socket
import threading
import time
from contextlib import contextmanager, nullcontext
from pathlib import Path
from queue import Empty, Queue
from typing import Any, ContextManager, Iterator

from repro import obs
from repro.image.codec import CodecError, decode_residual, encode_residual
from repro.image.store import (
    ImageStore,
    LocalStoreBackend,
    ObjectStat,
    StoreKey,
    plausible_digest,
    verify_residual,
)
from repro.pe.backend import ResidualProgram
from repro.serve.protocol import (
    E_BAD_REQUEST,
    E_INTERNAL,
    FrameError,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    error_frame,
    recv_frame,
    send_frame,
)
from repro.vm.verify import VerificationError


class RemoteStoreError(OSError):
    """A remote-store exchange that failed.

    ``retryable`` distinguishes transport trouble (timeouts, resets,
    torn frames — worth retrying once the peer is back) from typed
    refusals (digest mismatch, oversized frame — retrying is useless).
    """

    def __init__(self, message: str, retryable: bool = True):
        super().__init__(message)
        self.retryable = retryable


def parse_endpoint(spec: "str | tuple[str, int]") -> tuple[str, int]:
    """``"host:port"`` (or an already-split tuple) -> ``(host, port)``."""
    if isinstance(spec, tuple):
        host, port = spec
        return str(host), int(port)
    host, sep, port = spec.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"remote store endpoint must be host:port, got {spec!r}"
        )
    try:
        number = int(port)
    except ValueError:
        raise ValueError(
            f"remote store endpoint has a non-numeric port: {spec!r}"
        ) from None
    if not 0 < number < 65536:
        raise ValueError(
            f"remote store endpoint port out of range: {spec!r}"
        )
    return host, number


def _b64(data: bytes) -> str:
    return base64.b64encode(data).decode("ascii")


def _unb64(text: Any) -> bytes:
    if not isinstance(text, str):
        raise RemoteStoreError(
            f"frame data field must be a base64 string,"
            f" got {type(text).__name__}", retryable=False,
        )
    try:
        return base64.b64decode(text.encode("ascii"), validate=True)
    except (ValueError, UnicodeEncodeError) as exc:
        raise RemoteStoreError(
            f"frame data field is not valid base64: {exc}", retryable=False
        ) from None


# -- the server -------------------------------------------------------------


class ObjectServer:
    """A threaded TCP object server over a local store directory.

    One accept thread plus one handler thread per connection (bounded by
    ``max_connections``), same lifecycle shape as the specialization
    server.  Uploads are content-verified before they touch disk; the
    server never decodes or executes images — it is a dumb, durable
    byte tier, and every consumer re-verifies on load.
    """

    def __init__(
        self,
        store_dir: "str | Path",
        host: str = "127.0.0.1",
        port: int = 0,
        max_connections: int = 64,
        max_frame_bytes: int = MAX_FRAME_BYTES,
        idle_timeout: float = 300.0,
    ):
        self.backend = LocalStoreBackend(store_dir)
        self.host = host
        self._requested_port = port
        self.port: int | None = None
        self.max_connections = max_connections
        self.max_frame_bytes = max_frame_bytes
        self.idle_timeout = idle_timeout
        self._lock = threading.Lock()
        self._counters = {
            "connections": 0,
            "requests": 0,
            "get_hits": 0,
            "get_misses": 0,
            "puts": 0,
            "dedups": 0,
            "ref_writes": 0,
            "stats_probes": 0,
            "bad_requests": 0,
            "frame_errors": 0,
        }
        self._listener: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._handlers: set[threading.Thread] = set()
        self._connections: set[socket.socket] = set()
        self._closing = threading.Event()

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "ObjectServer":
        listener = socket.create_server(
            (self.host, self._requested_port), reuse_port=False
        )
        listener.listen(128)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-objstore-accept",
            daemon=True,
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._closing.set()
        if self._listener is not None:
            # shutdown() wakes a thread blocked in accept(); close()
            # alone leaves it blocked and the port in LISTEN (the
            # in-flight accept keeps the socket alive), so a restart
            # on the same port would fail with EADDRINUSE.
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
        with self._lock:
            connections = list(self._connections)
            handlers = list(self._handlers)
        for conn in connections:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        for thread in handlers:
            thread.join(timeout=5)

    def __enter__(self) -> "ObjectServer":
        return self.start()

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    def _count(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] += n

    # -- connections ----------------------------------------------------------

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._closing.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                break  # listener closed by stop()
            with self._lock:
                if len(self._connections) >= self.max_connections:
                    admitted = False
                else:
                    self._connections.add(conn)
                    admitted = True
            if not admitted:
                try:
                    conn.close()
                except OSError:
                    pass
                continue
            self._count("connections")
            obs.count("image.l3.server.connection")
            thread = threading.Thread(
                target=self._handle_connection, args=(conn,),
                name="repro-objstore-conn", daemon=True,
            )
            with self._lock:
                self._handlers.add(thread)
            thread.start()

    def _handle_connection(self, conn: socket.socket) -> None:
        try:
            conn.settimeout(self.idle_timeout)
            while not self._closing.is_set():
                try:
                    frame = recv_frame(conn, max_bytes=self.max_frame_bytes)
                except FrameError as exc:
                    self._count("frame_errors")
                    obs.count("image.l3.server.frame_error")
                    try:
                        send_frame(conn, error_frame(
                            "BAD_FRAME", str(exc)
                        ), max_bytes=self.max_frame_bytes)
                    except OSError:
                        pass
                    return
                except (TimeoutError, OSError):
                    return  # idle timeout or peer reset
                if frame is None:
                    return  # clean EOF
                response = self._dispatch(frame)
                try:
                    send_frame(
                        conn, response, max_bytes=self.max_frame_bytes
                    )
                except FrameError:
                    try:
                        send_frame(conn, error_frame(
                            E_INTERNAL,
                            "response exceeded the frame size limit",
                        ), max_bytes=self.max_frame_bytes)
                    except OSError:
                        return
                except OSError:
                    return
        finally:
            with self._lock:
                self._connections.discard(conn)
                self._handlers.discard(threading.current_thread())
            try:
                conn.close()
            except OSError:
                pass

    # -- dispatch -------------------------------------------------------------

    def _dispatch(self, frame: dict[str, Any]) -> dict[str, Any]:
        self._count("requests")
        kind = frame.get("type")
        obs.count(
            f"image.l3.server.request.{kind}" if isinstance(kind, str)
            else "image.l3.server.request.invalid"
        )
        try:
            if kind == "obj_get":
                return self._handle_get(frame)
            if kind == "obj_put":
                return self._handle_put(frame)
            if kind == "obj_stat":
                return self._handle_stat(frame)
            if kind == "obj_sync":
                return self._handle_sync()
            if kind == "stats":
                return {
                    "type": "stats_result",
                    "v": PROTOCOL_VERSION,
                    "stats": self.stats(),
                }
            if kind == "ping":
                return {"type": "pong", "v": PROTOCOL_VERSION}
            self._count("bad_requests")
            return error_frame(
                E_BAD_REQUEST, f"unknown request type {kind!r}"
            )
        except OSError as exc:
            # Disk trouble on the server must not kill the handler
            # thread; the client sees a typed, retryable error.
            obs.count("image.l3.server.storage_error")
            return error_frame(
                E_INTERNAL, f"object storage failed: {exc}", retryable=True
            )

    def _resolve_digest(self, frame: dict[str, Any]) -> "str | None":
        """The object digest a request names — directly, or via a key
        ref.  ``None`` when absent/dangling; raises ``_BadRequest`` via
        an error return from the caller for malformed input."""
        digest = frame.get("digest")
        if digest is not None:
            if not isinstance(digest, str) or not plausible_digest(digest):
                raise _BadField(f"malformed object digest {digest!r}")
            return digest
        key = frame.get("key")
        if key is None:
            raise _BadField("request needs a digest or a key")
        if not isinstance(key, str) or not plausible_digest(key):
            raise _BadField(f"malformed index key {key!r}")
        try:
            ref = self.backend.read_ref(key)
        except OSError:
            return None
        if not plausible_digest(ref):
            return None  # torn ref on the server: a miss, gc's problem
        return ref

    def _handle_get(self, frame: dict[str, Any]) -> dict[str, Any]:
        miss = {
            "type": "obj_result", "v": PROTOCOL_VERSION,
            "found": False, "digest": None, "data": None,
        }
        try:
            digest = self._resolve_digest(frame)
        except _BadField as exc:
            self._count("bad_requests")
            return error_frame(E_BAD_REQUEST, str(exc))
        if digest is None:
            self._count("get_misses")
            obs.count("image.l3.server.miss")
            return miss
        try:
            data = self.backend.read_object(digest)
        except OSError:
            self._count("get_misses")
            obs.count("image.l3.server.miss")
            return miss
        if hashlib.sha256(data).hexdigest() != digest:
            # Corrupt at rest: serve a miss, leave repair to fsck.
            self._count("get_misses")
            obs.count("image.l3.server.corrupt")
            return miss
        self.backend.touch_object(digest)
        self._count("get_hits")
        obs.count("image.l3.server.hit")
        return {
            "type": "obj_result", "v": PROTOCOL_VERSION,
            "found": True, "digest": digest, "data": _b64(data),
        }

    def _handle_put(self, frame: dict[str, Any]) -> dict[str, Any]:
        digest = frame.get("digest")
        if not isinstance(digest, str) or not plausible_digest(digest):
            self._count("bad_requests")
            return error_frame(
                E_BAD_REQUEST, f"malformed object digest {digest!r}"
            )
        key = frame.get("key")
        if key is not None and (
            not isinstance(key, str) or not plausible_digest(key)
        ):
            self._count("bad_requests")
            return error_frame(E_BAD_REQUEST, f"malformed index key {key!r}")
        raw = frame.get("data")
        stored = deduped = False
        with self.backend.locked():
            present = self.backend.has_object(digest)
            if raw is None:
                if not present:
                    # A ref-only put for an object we don't hold: tell
                    # the client to upload (sync's stat-first fast path).
                    return {
                        "type": "obj_put_result", "v": PROTOCOL_VERSION,
                        "stored": False, "deduped": False,
                        "indexed": False, "missing": True,
                    }
                deduped = True
            elif present:
                deduped = True
                self._count("dedups")
                obs.count("image.l3.server.dedup")
            else:
                try:
                    data = _unb64(raw)
                except RemoteStoreError as exc:
                    self._count("bad_requests")
                    return error_frame(E_BAD_REQUEST, str(exc))
                if hashlib.sha256(data).hexdigest() != digest:
                    # The content-address check is the server's whole
                    # trust model: refuse, don't quarantine-later.
                    self._count("bad_requests")
                    obs.count("image.l3.server.digest_mismatch")
                    return error_frame(
                        E_BAD_REQUEST,
                        f"payload does not hash to {digest[:12]}...",
                    )
                self.backend.write_object(digest, data)
                stored = True
                self._count("puts")
                obs.count("image.l3.server.put")
                obs.observe("image.l3.server.bytes", len(data))
            indexed = False
            if key is not None:
                self.backend.write_ref(key, digest)
                indexed = True
                self._count("ref_writes")
        return {
            "type": "obj_put_result", "v": PROTOCOL_VERSION,
            "stored": stored, "deduped": deduped,
            "indexed": indexed, "missing": False,
        }

    def _handle_stat(self, frame: dict[str, Any]) -> dict[str, Any]:
        self._count("stats_probes")
        try:
            digest = self._resolve_digest(frame)
        except _BadField as exc:
            self._count("bad_requests")
            return error_frame(E_BAD_REQUEST, str(exc))
        miss = {
            "type": "obj_stat_result", "v": PROTOCOL_VERSION,
            "found": False, "digest": None, "bytes": None, "mtime": None,
        }
        if digest is None:
            return miss
        try:
            st = self.backend.stat_object(digest)
        except OSError:
            return miss
        return {
            "type": "obj_stat_result", "v": PROTOCOL_VERSION,
            "found": True, "digest": digest,
            "bytes": st.size, "mtime": st.mtime,
        }

    def _handle_sync(self) -> dict[str, Any]:
        try:
            objects = self.backend.list_objects()
        except OSError:
            objects = []
        refs: dict[str, str] = {}
        try:
            keys = self.backend.list_ref_keys()
        except OSError:
            keys = []
        for key in keys:
            try:
                ref = self.backend.read_ref(key)
            except OSError:
                continue
            if plausible_digest(ref):
                refs[key] = ref
        return {
            "type": "obj_sync_result", "v": PROTOCOL_VERSION,
            "objects": [
                {"digest": st.digest, "bytes": st.size, "mtime": st.mtime}
                for st in sorted(objects, key=lambda st: st.digest)
            ],
            "refs": refs,
        }

    def stats(self) -> dict[str, Any]:
        with self._lock:
            counters = dict(self._counters)
            active = len(self._connections)
        return {
            "host": self.host,
            "port": self.port,
            "root": self.backend.location(),
            "active_connections": active,
            "counters": counters,
        }


class _BadField(ValueError):
    """Internal: a malformed digest/key field in an object request."""


# -- the client -------------------------------------------------------------


class RemoteStoreClient:
    """A :class:`~repro.image.store.StoreBackend` over the object-server
    protocol.

    One connection is kept open across exchanges.  **Any transport-level
    failure resets it** — after a timeout or torn frame the stream may
    hold half a message, and reusing it would desync every later
    exchange (the same discipline the specialization client needed).
    Exchanges are idempotent (content-addressed), so they are retried
    ``retries`` times with exponential backoff before
    :class:`RemoteStoreError` escapes.
    """

    writable = True

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 5.0,
        retries: int = 2,
        backoff: float = 0.05,
        max_frame_bytes: int = MAX_FRAME_BYTES,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.max_frame_bytes = max_frame_bytes
        self._sock: socket.socket | None = None
        self._io_lock = threading.Lock()

    # -- transport ------------------------------------------------------------

    def location(self) -> str:
        return f"{self.host}:{self.port}"

    def close(self) -> None:
        with self._io_lock:
            self._close_locked()

    def _close_locked(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _connect_locked(self) -> socket.socket:
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
        return self._sock

    def _request(self, payload: dict[str, Any]) -> dict[str, Any]:
        """One request/response exchange, with reset-on-error and
        bounded retry/backoff.  Raises :class:`RemoteStoreError`."""
        last: Exception | None = None
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(self.backoff * (2 ** (attempt - 1)))
                obs.count("image.l3.retry")
            with self._io_lock:
                try:
                    sock = self._connect_locked()
                    send_frame(
                        sock, payload, max_bytes=self.max_frame_bytes
                    )
                    response = recv_frame(
                        sock, max_bytes=self.max_frame_bytes
                    )
                except FrameError as exc:
                    # Torn or garbage stream — or our own payload is
                    # over the frame bound, which no retry will fix.
                    self._close_locked()
                    if "over the" in str(exc) and "limit" in str(exc):
                        raise RemoteStoreError(
                            str(exc), retryable=False
                        ) from exc
                    last = exc
                    continue
                except OSError as exc:
                    self._close_locked()
                    last = exc
                    continue
                if response is None:
                    self._close_locked()
                    last = RemoteStoreError(
                        "object server closed the connection"
                    )
                    continue
            if response.get("type") == "error":
                # A typed refusal arrives on an in-sync stream; keep it.
                raise RemoteStoreError(
                    f"object server refused"
                    f" {payload.get('type')}: [{response.get('code')}]"
                    f" {response.get('message')}",
                    retryable=bool(response.get("retryable", False)),
                )
            return response
        raise RemoteStoreError(
            f"object server at {self.location()} unreachable after"
            f" {self.retries + 1} attempt(s): {last}"
        ) from last

    def _expect(
        self, payload: dict[str, Any], response_type: str
    ) -> dict[str, Any]:
        response = self._request(payload)
        if response.get("type") != response_type:
            self.close()  # the peer is confused; start clean
            raise RemoteStoreError(
                f"expected a {response_type} frame,"
                f" got {response.get('type')!r}", retryable=False,
            )
        return response

    # -- protocol verbs -------------------------------------------------------

    def ping(self) -> bool:
        try:
            self._expect(
                {"type": "ping", "v": PROTOCOL_VERSION}, "pong"
            )
            return True
        except RemoteStoreError:
            return False

    def fetch(
        self, key: "str | None" = None, digest: "str | None" = None
    ) -> "tuple[str, bytes] | None":
        """One round trip: ``(digest, payload)`` on a hit, ``None`` on a
        miss.  Raises :class:`RemoteStoreError` on transport failure."""
        frame: dict[str, Any] = {"type": "obj_get", "v": PROTOCOL_VERSION}
        if digest is not None:
            frame["digest"] = digest
        else:
            frame["key"] = key
        response = self._expect(frame, "obj_result")
        if not response.get("found"):
            return None
        got = response.get("digest")
        if not isinstance(got, str) or not plausible_digest(got):
            raise RemoteStoreError(
                f"object server returned a malformed digest {got!r}",
                retryable=False,
            )
        return got, _unb64(response.get("data"))

    def push(
        self, digest: str, data: "bytes | None", key: "str | None" = None
    ) -> dict[str, Any]:
        """Upload (or, with ``data=None``, just index) one object."""
        frame: dict[str, Any] = {
            "type": "obj_put", "v": PROTOCOL_VERSION, "digest": digest,
        }
        if data is not None:
            frame["data"] = _b64(data)
        if key is not None:
            frame["key"] = key
        return self._expect(frame, "obj_put_result")

    def stat(
        self, key: "str | None" = None, digest: "str | None" = None
    ) -> "ObjectStat | None":
        frame: dict[str, Any] = {"type": "obj_stat", "v": PROTOCOL_VERSION}
        if digest is not None:
            frame["digest"] = digest
        else:
            frame["key"] = key
        response = self._expect(frame, "obj_stat_result")
        if not response.get("found"):
            return None
        return ObjectStat(
            digest=str(response.get("digest")),
            size=int(response.get("bytes") or 0),
            mtime=float(response.get("mtime") or 0.0),
        )

    def inventory(self) -> "tuple[list[ObjectStat], dict[str, str]]":
        response = self._expect(
            {"type": "obj_sync", "v": PROTOCOL_VERSION}, "obj_sync_result"
        )
        objects = []
        for entry in response.get("objects") or []:
            digest = entry.get("digest")
            if isinstance(digest, str) and plausible_digest(digest):
                objects.append(ObjectStat(
                    digest=digest,
                    size=int(entry.get("bytes") or 0),
                    mtime=float(entry.get("mtime") or 0.0),
                ))
        refs = {
            key: ref
            for key, ref in (response.get("refs") or {}).items()
            if isinstance(key, str) and plausible_digest(key)
            and isinstance(ref, str) and plausible_digest(ref)
        }
        return objects, refs

    def remote_stats(self) -> dict[str, Any]:
        response = self._expect(
            {"type": "stats", "v": PROTOCOL_VERSION}, "stats_result"
        )
        stats = response.get("stats")
        return stats if isinstance(stats, dict) else {}

    # -- the StoreBackend protocol --------------------------------------------

    def locked(self) -> ContextManager[None]:
        return nullcontext()  # the server serializes its own writes

    def read_object(self, digest: str) -> bytes:
        hit = self.fetch(digest=digest)
        if hit is None:
            raise FileNotFoundError(
                f"object {digest[:12]}... not on {self.location()}"
            )
        return hit[1]

    def write_object(
        self, digest: str, data: bytes, durable: bool = True
    ) -> None:
        # durable is a local-disk concern; the server owns its fsyncs
        self.push(digest, data)

    def has_object(self, digest: str) -> bool:
        return self.stat(digest=digest) is not None

    def stat_object(self, digest: str) -> ObjectStat:
        st = self.stat(digest=digest)
        if st is None:
            raise FileNotFoundError(
                f"object {digest[:12]}... not on {self.location()}"
            )
        return st

    def touch_object(self, digest: str) -> None:
        pass  # the server touches on every served get

    def delete_object(self, digest: str) -> bool:
        return False  # the remote tier never deletes on request

    def quarantine_object(self, digest: str) -> bool:
        return False  # fsck runs server-side, on the server's store

    def list_objects(self) -> list[ObjectStat]:
        return self.inventory()[0]

    def read_ref(self, key: str) -> str:
        st = self.stat(key=key)
        if st is None:
            raise FileNotFoundError(
                f"key {key[:12]}... not on {self.location()}"
            )
        return st.digest

    def write_ref(
        self, key: str, digest: str, durable: bool = True
    ) -> None:
        result = self.push(digest, None, key=key)
        if result.get("missing"):
            raise RemoteStoreError(
                f"cannot index {key[:12]}...: object {digest[:12]}..."
                f" is not on {self.location()} (upload it first)",
                retryable=False,
            )

    def delete_ref(self, key: str) -> bool:
        return False

    def list_ref_keys(self) -> list[str]:
        return sorted(self.inventory()[1])


# -- the tiered store -------------------------------------------------------


class TieredStore:
    """L2 (local) over L3 (remote) with read-through, negative caching,
    circuit breaking, and asynchronous write-behind.

    Drop-in for :class:`~repro.image.store.ImageStore` where the
    generating extension is concerned (``get``/``put``/``stats``/
    ``gc``/``ls``); everything byte-level on the local side still goes
    through the local store's backend.  ``local`` may be ``None``
    (remote-only worker: every read is an L3 probe, every put only
    write-behind).
    """

    def __init__(
        self,
        local: "ImageStore | None",
        remote: RemoteStoreClient,
        negative_ttl: float = 30.0,
        retry_interval: float = 1.0,
        max_queue: int = 256,
    ):
        self.local = local
        self.remote = remote
        self.negative_ttl = negative_ttl
        self.retry_interval = retry_interval
        self.max_queue = max_queue
        self._lock = threading.Lock()
        self._counters = {
            "remote_hits": 0,
            "remote_misses": 0,
            "remote_errors": 0,
            "remote_verify_failures": 0,
            "negative_hits": 0,
            "skipped_down": 0,
            "replicated": 0,
            "wb_enqueued": 0,
            "wb_flushed": 0,
            "wb_deduped": 0,
            "wb_dropped": 0,
            "wb_retries": 0,
        }
        self._negative: dict[str, float] = {}
        self._down_until = 0.0
        self._queue: Queue = Queue()
        self._stop = threading.Event()
        self._worker: threading.Thread | None = None

    # -- plumbing -------------------------------------------------------------

    def _count(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] += n

    def _mark_down(self) -> None:
        with self._lock:
            self._down_until = time.monotonic() + self.retry_interval
        obs.count("image.l3.down")

    def _mark_up(self) -> None:
        with self._lock:
            self._down_until = 0.0

    def _is_down(self) -> bool:
        with self._lock:
            return time.monotonic() < self._down_until

    # -- reads ----------------------------------------------------------------

    def get(
        self,
        key: StoreKey,
        verify: bool = True,
        check_fingerprint: bool = True,
    ) -> "ResidualProgram | None":
        if self.local is not None:
            residual = self.local.get(
                key, verify=verify, check_fingerprint=check_fingerprint
            )
            if residual is not None:
                return residual
        return self._get_remote(
            key, verify=verify, check_fingerprint=check_fingerprint
        )

    def _get_remote(
        self, key: StoreKey, verify: bool, check_fingerprint: bool
    ) -> "ResidualProgram | None":
        now = time.monotonic()
        with self._lock:
            expiry = self._negative.get(key.digest)
            if expiry is not None:
                if now < expiry:
                    self._counters["negative_hits"] += 1
                    obs.count("image.l3.negative_hit")
                    return None
                del self._negative[key.digest]
            if now < self._down_until:
                self._counters["skipped_down"] += 1
                obs.count("image.l3.skipped_down")
                return None
        with obs.span("image.l3.fetch", key=key.digest[:12]) as sp:
            try:
                hit = self.remote.fetch(key=key.digest)
            except RemoteStoreError:
                self._mark_down()
                self._count("remote_errors")
                obs.count("image.l3.error")
                return None
            self._mark_up()
            if hit is None:
                with self._lock:
                    self._negative[key.digest] = (
                        time.monotonic() + self.negative_ttl
                    )
                self._count("remote_misses")
                obs.count("image.l3.miss")
                return None
            digest, data = hit
            if hashlib.sha256(data).hexdigest() != digest:
                self._count("remote_errors")
                obs.count("image.l3.error")
                return None
            try:
                residual = decode_residual(
                    data, check_fingerprint=check_fingerprint
                )
                if verify:
                    with obs.span("image.verify_on_load"):
                        verify_residual(residual)
            except CodecError:
                self._count("remote_errors")
                obs.count("image.l3.error")
                return None
            except VerificationError:
                self._count("remote_verify_failures")
                obs.count("image.l3.verify_failure")
                return None
            sp.set(hit=True)
        residual.stats["image_digest"] = digest
        residual.stats["l3_hit"] = True
        if self.local is not None and self.local.writable:
            if self.local.adopt(key, digest, data):
                self._count("replicated")
                obs.count("image.tier.replicate")
        self._count("remote_hits")
        obs.count("image.l3.hit")
        return residual

    def load(
        self,
        digest: str,
        verify: bool = True,
        check_fingerprint: bool = True,
    ) -> ResidualProgram:
        if self.local is None:
            raise FileNotFoundError(digest)
        return self.local.load(
            digest, verify=verify, check_fingerprint=check_fingerprint
        )

    # -- writes ---------------------------------------------------------------

    def put(
        self, key: StoreKey, residual: ResidualProgram
    ) -> "str | None":
        digest: str | None = None
        data: bytes | None = None
        if self.local is not None:
            digest = self.local.put(key, residual)
            if digest is not None:
                data = self.local.read_object(digest)
        if data is None:
            try:
                data = encode_residual(residual)
            except CodecError:
                return digest
            digest = hashlib.sha256(data).hexdigest()
        with self._lock:
            self._negative.pop(key.digest, None)
        self._enqueue(key.digest, digest, data)
        return digest

    def _enqueue(self, key_digest: str, digest: str, data: bytes) -> None:
        with self._lock:
            if self._stop.is_set():
                return
            if self._queue.qsize() >= self.max_queue:
                # Saturated: the specializer never blocks on the
                # network.  L2 already has the image; sync picks up
                # anything dropped here.
                self._counters["wb_dropped"] += 1
                obs.count("image.l3.write_behind.drop")
                return
            self._queue.put((key_digest, digest, data))
            self._counters["wb_enqueued"] += 1
            obs.count("image.l3.write_behind.enqueue")
            if self._worker is None or not self._worker.is_alive():
                self._worker = threading.Thread(
                    target=self._worker_loop,
                    name="repro-store-write-behind", daemon=True,
                )
                self._worker.start()

    def _worker_loop(self) -> None:
        while True:
            try:
                item = self._queue.get(timeout=0.2)
            except Empty:
                if self._stop.is_set():
                    return
                continue
            try:
                if item is None:
                    return  # shutdown sentinel
                self._push_until_done(*item)
            finally:
                self._queue.task_done()

    def _push_until_done(
        self, key_digest: str, digest: str, data: bytes
    ) -> None:
        """Push one image, waiting out down periods; the worker is the
        reconnect probe, so backlog drains as soon as L3 is back."""
        while not self._stop.is_set():
            with self._lock:
                wait = self._down_until - time.monotonic()
            if wait > 0:
                if self._stop.wait(min(wait, self.retry_interval)):
                    return
                continue
            try:
                with obs.span("image.l3.push", digest=digest[:12]):
                    result = self.remote.push(digest, data, key=key_digest)
            except RemoteStoreError as exc:
                if not exc.retryable:
                    self._count("wb_dropped")
                    obs.count("image.l3.write_behind.drop")
                    return
                self._mark_down()
                self._count("wb_retries")
                obs.count("image.l3.write_behind.retry")
                continue
            self._mark_up()
            if result.get("deduped"):
                self._count("wb_deduped")
            self._count("wb_flushed")
            obs.count("image.l3.write_behind.flush")
            return

    def flush(self, timeout: float = 10.0) -> bool:
        """Block until the write-behind queue drains (or ``timeout``).
        Returns whether it fully drained."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._queue.all_tasks_done:
                if self._queue.unfinished_tasks == 0:
                    return True
            time.sleep(0.01)
        with self._queue.all_tasks_done:
            return self._queue.unfinished_tasks == 0

    def close(self, flush: bool = True, timeout: float = 5.0) -> None:
        if flush:
            self.flush(timeout=timeout)
        self._stop.set()
        self._queue.put(None)
        worker = self._worker
        if worker is not None and worker.is_alive():
            worker.join(timeout=timeout)
        self.remote.close()

    # -- bulk movement --------------------------------------------------------

    def sync(self) -> dict[str, Any]:
        """Push every local object and ref to L3, synchronously."""
        if self.local is None:
            raise ValueError("sync needs a local store tier")
        self.flush()
        return sync_stores(self.local, self.remote)

    def prefetch(self) -> dict[str, Any]:
        """Pull the remote inventory down into L2."""
        if self.local is None:
            raise ValueError("prefetch needs a local store tier")
        return prefetch_store(self.local, self.remote)

    # -- parity with ImageStore ----------------------------------------------

    def ls(self, strict: bool = False) -> list[dict[str, Any]]:
        return self.local.ls(strict=strict) if self.local else []

    def gc(
        self, max_bytes: "int | None" = None, dry_run: bool = False
    ) -> dict[str, Any]:
        if self.local is None:
            return {
                "removed_objects": 0, "removed_refs": 0,
                "bytes_before": 0, "bytes_after": 0,
            }
        return self.local.gc(max_bytes=max_bytes, dry_run=dry_run)

    @property
    def writable(self) -> bool:
        # Write-behind makes the tier writable even without a local
        # store; with one, its verdict wins (put lands there first).
        return self.local.writable if self.local is not None else True

    def stats(self) -> dict[str, Any]:
        if self.local is not None:
            base = self.local.stats()
        else:
            base = {
                "hits": 0, "misses": 0, "writes": 0, "write_errors": 0,
                "read_errors": 0, "verify_failures": 0, "adopts": 0,
                "gc_removed_objects": 0, "gc_removed_refs": 0,
                "fsck_corrupt": 0, "writable": True, "root": None,
            }
        with self._lock:
            counters = dict(self._counters)
            down = time.monotonic() < self._down_until
            negative_entries = len(self._negative)
        base["remote"] = {
            "endpoint": self.remote.location(),
            "down": down,
            "queue_depth": self._queue.qsize(),
            "negative_entries": negative_entries,
            **counters,
        }
        return base


# -- bulk sync / prefetch ---------------------------------------------------


def sync_stores(
    local: ImageStore, remote: RemoteStoreClient
) -> dict[str, Any]:
    """Push every local object (and the index) up to the remote tier.

    Dedups against the remote inventory by digest, so repeated syncs
    only move new work.  Raises :class:`RemoteStoreError` when the
    remote is unreachable — bulk movement is an explicit ops action, so
    unlike the read/write paths it does *not* degrade silently.
    """
    with obs.span("image.sync", remote=remote.location()):
        have_objects, have_refs = remote.inventory()
        have = {st.digest for st in have_objects}
        pushed = skipped = refs_written = errors = 0
        try:
            stats = local.backend.list_objects()
        except OSError:
            stats = []
        for st in sorted(stats, key=lambda st: st.digest):
            if not plausible_digest(st.digest):
                continue
            if st.digest in have:
                skipped += 1
                continue
            data = local.read_object(st.digest)
            if data is None:
                errors += 1  # torn local object: fsck's problem
                continue
            remote.push(st.digest, data)
            have.add(st.digest)
            pushed += 1
        try:
            keys = local.backend.list_ref_keys()
        except OSError:
            keys = []
        for key in sorted(keys):
            try:
                digest = local.backend.read_ref(key)
            except OSError:
                continue
            if not plausible_digest(digest) or digest not in have:
                continue
            if have_refs.get(key) == digest:
                continue
            remote.push(digest, None, key=key)
            refs_written += 1
        report = {
            "objects_pushed": pushed,
            "objects_deduped": skipped,
            "refs_written": refs_written,
            "errors": errors,
            "remote": remote.location(),
        }
        obs.count("image.sync.objects", pushed)
        return report


def prefetch_store(
    local: ImageStore, remote: RemoteStoreClient
) -> dict[str, Any]:
    """Pull the remote inventory down into the local store.

    Payloads are content-address-checked before adoption but *not*
    template-verified here — prefetched images stay untrusted until
    verify-on-load passes at first use, same as any disk image.  Raises
    :class:`RemoteStoreError` when the remote is unreachable.
    """
    with obs.span("image.prefetch", remote=remote.location()):
        _objects, refs = remote.inventory()
        fetched = skipped = refs_written = errors = 0
        payloads: dict[str, bool] = {}  # digest -> now-present locally
        for key, digest in sorted(refs.items()):
            present = payloads.get(digest)
            if present is None:
                present = local.backend.has_object(digest)
                if not present:
                    hit = remote.fetch(digest=digest)
                    if (
                        hit is None
                        or hashlib.sha256(hit[1]).hexdigest() != digest
                    ):
                        errors += 1
                        payloads[digest] = False
                        continue
                    present = local.adopt(StoreKey(key), digest, hit[1])
                    if present:
                        fetched += 1
                        refs_written += 1
                        payloads[digest] = True
                        continue
                    errors += 1
                    payloads[digest] = False
                    continue
                payloads[digest] = True
            if not present:
                errors += 1
                continue
            try:
                current = local.backend.read_ref(key)
            except OSError:
                current = None
            if current == digest:
                skipped += 1
                continue
            try:
                with local.backend.locked():
                    local.backend.write_ref(key, digest)
                refs_written += 1
            except OSError:
                errors += 1
        report = {
            "objects_fetched": fetched,
            "refs_written": refs_written,
            "refs_current": skipped,
            "errors": errors,
            "remote": remote.location(),
        }
        obs.count("image.prefetch.objects", fetched)
        return report


@contextmanager
def tiered(
    local_dir: "str | Path | None",
    endpoint: "str | tuple[str, int]",
    **kwargs: Any,
) -> Iterator[TieredStore]:
    """``with tiered("/var/store", "cache-host:7459") as store: ...`` —
    a closed-on-exit tiered store for scripts and tests."""
    host, port = parse_endpoint(endpoint)
    local = ImageStore(local_dir) if local_dir is not None else None
    store = TieredStore(local, RemoteStoreClient(host, port), **kwargs)
    try:
        yield store
    finally:
        store.close()
