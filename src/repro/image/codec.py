"""A versioned binary codec for residual object code.

Encodes :class:`~repro.vm.template.Template` trees (code vectors,
literal frames with nested templates, prim specs, symbols) and whole
:class:`~repro.pe.backend.ResidualProgram`s into a self-describing byte
image, and decodes them back.  Deliberately **pickle-free**: the wire
format is a closed set of tags over a closed set of value types, so a
malformed, truncated, or stale file fails loudly with
:class:`CodecError` instead of executing arbitrary reducers.

Image layout::

    +-------+---------+-------------+-----------+-----------+
    | magic | version | payload len | CRC32     | payload   |
    | 4 B   | u16 BE  | u32 BE      | u32 BE    | ...       |
    +-------+---------+-------------+-----------+-----------+

The CRC is computed over the payload and checked *before* any decoding,
so a corrupted byte is rejected before any value — let alone any VM
code — is materialized.  Integers are LEB128 varints (zigzag for signed
operands), floats are IEEE-754 doubles, strings are UTF-8 with a length
prefix.  Primitives are encoded by *name* and re-resolved against the
running system's primitive table on decode: an image referring to a
primitive this build does not define is stale and is rejected.

Decoded residual programs additionally carry the encoder's fingerprint
digest (SHA-256 of :meth:`ResidualProgram.fingerprint`); the decoder
recomputes it, so any drift between encoder and decoder — or between the
image and the running system's disassembler — surfaces as a
:class:`CodecError`, not as silently different code.
"""

from __future__ import annotations

import hashlib
import struct
import zlib
from typing import Any

from repro.lang.prims import PRIMITIVES, PrimSpec
from repro.pe.backend import ResidualProgram
from repro.runtime.values import NIL, UNSPECIFIED, Pair, Unspecified
from repro.sexp.datum import Char, Symbol, sym
from repro.vm.machine import Machine, VmClosure
from repro.vm.template import Template

MAGIC = b"RPOI"  # RePro Object Image
CODEC_VERSION = 1

_HEADER = struct.Struct(">4sHII")  # magic, version, payload length, CRC32
_DOUBLE = struct.Struct(">d")


class CodecError(ValueError):
    """A malformed, truncated, corrupted, or stale image."""


# -- value tags ---------------------------------------------------------------

_T_FALSE = 0x01
_T_TRUE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_SYMBOL = 0x06
_T_CHAR = 0x07
_T_NIL = 0x08
_T_UNSPECIFIED = 0x09
_T_LIST = 0x0A           # pair spine: count, cars..., tail value
_T_PRIM = 0x0B           # by name, re-resolved on decode
_T_TEMPLATE = 0x0C       # nested template

# Residual-program artifact kinds.
_K_OBJECT = 0x4F         # 'O': a Machine of templates
_K_SOURCE = 0x53         # 'S': residual source, stored as program text


class _Encoder:
    """Append-only byte sink with the primitive wire encodings."""

    __slots__ = ("buf",)

    def __init__(self) -> None:
        self.buf = bytearray()

    def uvarint(self, n: int) -> None:
        if n < 0:
            raise CodecError(f"uvarint cannot encode negative {n}")
        while True:
            byte = n & 0x7F
            n >>= 7
            if n:
                self.buf.append(byte | 0x80)
            else:
                self.buf.append(byte)
                return

    def svarint(self, n: int) -> None:
        # Zigzag: interleave negatives so small magnitudes stay short.
        self.uvarint(n << 1 if n >= 0 else ((-n) << 1) - 1)

    def string(self, s: str) -> None:
        data = s.encode("utf-8")
        self.uvarint(len(data))
        self.buf += data

    def double(self, x: float) -> None:
        self.buf += _DOUBLE.pack(x)

    def tag(self, t: int) -> None:
        self.buf.append(t)


class _Decoder:
    """Bounds-checked reader over an image payload."""

    __slots__ = ("data", "pos")

    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def _need(self, n: int) -> None:
        if self.pos + n > len(self.data):
            raise CodecError(
                f"truncated payload: need {n} byte(s) at offset {self.pos},"
                f" have {len(self.data) - self.pos}"
            )

    def byte(self) -> int:
        self._need(1)
        b = self.data[self.pos]
        self.pos += 1
        return b

    def uvarint(self) -> int:
        result = 0
        shift = 0
        while True:
            b = self.byte()
            result |= (b & 0x7F) << shift
            if not b & 0x80:
                return result
            shift += 7
            if shift > 10_000:  # a varint this long is garbage, not a number
                raise CodecError("runaway varint")

    def svarint(self) -> int:
        z = self.uvarint()
        return (z >> 1) if not z & 1 else -((z + 1) >> 1)

    def count(self, what: str) -> int:
        """A collection count, sanity-bounded by the remaining payload."""
        n = self.uvarint()
        if n > len(self.data) - self.pos:
            raise CodecError(
                f"implausible {what} count {n} with"
                f" {len(self.data) - self.pos} payload byte(s) left"
            )
        return n

    def string(self) -> str:
        n = self.count("string byte")
        self._need(n)
        raw = self.data[self.pos:self.pos + n]
        self.pos += n
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CodecError(f"invalid UTF-8 in string: {exc}") from None

    def double(self) -> float:
        self._need(8)
        (x,) = _DOUBLE.unpack_from(self.data, self.pos)
        self.pos += 8
        return x

    def done(self) -> None:
        if self.pos != len(self.data):
            raise CodecError(
                f"{len(self.data) - self.pos} trailing byte(s) after payload"
            )


# -- values -------------------------------------------------------------------


def _encode_value(enc: _Encoder, value: Any) -> None:
    # bool before int: True/False are ints in Python.
    if value is True:
        enc.tag(_T_TRUE)
    elif value is False:
        enc.tag(_T_FALSE)
    elif isinstance(value, int):
        enc.tag(_T_INT)
        enc.svarint(value)
    elif isinstance(value, float):
        enc.tag(_T_FLOAT)
        enc.double(value)
    elif isinstance(value, str):
        enc.tag(_T_STR)
        enc.string(value)
    elif isinstance(value, Symbol):
        enc.tag(_T_SYMBOL)
        enc.string(value.name)
    elif isinstance(value, Char):
        enc.tag(_T_CHAR)
        enc.string(value.value)
    elif value is NIL:
        enc.tag(_T_NIL)
    elif isinstance(value, Unspecified):
        enc.tag(_T_UNSPECIFIED)
    elif isinstance(value, Pair):
        # Encode the spine iteratively so deep lists cannot overflow the
        # Python stack; the tail closes improper lists.
        cars = []
        node: Any = value
        while isinstance(node, Pair):
            cars.append(node.car)
            node = node.cdr
        enc.tag(_T_LIST)
        enc.uvarint(len(cars))
        for car in cars:
            _encode_value(enc, car)
        _encode_value(enc, node)
    elif isinstance(value, PrimSpec):
        enc.tag(_T_PRIM)
        enc.string(value.name.name)
    elif isinstance(value, Template):
        enc.tag(_T_TEMPLATE)
        _encode_template_body(enc, value)
    else:
        raise CodecError(
            f"cannot encode a {type(value).__name__} literal: {value!r}"
        )


def _decode_value(dec: _Decoder) -> Any:
    tag = dec.byte()
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT:
        return dec.svarint()
    if tag == _T_FLOAT:
        return dec.double()
    if tag == _T_STR:
        return dec.string()
    if tag == _T_SYMBOL:
        return sym(dec.string())
    if tag == _T_CHAR:
        text = dec.string()
        if len(text) != 1:
            raise CodecError(f"char payload {text!r} is not a single character")
        return Char(text)
    if tag == _T_NIL:
        return NIL
    if tag == _T_UNSPECIFIED:
        return UNSPECIFIED
    if tag == _T_LIST:
        n = dec.count("list element")
        cars = [_decode_value(dec) for _ in range(n)]
        result = _decode_value(dec)
        for car in reversed(cars):
            result = Pair(car, result)
        return result
    if tag == _T_PRIM:
        name = dec.string()
        spec = PRIMITIVES.get(sym(name))
        if spec is None:
            raise CodecError(
                f"stale image: primitive {name!r} is not defined"
                " in this build"
            )
        return spec
    if tag == _T_TEMPLATE:
        return _decode_template_body(dec)
    raise CodecError(f"unknown value tag 0x{tag:02x}")


# -- templates ----------------------------------------------------------------


def _encode_template_body(enc: _Encoder, template: Template) -> None:
    enc.string(template.name)
    enc.uvarint(template.arity)
    enc.uvarint(template.nlocals)
    enc.uvarint(len(template.code))
    for instr in template.code:
        enc.uvarint(int(instr[0]))
        enc.uvarint(len(instr) - 1)
        for operand in instr[1:]:
            enc.svarint(operand)
    enc.uvarint(len(template.literals))
    for lit in template.literals:
        _encode_value(enc, lit)


def _decode_template_body(dec: _Decoder) -> Template:
    from repro.vm.instructions import Op

    name = dec.string()
    arity = dec.uvarint()
    nlocals = dec.uvarint()
    if nlocals < arity:
        raise CodecError(f"template {name}: nlocals {nlocals} < arity {arity}")
    ninstrs = dec.count("instruction")
    code = []
    for _ in range(ninstrs):
        opnum = dec.uvarint()
        try:
            op = Op(opnum)
        except ValueError:
            raise CodecError(
                f"template {name}: unknown opcode {opnum}"
            ) from None
        noperands = dec.count("operand")
        code.append((op, *(dec.svarint() for _ in range(noperands))))
    nliterals = dec.count("literal")
    literals = tuple(_decode_value(dec) for _ in range(nliterals))
    return Template(
        code=tuple(code),
        literals=literals,
        arity=arity,
        nlocals=nlocals,
        name=name,
    )


def _frame(payload: bytes) -> bytes:
    return _HEADER.pack(
        MAGIC, CODEC_VERSION, len(payload), zlib.crc32(payload)
    ) + payload


def _unframe(data: bytes) -> bytes:
    if len(data) < _HEADER.size:
        raise CodecError(
            f"image too short for a header ({len(data)} byte(s))"
        )
    magic, version, length, crc = _HEADER.unpack_from(data)
    if magic != MAGIC:
        raise CodecError(f"bad magic {magic!r} (want {MAGIC!r}): not an image")
    if version != CODEC_VERSION:
        raise CodecError(
            f"unsupported image version {version} (this build reads"
            f" version {CODEC_VERSION})"
        )
    payload = data[_HEADER.size:]
    if len(payload) != length:
        raise CodecError(
            f"payload length mismatch: header says {length},"
            f" file has {len(payload)}"
        )
    actual = zlib.crc32(payload)
    if actual != crc:
        raise CodecError(
            f"CRC mismatch: header 0x{crc:08x}, payload 0x{actual:08x}"
            " — the image is corrupted"
        )
    return payload


def encode_template(template: Template) -> bytes:
    """Encode one template tree as a framed image."""
    enc = _Encoder()
    enc.tag(_T_TEMPLATE)
    _encode_template_body(enc, template)
    return _frame(bytes(enc.buf))


def decode_template(data: bytes) -> Template:
    """Decode a framed single-template image."""
    dec = _Decoder(_unframe(data))
    if dec.byte() != _T_TEMPLATE:
        raise CodecError("image payload is not a template")
    template = _decode_template_body(dec)
    dec.done()
    return template


# -- residual programs --------------------------------------------------------


def fingerprint_digest(residual: ResidualProgram) -> str:
    """SHA-256 of the residual program's textual fingerprint."""
    return hashlib.sha256(
        residual.fingerprint().encode("utf-8")
    ).hexdigest()


def encode_residual(residual: ResidualProgram) -> bytes:
    """Encode a whole residual program as a framed image.

    Object-code programs store their machine's global templates; source
    programs store the unparsed program text (the system's existing
    canonical serialization for syntax).  Both embed a fingerprint
    digest the decoder re-checks.
    """
    enc = _Encoder()
    enc.string(residual.goal.name)
    enc.uvarint(len(residual.goal_params))
    for p in residual.goal_params:
        enc.string(p.name)
    enc.string(fingerprint_digest(residual))
    if residual.machine is not None:
        enc.tag(_K_OBJECT)
        entries = sorted(
            residual.machine.globals.items(), key=lambda kv: kv[0].name
        )
        enc.uvarint(len(entries))
        for name, value in entries:
            if not isinstance(value, VmClosure) or value.env:
                raise CodecError(
                    f"global {name} is not a top-level closure"
                    f" ({value!r}); only pure object code is imageable"
                )
            enc.string(name.name)
            _encode_template_body(enc, value.template)
    elif residual.program is not None:
        from repro.lang.unparse import unparse_program
        from repro.sexp.writer import write

        enc.tag(_K_SOURCE)
        enc.string("\n".join(write(d) for d in unparse_program(residual.program)))
    else:
        raise CodecError("residual program has neither machine nor program")
    return _frame(bytes(enc.buf))


def decode_residual(data: bytes, check_fingerprint: bool = True) -> ResidualProgram:
    """Decode a framed residual-program image.

    With ``check_fingerprint`` (the default) the decoded program's
    fingerprint is recomputed and compared against the digest the
    encoder embedded; a mismatch means the image does not reproduce the
    original code byte-for-byte and is rejected.

    The decoded program is **untrusted**: nothing here runs the verifier
    — callers (the store, the CLI) do that before execution.
    """
    dec = _Decoder(_unframe(data))
    goal = sym(dec.string())
    nparams = dec.count("goal parameter")
    goal_params = tuple(sym(dec.string()) for _ in range(nparams))
    digest = dec.string()
    kind = dec.byte()
    if kind == _K_OBJECT:
        nglobals = dec.count("global")
        machine = Machine()
        for _ in range(nglobals):
            name = sym(dec.string())
            machine.define(name, VmClosure(_decode_template_body(dec), ()))
        residual = ResidualProgram(
            goal=goal, goal_params=goal_params, machine=machine
        )
    elif kind == _K_SOURCE:
        from repro.lang.parser import parse_program

        text = dec.string()
        program = parse_program(text, goal=goal.name)
        residual = ResidualProgram(
            goal=goal, goal_params=goal_params, program=program
        )
    else:
        raise CodecError(f"unknown residual kind byte 0x{kind:02x}")
    dec.done()
    residual.stats["loaded_from_image"] = True
    if check_fingerprint and fingerprint_digest(residual) != digest:
        raise CodecError(
            "fingerprint mismatch: the decoded program does not reproduce"
            " the encoded code byte-for-byte"
        )
    return residual


# -- file helpers -------------------------------------------------------------


def save_image(residual: ResidualProgram, path: Any) -> str:
    """Write ``residual`` to ``path`` as an image file; returns the
    content digest (SHA-256 of the image bytes)."""
    import os

    data = encode_residual(residual)
    path = os.fspath(path)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as fh:
        fh.write(data)
    os.replace(tmp, path)
    return hashlib.sha256(data).hexdigest()


def load_image(path: Any, check_fingerprint: bool = True) -> ResidualProgram:
    """Read an image file back into a residual program (unverified)."""
    with open(path, "rb") as fh:
        data = fh.read()
    return decode_residual(data, check_fingerprint=check_fingerprint)
