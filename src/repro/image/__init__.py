"""Persistent object-code images.

The paper's payoff is that specialization emits *executable object code*
with no separate compilation step — but object code that evaporates with
the process forces every restart to re-pay every specialization.  Scheme
48 itself persists heap *images*; this package is our analogue for
residual code: a versioned, pickle-free binary codec for
:class:`~repro.vm.template.Template` trees and whole
:class:`~repro.pe.backend.ResidualProgram`s
(:mod:`repro.image.codec`), a content-addressed store with atomic,
fsync-durable writes, advisory locking, and a size-bounded garbage
collector behind the :class:`~repro.image.store.StoreBackend` protocol
(:mod:`repro.image.store`), and a remote L3 tier — TCP object server,
retrying client, and a read-through/write-behind
:class:`~repro.image.remote.TieredStore` — so a fleet of workers shares
one warm cache (:mod:`repro.image.remote`).

Images loaded from disk *or* the network are *untrusted*: by default
every template in a loaded image is re-checked by the bytecode verifier
(:mod:`repro.vm.verify`) before it can reach the machine.
"""

from repro.image.codec import (
    CODEC_VERSION,
    MAGIC,
    CodecError,
    decode_residual,
    decode_template,
    encode_residual,
    encode_template,
    load_image,
    save_image,
)
from repro.image.remote import (
    ObjectServer,
    RemoteStoreClient,
    RemoteStoreError,
    TieredStore,
    parse_endpoint,
    prefetch_store,
    sync_stores,
    tiered,
)
from repro.image.store import (
    ImageStore,
    LocalStoreBackend,
    ObjectStat,
    StoreBackend,
    StoreKey,
    UnpersistableKey,
    plausible_digest,
    store_key,
    verify_residual,
)

__all__ = [
    "CODEC_VERSION",
    "CodecError",
    "ImageStore",
    "LocalStoreBackend",
    "MAGIC",
    "ObjectServer",
    "ObjectStat",
    "RemoteStoreClient",
    "RemoteStoreError",
    "StoreBackend",
    "StoreKey",
    "TieredStore",
    "UnpersistableKey",
    "decode_residual",
    "decode_template",
    "encode_residual",
    "encode_template",
    "load_image",
    "parse_endpoint",
    "plausible_digest",
    "prefetch_store",
    "save_image",
    "store_key",
    "sync_stores",
    "tiered",
    "verify_residual",
]
