"""Persistent object-code images.

The paper's payoff is that specialization emits *executable object code*
with no separate compilation step — but object code that evaporates with
the process forces every restart to re-pay every specialization.  Scheme
48 itself persists heap *images*; this package is our analogue for
residual code: a versioned, pickle-free binary codec for
:class:`~repro.vm.template.Template` trees and whole
:class:`~repro.pe.backend.ResidualProgram`s
(:mod:`repro.image.codec`), and a content-addressed on-disk store with
atomic writes, advisory locking, and a size-bounded garbage collector
(:mod:`repro.image.store`).

Images loaded from disk are *untrusted*: by default every template in a
loaded image is re-checked by the bytecode verifier
(:mod:`repro.vm.verify`) before it can reach the machine.
"""

from repro.image.codec import (
    CODEC_VERSION,
    MAGIC,
    CodecError,
    decode_residual,
    decode_template,
    encode_residual,
    encode_template,
    load_image,
    save_image,
)
from repro.image.store import (
    ImageStore,
    StoreKey,
    UnpersistableKey,
    store_key,
    verify_residual,
)

__all__ = [
    "CODEC_VERSION",
    "CodecError",
    "ImageStore",
    "MAGIC",
    "StoreKey",
    "UnpersistableKey",
    "decode_residual",
    "decode_template",
    "encode_residual",
    "encode_template",
    "load_image",
    "save_image",
    "store_key",
    "verify_residual",
]
