"""repro: composing partial evaluation and compilation.

A reproduction of Sperber & Thiemann, "Two for the Price of One: Composing
Partial Evaluation and Compilation" (PLDI 1997): an offline partial
evaluator for a Scheme subset, a bytecode compiler and VM, and their
automatic composition into a run-time code generation system.

Public API highlights
---------------------
- :func:`repro.lang.parse_program` / :func:`repro.lang.parse_expr` — front end
- :func:`repro.interp.run_program` — reference interpreter
- :mod:`repro.pe` — binding-time analysis and the specializer
- :mod:`repro.vm` — the bytecode virtual machine
- :mod:`repro.compiler` — the ANF compiler and its combinator form
- :mod:`repro.rtcg` — the composed system (the paper's headline artifact)
"""

__version__ = "1.0.0"
