"""A-normal form: the Fig. 2 grammar, a checker, and a converter."""

from repro.anf.convert import anf_convert, anf_convert_program
from repro.anf.grammar import check_anf, check_anf_program, is_anf, is_anf_program

__all__ = [
    "anf_convert",
    "anf_convert_program",
    "check_anf",
    "check_anf_program",
    "is_anf",
    "is_anf_program",
]
