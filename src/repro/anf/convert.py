"""CS → ANF conversion.

A standalone A-normalizer in the style of Flanagan et al. [20], using the
same let-insertion discipline as the specializer: whenever a *serious*
computation (a call or primitive application) occurs in a non-tail
position, it is bound to a fresh variable by a ``let`` and the variable is
used in its place; trivial expressions (constants, variables, lambdas) are
never wrapped.

This module exists for two reasons: the stock compiler path compiles
arbitrary CS by normalizing first, and the test suite uses it to validate
that the specializer's output discipline (which produces ANF *by
construction*) agrees with a direct normalizer.
"""

from __future__ import annotations

from typing import Callable

from repro.lang.ast import (
    App,
    Const,
    Def,
    Expr,
    If,
    Lam,
    Let,
    Prim,
    Program,
    Var,
)
from repro.lang.gensym import Gensym


def anf_convert(expr: Expr, gensym: Gensym | None = None) -> Expr:
    """Convert ``expr`` to A-normal form.

    The expression is alpha-renamed first: normalization hoists let
    bindings over their context, which is only capture-safe when bound
    names are unique.
    """
    from repro.lang.alpha import alpha_rename_expr

    gs = gensym or Gensym("v")
    if not _names_unique(expr):
        expr = alpha_rename_expr(expr, gs)
    return _norm_tail(expr, gs)


def anf_convert_program(program: Program, gensym: Gensym | None = None) -> Program:
    gs = gensym or Gensym("v")
    return Program(
        tuple(
            Def(d.name, d.params, anf_convert(d.body, gs))
            for d in program.defs
        ),
        program.goal,
    )


def _names_unique(expr: Expr) -> bool:
    """True if no bound name is reused anywhere in ``expr``."""
    from repro.lang.ast import walk

    seen: set = set()
    for node in walk(expr):
        if isinstance(node, Lam):
            names: tuple = node.params
        elif isinstance(node, Let):
            names = (node.var,)
        else:
            continue
        for name in names:
            if name in seen:
                return False
            seen.add(name)
    return True


def _norm_tail(expr: Expr, gs: Gensym) -> Expr:
    """Normalize ``expr`` in tail position."""
    if isinstance(expr, (Const, Var)):
        return expr
    if isinstance(expr, Lam):
        return Lam(expr.params, _norm_tail(expr.body, gs))
    if isinstance(expr, Let):
        # (let (x M1) M2): normalize M1 into bindings around the body.
        return _norm_bind(
            expr.rhs, gs, lambda rhs: Let(expr.var, rhs, _norm_tail(expr.body, gs))
        )
    if isinstance(expr, If):
        return _norm_trivial(
            expr.test,
            gs,
            lambda t: If(t, _norm_tail(expr.then, gs), _norm_tail(expr.alt, gs)),
        )
    if isinstance(expr, App):
        return _norm_trivial(
            expr.fn,
            gs,
            lambda f: _norm_args(
                list(expr.args), [], gs, lambda vs: App(f, tuple(vs))
            ),
        )
    if isinstance(expr, Prim):
        return _norm_args(
            list(expr.args), [], gs, lambda vs: Prim(expr.op, tuple(vs))
        )
    raise TypeError(f"ANF conversion does not handle {type(expr).__name__}")


def _norm_bind(
    expr: Expr, gs: Gensym, k: Callable[[Expr], Expr]
) -> Expr:
    """Normalize ``expr`` into a legal let-rhs and pass it to ``k``."""
    if isinstance(expr, (Const, Var)):
        return k(expr)
    if isinstance(expr, Lam):
        return k(Lam(expr.params, _norm_tail(expr.body, gs)))
    if isinstance(expr, App):
        return _norm_trivial(
            expr.fn,
            gs,
            lambda f: _norm_args(
                list(expr.args), [], gs, lambda vs: k(App(f, tuple(vs)))
            ),
        )
    if isinstance(expr, Prim):
        return _norm_args(
            list(expr.args), [], gs, lambda vs: k(Prim(expr.op, tuple(vs)))
        )
    if isinstance(expr, Let):
        return _norm_bind(
            expr.rhs,
            gs,
            lambda rhs: Let(expr.var, rhs, _norm_bind(expr.body, gs, k)),
        )
    if isinstance(expr, If):
        # A conditional in binding position is named via a fresh variable;
        # both branches flow into the binding through a let around k's use.
        fresh = gs.fresh("t")
        return _norm_trivial(
            expr.test,
            gs,
            lambda t: Let(
                fresh,
                _wrap_serious(If(t, _norm_tail(expr.then, gs), _norm_tail(expr.alt, gs))),
                k(Var(fresh)),
            ),
        )
    raise TypeError(f"ANF conversion does not handle {type(expr).__name__}")


def _wrap_serious(expr: Expr) -> Expr:
    """A conditional cannot be a let-rhs in Fig. 2.

    We eta-expand it into a call to an immediately-constructed thunk-like
    lambda taking no arguments, which *is* a legal rhs:
    ``(let (t ((lambda () (if ...)))) ...)``.
    """
    return App(Lam((), expr), ())


def _norm_trivial(
    expr: Expr, gs: Gensym, k: Callable[[Expr], Expr]
) -> Expr:
    """Normalize ``expr`` to a trivial V, let-binding it if serious."""
    if isinstance(expr, (Const, Var)):
        return k(expr)
    if isinstance(expr, Lam):
        return k(Lam(expr.params, _norm_tail(expr.body, gs)))

    def bind(b: Expr) -> Expr:
        if isinstance(b, (Const, Var)):
            return k(b)
        fresh = gs.fresh("v")
        return Let(fresh, b, k(Var(fresh)))

    return _norm_bind(expr, gs, bind)


def _norm_args(
    pending: list[Expr],
    done: list[Expr],
    gs: Gensym,
    k: Callable[[list[Expr]], Expr],
) -> Expr:
    if not pending:
        return k(done)
    first, rest = pending[0], pending[1:]
    return _norm_trivial(
        first, gs, lambda v: _norm_args(rest, done + [v], gs, k)
    )
