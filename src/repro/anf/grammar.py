"""The A-normal form grammar of Fig. 2, as a checker.

::

    M ::= V
        | (let (x V) M)
        | (let (x (V V1 ... Vn)) M)      non-tail call
        | (let (x (O V1 ... Vn)) M)      primitive operation
        | (if V M M)
        | (V V1 ... Vn)                  tail call
        | (O V1 ... Vn)                  primitive in tail position
    V ::= c | x | (lambda (x1 ... xn) M)

ANF makes control flow explicit: "Only those function applications wrapped
in a let are non-tail calls; all others are jumps" (§6.1).  The specializer
only ever produces residual programs in this grammar, and the ANF compiler
only ever consumes it — both directions are checked in the test suite.
"""

from __future__ import annotations

from repro.lang.ast import App, Const, Expr, If, Lam, Let, Prim, Program, Var


class ANFViolation(ValueError):
    """An expression failed the ANF grammar check."""

    def __init__(self, message: str, offending: Expr):
        super().__init__(f"{message}: {type(offending).__name__}")
        self.offending = offending


def _check_trivial(expr: Expr) -> None:
    """V ::= c | x | (lambda ... M)"""
    if isinstance(expr, (Const, Var)):
        return
    if isinstance(expr, Lam):
        check_anf(expr.body)
        return
    raise ANFViolation("expected a trivial expression (V)", expr)


def _check_binding(expr: Expr) -> None:
    """The right-hand side of a let: V, a call of Vs, or a prim of Vs."""
    if isinstance(expr, App):
        _check_trivial(expr.fn)
        for a in expr.args:
            _check_trivial(a)
        return
    if isinstance(expr, Prim):
        for a in expr.args:
            _check_trivial(a)
        return
    _check_trivial(expr)


def check_anf(expr: Expr) -> None:
    """Raise :class:`ANFViolation` unless ``expr`` is in ANF (an M)."""
    if isinstance(expr, Let):
        _check_binding(expr.rhs)
        check_anf(expr.body)
        return
    if isinstance(expr, If):
        _check_trivial(expr.test)
        check_anf(expr.then)
        check_anf(expr.alt)
        return
    if isinstance(expr, App):
        _check_trivial(expr.fn)
        for a in expr.args:
            _check_trivial(a)
        return
    if isinstance(expr, Prim):
        for a in expr.args:
            _check_trivial(a)
        return
    _check_trivial(expr)


def is_anf(expr: Expr) -> bool:
    try:
        check_anf(expr)
    except ANFViolation:
        return False
    return True


def check_anf_program(program: Program) -> None:
    for d in program.defs:
        check_anf(d.body)


def is_anf_program(program: Program) -> bool:
    try:
        check_anf_program(program)
    except ANFViolation:
        return False
    return True
