"""Abstract syntax for Core Scheme (CS) and Annotated Core Scheme (ACS).

CS is the language of Fig. 1 in the paper::

    M ::= V | (if V M M) | (let (x M) M) | (M M ...) | (O M ...)
    V ::= c | x | (lambda (x ...) M)

(in its unrestricted form: subexpressions of ``if``/applications are
arbitrary expressions; the ANF restriction of Fig. 2 is checked separately
by :mod:`repro.anf.grammar`).

ACS extends CS with the *dynamic* (underlined) constructs used by the
specializer of Fig. 3: ``lift``, dynamic primitives, dynamic lambdas,
dynamic applications, and dynamic conditionals, plus ``MemoCall`` — an
annotated call to a dynamic top-level function that is handled through the
specializer's memoization table (the paper omits memoization from Fig. 3
"since [it is] standard").

All nodes are immutable and compare structurally, which makes expressions
usable as dictionary keys (memoization, caching of analyses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Tuple

from repro.sexp.datum import Symbol


class Expr:
    """Base class for CS/ACS expressions."""

    __slots__ = ()

    def children(self) -> Tuple["Expr", ...]:
        """The direct subexpressions, in evaluation order."""
        raise NotImplementedError

    def is_value(self) -> bool:
        """True for the V productions of Fig. 1: constants, variables, lambdas."""
        return False


@dataclass(frozen=True, slots=True)
class Const(Expr):
    """A constant (quoted datum or self-evaluating literal).

    ``value`` holds immutable Python data only: lists are converted to
    tuples by the parser so constants stay hashable.
    """

    value: Any

    def children(self) -> Tuple[Expr, ...]:
        return ()

    def is_value(self) -> bool:
        return True


@dataclass(frozen=True, slots=True)
class Var(Expr):
    """A variable reference."""

    name: Symbol

    def children(self) -> Tuple[Expr, ...]:
        return ()

    def is_value(self) -> bool:
        return True


@dataclass(frozen=True, slots=True)
class Lam(Expr):
    """``(lambda (x1 ... xn) M)``."""

    params: Tuple[Symbol, ...]
    body: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.body,)

    def is_value(self) -> bool:
        return True


@dataclass(frozen=True, slots=True)
class Let(Expr):
    """``(let (x M1) M2)`` — the single-binding let of Fig. 1."""

    var: Symbol
    rhs: Expr
    body: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.rhs, self.body)


@dataclass(frozen=True, slots=True)
class If(Expr):
    """``(if M1 M2 M3)``."""

    test: Expr
    then: Expr
    alt: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.test, self.then, self.alt)


@dataclass(frozen=True, slots=True)
class App(Expr):
    """``(M0 M1 ... Mn)`` — procedure application."""

    fn: Expr
    args: Tuple[Expr, ...]

    def children(self) -> Tuple[Expr, ...]:
        return (self.fn, *self.args)


@dataclass(frozen=True, slots=True)
class Prim(Expr):
    """``(O M1 ... Mn)`` — primitive operation."""

    op: Symbol
    args: Tuple[Expr, ...]

    def children(self) -> Tuple[Expr, ...]:
        return self.args


@dataclass(frozen=True, slots=True)
class SetBang(Expr):
    """``(set! x M)``.

    Not part of CS proper: the front end's assignment-elimination pass
    (:mod:`repro.lang.assignment`) removes every occurrence before the
    partial evaluator or the compiler sees the program, exactly as the
    paper states the specializer "performs lambda lifting and assignment
    elimination".
    """

    var: Symbol
    rhs: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.rhs,)


# --------------------------------------------------------------------------
# Annotated constructs (ACS).  The unannotated constructs above are the
# *static* ones; these are the dynamic, code-generating ones of Fig. 3.
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Lift(Expr):
    """``(lift M)`` — coerce a first-order static value to code."""

    expr: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.expr,)


@dataclass(frozen=True, slots=True)
class DPrim(Expr):
    """``(O^D M1 ... Mn)`` — residualized primitive operation."""

    op: Symbol
    args: Tuple[Expr, ...]

    def children(self) -> Tuple[Expr, ...]:
        return self.args


@dataclass(frozen=True, slots=True)
class DLam(Expr):
    """``(lambda^D (x ...) M)`` — a lambda that appears in the residual code."""

    params: Tuple[Symbol, ...]
    body: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.body,)

    def is_value(self) -> bool:
        return True


@dataclass(frozen=True, slots=True)
class DApp(Expr):
    """``(@^D M0 M1 ... Mn)`` — residualized application."""

    fn: Expr
    args: Tuple[Expr, ...]

    def children(self) -> Tuple[Expr, ...]:
        return (self.fn, *self.args)


@dataclass(frozen=True, slots=True)
class DIf(Expr):
    """``(if^D M1 M2 M3)`` — residualized conditional."""

    test: Expr
    then: Expr
    alt: Expr

    def children(self) -> Tuple[Expr, ...]:
        return (self.test, self.then, self.alt)


@dataclass(frozen=True, slots=True)
class MemoCall(Expr):
    """An annotated call to the dynamic top-level function ``name``.

    The specializer's memoization machinery splits the arguments by the
    callee's binding-time signature, looks up (static-name, static-values)
    in the memo table, and emits a residual call to the specialized
    version.  ``args`` are in the callee's parameter order.
    """

    name: Symbol
    args: Tuple[Expr, ...]

    def children(self) -> Tuple[Expr, ...]:
        return self.args


ACS_NODE_TYPES = (Lift, DPrim, DLam, DApp, DIf, MemoCall)


# --------------------------------------------------------------------------
# Programs
# --------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Def:
    """A top-level definition ``(define (name params...) body)``."""

    name: Symbol
    params: Tuple[Symbol, ...]
    body: Expr


@dataclass(frozen=True, slots=True)
class Program:
    """A whole program: top-level definitions plus a goal function name.

    ``defs`` preserves source order.  ``by_name`` gives keyed access; it is
    computed lazily and cached per instance.
    """

    defs: Tuple[Def, ...]
    goal: Symbol
    _index: dict = field(
        default=None, compare=False, repr=False, hash=False
    )

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_index", {d.name: d for d in self.defs}
        )
        if self.goal not in self._index:
            raise ValueError(f"goal function {self.goal} is not defined")

    @property
    def by_name(self) -> dict:
        return self._index

    def lookup(self, name: Symbol) -> Def:
        return self._index[name]

    def goal_def(self) -> Def:
        return self._index[self.goal]


def walk(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and every descendant, preorder."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children()))


def count_nodes(expr: Expr) -> int:
    """Number of AST nodes in ``expr``."""
    return sum(1 for _ in walk(expr))


def is_annotated(expr: Expr) -> bool:
    """True if ``expr`` contains any ACS (dynamic) construct."""
    return any(isinstance(node, ACS_NODE_TYPES) for node in walk(expr))
