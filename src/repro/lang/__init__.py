"""Core Scheme (CS) language front end.

The abstract syntax follows Fig. 1 of the paper; the annotated abstract
syntax (ACS) adds the dynamic (underlined) constructs of Fig. 3.  The
surface language is a practical Scheme subset that :mod:`repro.lang.desugar`
macro-expands into core forms.  The front-end pipeline mirrors the paper's
description of the specializer front end: desugaring, lambda lifting, and
assignment elimination.
"""

from repro.lang.alpha import alpha_rename, alpha_rename_expr
from repro.lang.assignment import (
    assigned_variables,
    eliminate_assignments,
    eliminate_assignments_expr,
    has_assignments,
)
from repro.lang.ast import (
    ACS_NODE_TYPES,
    App,
    Const,
    DApp,
    DIf,
    DLam,
    DPrim,
    Def,
    Expr,
    If,
    Lam,
    Let,
    Lift,
    MemoCall,
    Prim,
    Program,
    SetBang,
    Var,
    count_nodes,
    is_annotated,
    walk,
)
from repro.lang.desugar import DesugarError, desugar, desugar_program
from repro.lang.freevars import free_variables
from repro.lang.gensym import Gensym
from repro.lang.lambda_lift import lambda_lift
from repro.lang.parser import (
    ParseError,
    parse_core,
    parse_def,
    parse_expr,
    parse_program,
)
from repro.lang.prelude import PRELUDE_SOURCE, prelude_definitions, with_prelude
from repro.lang.prims import PRIMITIVES, PrimSpec, is_primitive
from repro.lang.simplify import beta_let, beta_let_program
from repro.lang.unparse import unparse, unparse_def, unparse_program

__all__ = [
    "ACS_NODE_TYPES",
    "App",
    "Const",
    "DApp",
    "DIf",
    "DLam",
    "DPrim",
    "Def",
    "DesugarError",
    "Expr",
    "Gensym",
    "If",
    "Lam",
    "Let",
    "Lift",
    "MemoCall",
    "ParseError",
    "Prim",
    "PRIMITIVES",
    "PrimSpec",
    "Program",
    "SetBang",
    "Var",
    "alpha_rename",
    "alpha_rename_expr",
    "assigned_variables",
    "beta_let",
    "beta_let_program",
    "count_nodes",
    "desugar",
    "desugar_program",
    "eliminate_assignments",
    "eliminate_assignments_expr",
    "free_variables",
    "has_assignments",
    "is_annotated",
    "is_primitive",
    "lambda_lift",
    "parse_core",
    "parse_def",
    "parse_expr",
    "parse_program",
    "PRELUDE_SOURCE",
    "prelude_definitions",
    "unparse",
    "unparse_def",
    "unparse_program",
    "walk",
    "with_prelude",
]
