"""A small standard library written in the object language.

Higher-order list operations are not primitives in this system (primitives
cannot call back into Scheme code on the VM), so they are provided as a
*prelude* of ordinary definitions that can be spliced into any program.
Everything here goes through the normal pipeline — interpreter, compilers,
and the partial evaluator all see plain Core Scheme.
"""

from __future__ import annotations

from repro.lang.ast import Program
from repro.lang.parser import parse_program
from repro.sexp.reader import read_all

PRELUDE_SOURCE = """
(define (map1 f xs)
  (if (null? xs)
      '()
      (cons (f (car xs)) (map1 f (cdr xs)))))

(define (filter1 keep? xs)
  (cond ((null? xs) '())
        ((keep? (car xs)) (cons (car xs) (filter1 keep? (cdr xs))))
        (else (filter1 keep? (cdr xs)))))

(define (foldr f init xs)
  (if (null? xs)
      init
      (f (car xs) (foldr f init (cdr xs)))))

(define (foldl f acc xs)
  (if (null? xs)
      acc
      (foldl f (f acc (car xs)) (cdr xs))))

(define (for-all? ok? xs)
  (if (null? xs)
      #t
      (and (ok? (car xs)) (for-all? ok? (cdr xs)))))

(define (exists? ok? xs)
  (if (null? xs)
      #f
      (or (ok? (car xs)) (exists? ok? (cdr xs)))))

(define (iota n)
  (let loop ((i 0) (acc '()))
    (if (= i n) (reverse acc) (loop (+ i 1) (cons i acc)))))

(define (take xs n)
  (if (or (zero? n) (null? xs))
      '()
      (cons (car xs) (take (cdr xs) (- n 1)))))

(define (drop xs n)
  (if (or (zero? n) (null? xs))
      xs
      (drop (cdr xs) (- n 1))))

(define (zip2 xs ys)
  (if (or (null? xs) (null? ys))
      '()
      (cons (list (car xs) (car ys)) (zip2 (cdr xs) (cdr ys)))))

(define (assoc-update key value alist)
  (cond ((null? alist) (list (list key value)))
        ((equal? (caar alist) key) (cons (list key value) (cdr alist)))
        (else (cons (car alist) (assoc-update key value (cdr alist))))))

(define (insert-sorted x xs less?)
  (cond ((null? xs) (list x))
        ((less? x (car xs)) (cons x xs))
        (else (cons (car xs) (insert-sorted x (cdr xs) less?)))))

(define (sort-by xs less?)
  (if (null? xs)
      '()
      (insert-sorted (car xs) (sort-by (cdr xs) less?) less?)))
"""

_PRELUDE_DATA = None


def prelude_definitions() -> list:
    """The prelude's top-level forms (reader data), cached."""
    global _PRELUDE_DATA
    if _PRELUDE_DATA is None:
        _PRELUDE_DATA = read_all(PRELUDE_SOURCE)
    return list(_PRELUDE_DATA)


def with_prelude(source: str, goal: str | None = None) -> Program:
    """Parse ``source`` with the prelude definitions prepended.

    A program definition with the same name as a prelude entry replaces
    it (the shadowed prelude definition is dropped entirely, so analyses
    never see two definitions of one name).
    """
    program_data = read_all(source)
    program_names = {
        d[1][0].name
        for d in program_data
        if isinstance(d, list)
        and len(d) >= 2
        and isinstance(d[1], list)
        and d[1]
    }
    kept = [
        d
        for d in prelude_definitions()
        if not (
            isinstance(d[1], list) and d[1] and d[1][0].name in program_names
        )
    ]
    program = parse_program(kept + program_data, goal=goal)
    if goal is None and program.goal.name in {"sort-by", "insert-sorted"}:
        raise ValueError(
            "with_prelude: give an explicit goal (the default picked a"
            " prelude definition)"
        )
    return program
