"""Fresh-name generation.

The paper's specializer (Fig. 3) uses a "fresh variable" operation (the
primed variables).  A :class:`Gensym` instance produces names that cannot
clash with source names because they contain a ``%`` character, which the
front end never accepts in user identifiers it binds.
"""

from __future__ import annotations

from repro.sexp.datum import Symbol, sym


class Gensym:
    """A counter-based fresh-name supply."""

    def __init__(self, prefix: str = "g"):
        self._prefix = prefix
        self._counter = 0

    def fresh(self, hint: str | Symbol | None = None) -> Symbol:
        """Return a fresh symbol, optionally based on ``hint``."""
        base = self._prefix
        if hint is not None:
            base = hint.name if isinstance(hint, Symbol) else str(hint)
            base = base.split("%")[0] or self._prefix
        self._counter += 1
        return sym(f"{base}%{self._counter}")

    def reset(self) -> None:
        self._counter = 0
