"""Fresh-name generation.

The paper's specializer (Fig. 3) uses a "fresh variable" operation (the
primed variables).  A :class:`Gensym` instance produces names that cannot
clash with source names because they contain a ``%`` character, which the
front end never accepts in user identifiers it binds.
"""

from __future__ import annotations

import itertools

from repro.sexp.datum import Symbol, sym


class Gensym:
    """A counter-based fresh-name supply.

    Thread-safe: the counter is an :func:`itertools.count`, whose
    ``next()`` is atomic under the GIL, so a supply shared between
    concurrent specialization runs never hands out the same name twice.
    """

    def __init__(self, prefix: str = "g"):
        self._prefix = prefix
        self._counter = itertools.count(1)

    def fresh(self, hint: str | Symbol | None = None) -> Symbol:
        """Return a fresh symbol, optionally based on ``hint``."""
        base = self._prefix
        if hint is not None:
            base = hint.name if isinstance(hint, Symbol) else str(hint)
            base = base.split("%")[0] or self._prefix
        return sym(f"{base}%{next(self._counter)}")

    def reset(self) -> None:
        self._counter = itertools.count(1)
