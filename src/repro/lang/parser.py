"""Parsing core s-expressions into the CS abstract syntax.

The parser accepts *core* forms only (``quote``, ``lambda``, ``let`` with a
single binding, ``if`` with three arms, applications, primitives).  Surface
sugar must first be removed by :mod:`repro.lang.desugar`; the convenience
entry points :func:`parse_expr` and :func:`parse_program` run the desugarer
automatically.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.lang.ast import (
    App,
    Const,
    Def,
    Expr,
    If,
    Lam,
    Let,
    Prim,
    Program,
    SetBang,
    Var,
)
from repro.lang.desugar import desugar, desugar_program
from repro.lang.prims import PRIMITIVES
from repro.sexp.datum import Symbol, sym
from repro.sexp.reader import read, read_all

_QUOTE = sym("quote")
_LAMBDA = sym("lambda")
_LET = sym("let")
_IF = sym("if")
_DEFINE = sym("define")
_SETBANG = sym("set!")


class ParseError(ValueError):
    """Raised when a core form is malformed."""


def _freeze(datum: Any) -> Any:
    """Convert reader lists to tuples so constants are hashable."""
    if isinstance(datum, list):
        return tuple(_freeze(item) for item in datum)
    return datum


def _check_params(params: Any, form: str) -> tuple[Symbol, ...]:
    if not isinstance(params, list):
        raise ParseError(f"{form}: parameter list expected")
    names = []
    for p in params:
        if not isinstance(p, Symbol):
            raise ParseError(f"{form}: parameter must be a symbol, got {p!r}")
        names.append(p)
    if len(set(n.name for n in names)) != len(names):
        raise ParseError(f"{form}: duplicate parameter names")
    return tuple(names)


def parse_core(datum: Any, bound: frozenset[Symbol] = frozenset()) -> Expr:
    """Parse one core s-expression into a CS expression.

    ``bound`` tracks lexically bound names so that a locally bound name
    shadowing a primitive parses as an application, not a primitive call.
    """
    if isinstance(datum, Symbol):
        return Var(datum)
    if isinstance(datum, (bool, int, float, str)) or not isinstance(datum, list):
        return Const(_freeze(datum))
    if not datum:
        raise ParseError("empty application")
    head = datum[0]
    if isinstance(head, Symbol):
        if head is _QUOTE:
            if len(datum) != 2:
                raise ParseError("quote: exactly one subform expected")
            return Const(_freeze(datum[1]))
        if head is _LAMBDA and head not in bound:
            if len(datum) != 3:
                raise ParseError("lambda: (lambda (params...) body) expected")
            params = _check_params(datum[1], "lambda")
            body = parse_core(datum[2], bound | set(params))
            return Lam(params, body)
        if head is _LET and head not in bound:
            # Core let: (let (x rhs) body)
            if (
                len(datum) != 3
                or not isinstance(datum[1], list)
                or len(datum[1]) != 2
                or not isinstance(datum[1][0], Symbol)
            ):
                raise ParseError("let: core form is (let (x rhs) body)")
            var = datum[1][0]
            rhs = parse_core(datum[1][1], bound)
            body = parse_core(datum[2], bound | {var})
            return Let(var, rhs, body)
        if head is _IF and head not in bound:
            if len(datum) != 4:
                raise ParseError("if: (if test then alt) expected")
            return If(
                parse_core(datum[1], bound),
                parse_core(datum[2], bound),
                parse_core(datum[3], bound),
            )
        if head is _SETBANG and head not in bound:
            if len(datum) != 3 or not isinstance(datum[1], Symbol):
                raise ParseError("set!: (set! name expr) expected")
            return SetBang(datum[1], parse_core(datum[2], bound))
        if head in PRIMITIVES and head not in bound:
            args = tuple(parse_core(a, bound) for a in datum[1:])
            PRIMITIVES[head].check_arity(len(args))
            return Prim(head, args)
    fn = parse_core(head, bound)
    args = tuple(parse_core(a, bound) for a in datum[1:])
    return App(fn, args)


def parse_expr(source: str | Any) -> Expr:
    """Desugar and parse a single expression (from text or reader data)."""
    datum = read(source) if isinstance(source, str) else source
    return parse_core(desugar(datum))


def parse_def(datum: Any, program_names: frozenset[Symbol] = frozenset()) -> Def:
    """Parse a core ``(define (name params...) body)`` form.

    ``program_names`` holds every top-level name of the enclosing program:
    those names shadow primitives and special forms inside every body, so
    a program may define e.g. its own ``odd?``.
    """
    if (
        not isinstance(datum, list)
        or len(datum) != 3
        or datum[0] is not _DEFINE
        or not isinstance(datum[1], list)
        or not datum[1]
        or not isinstance(datum[1][0], Symbol)
    ):
        raise ParseError("define: (define (name params...) body) expected")
    name = datum[1][0]
    params = _check_params(datum[1][1:], "define")
    body = parse_core(datum[2], program_names | frozenset(params))
    return Def(name, params, body)


def parse_program(source: str | Iterable[Any], goal: str | Symbol | None = None) -> Program:
    """Desugar and parse a whole program.

    ``source`` is either program text or a list of top-level data.  The goal
    function defaults to the name ``main`` if defined, otherwise the last
    definition.
    """
    data = read_all(source) if isinstance(source, str) else list(source)
    core = desugar_program(data)
    program_names = frozenset(
        d[1][0]
        for d in core
        if isinstance(d, list) and len(d) == 3 and isinstance(d[1], list)
        and d[1] and isinstance(d[1][0], Symbol)
    )
    defs = tuple(parse_def(d, program_names) for d in core)
    if not defs:
        raise ParseError("program has no definitions")
    if goal is None:
        names = {d.name for d in defs}
        goal_sym = sym("main") if sym("main") in names else defs[-1].name
    else:
        goal_sym = sym(goal) if isinstance(goal, str) else goal
    return Program(defs, goal_sym)
