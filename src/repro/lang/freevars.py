"""Free-variable computation for CS/ACS expressions."""

from __future__ import annotations

from repro.lang.ast import (
    App,
    DApp,
    DIf,
    DLam,
    DPrim,
    Expr,
    If,
    Lam,
    Let,
    Lift,
    MemoCall,
    Prim,
    SetBang,
    Var,
)
from repro.sexp.datum import Symbol


def free_variables(expr: Expr) -> frozenset[Symbol]:
    """The set of variables occurring free in ``expr``.

    Top-level definition names and primitive names are not variables here;
    callers subtract the globals they know about.
    """
    out: set[Symbol] = set()
    _collect(expr, frozenset(), out)
    return frozenset(out)


def _collect(expr: Expr, bound: frozenset[Symbol], out: set[Symbol]) -> None:
    if isinstance(expr, Var):
        if expr.name not in bound:
            out.add(expr.name)
    elif isinstance(expr, (Lam, DLam)):
        _collect(expr.body, bound | set(expr.params), out)
    elif isinstance(expr, Let):
        _collect(expr.rhs, bound, out)
        _collect(expr.body, bound | {expr.var}, out)
    elif isinstance(expr, SetBang):
        if expr.var not in bound:
            out.add(expr.var)
        _collect(expr.rhs, bound, out)
    elif isinstance(expr, (If, DIf)):
        _collect(expr.test, bound, out)
        _collect(expr.then, bound, out)
        _collect(expr.alt, bound, out)
    elif isinstance(expr, (App, DApp)):
        _collect(expr.fn, bound, out)
        for arg in expr.args:
            _collect(arg, bound, out)
    elif isinstance(expr, (Prim, DPrim, MemoCall)):
        for arg in expr.args:
            _collect(arg, bound, out)
    elif isinstance(expr, Lift):
        _collect(expr.expr, bound, out)
    else:
        # Const and anything without variables.
        for child in expr.children():
            _collect(child, bound, out)
