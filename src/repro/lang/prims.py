"""The primitive operations of Core Scheme.

Each primitive has a run-time implementation shared by the direct
interpreter and the VM, an arity, and a purity flag.  Purity matters to
partial evaluation: only pure primitives may be executed at specialization
time; impure ones (``display``, ``error``, ...) are always residualized.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable

from repro.runtime.errors import PrimitiveError, SchemeError
from repro.runtime.values import (
    NIL,
    Pair,
    UNSPECIFIED,
    is_list,
    is_truthy,
    scheme_eqv,
    scheme_equal,
    scheme_list,
)
from repro.sexp.datum import Char, Symbol, sym
from repro.sexp.writer import write

# Types registered as procedures by the interpreter and the VM.
_PROCEDURE_TYPES: list[type] = []


def register_procedure_type(tp: type) -> None:
    """Declare ``tp`` instances as answering ``#t`` to ``procedure?``."""
    if tp not in _PROCEDURE_TYPES:
        _PROCEDURE_TYPES.append(tp)


def is_procedure_value(value: Any) -> bool:
    return isinstance(value, tuple(_PROCEDURE_TYPES)) if _PROCEDURE_TYPES else False


@dataclass(frozen=True)
class PrimSpec:
    """Description of one primitive operation."""

    name: Symbol
    fn: Callable[..., Any]
    min_arity: int
    max_arity: int | None  # None = variadic
    pure: bool = True

    def check_arity(self, n: int) -> None:
        if n < self.min_arity or (self.max_arity is not None and n > self.max_arity):
            raise PrimitiveError(self.name.name, f"wrong argument count {n}")

    def apply(self, args: list) -> Any:
        self.check_arity(len(args))
        return self.fn(*args)


PRIMITIVES: dict[Symbol, PrimSpec] = {}


def _define(name: str, min_arity: int, max_arity: int | None, pure: bool = True):
    def wrap(fn: Callable[..., Any]) -> Callable[..., Any]:
        symbol = sym(name)
        PRIMITIVES[symbol] = PrimSpec(symbol, fn, min_arity, max_arity, pure)
        return fn

    return wrap


def is_primitive(name: Symbol) -> bool:
    return name in PRIMITIVES


def _number(op: str, x: Any) -> Any:
    if isinstance(x, bool) or not isinstance(x, (int, float)):
        raise PrimitiveError(op, f"expected a number, got {write_value(x)}")
    return x


def _integer(op: str, x: Any) -> int:
    if isinstance(x, bool) or not isinstance(x, int):
        raise PrimitiveError(op, f"expected an integer, got {write_value(x)}")
    return x


def _pair(op: str, x: Any) -> Pair:
    if not isinstance(x, Pair):
        raise PrimitiveError(op, f"expected a pair, got {write_value(x)}")
    return x


def write_value(value: Any) -> str:
    """Render a run-time value in external (write) notation."""
    if value is NIL:
        return "()"
    if value is UNSPECIFIED:
        return "#<unspecified>"
    if isinstance(value, Pair):
        parts = []
        node: Any = value
        while isinstance(node, Pair):
            parts.append(write_value(node.car))
            node = node.cdr
        if node is NIL:
            return "(" + " ".join(parts) + ")"
        return "(" + " ".join(parts) + " . " + write_value(node) + ")"
    if is_procedure_value(value):
        return "#<procedure>"
    try:
        return write(value)
    except TypeError:
        return repr(value)


# -- arithmetic -------------------------------------------------------------


@_define("+", 0, None)
def _add(*args: Any) -> Any:
    total: Any = 0
    for a in args:
        total = total + _number("+", a)
    return total


@_define("-", 1, None)
def _sub(first: Any, *rest: Any) -> Any:
    value = _number("-", first)
    if not rest:
        return -value
    for a in rest:
        value = value - _number("-", a)
    return value


@_define("*", 0, None)
def _mul(*args: Any) -> Any:
    total: Any = 1
    for a in args:
        total = total * _number("*", a)
    return total


@_define("/", 1, None)
def _div(first: Any, *rest: Any) -> Any:
    value = _number("/", first)
    operands = rest if rest else (value,)
    if not rest:
        value = 1
    for a in operands:
        d = _number("/", a)
        if d == 0:
            raise PrimitiveError("/", "division by zero")
        if isinstance(value, int) and isinstance(d, int) and value % d == 0:
            value //= d
        else:
            value /= d
    return value


@_define("quotient", 2, 2)
def _quotient(a: Any, b: Any) -> int:
    x, y = _integer("quotient", a), _integer("quotient", b)
    if y == 0:
        raise PrimitiveError("quotient", "division by zero")
    q = abs(x) // abs(y)
    return q if (x >= 0) == (y >= 0) else -q


@_define("remainder", 2, 2)
def _remainder(a: Any, b: Any) -> int:
    x, y = _integer("remainder", a), _integer("remainder", b)
    if y == 0:
        raise PrimitiveError("remainder", "division by zero")
    return x - _quotient(x, y) * y


@_define("modulo", 2, 2)
def _modulo(a: Any, b: Any) -> int:
    x, y = _integer("modulo", a), _integer("modulo", b)
    if y == 0:
        raise PrimitiveError("modulo", "division by zero")
    return x % y


@_define("abs", 1, 1)
def _abs(a: Any) -> Any:
    return abs(_number("abs", a))


@_define("min", 1, None)
def _min(*args: Any) -> Any:
    return min(_number("min", a) for a in args)


@_define("max", 1, None)
def _max(*args: Any) -> Any:
    return max(_number("max", a) for a in args)


@_define("expt", 2, 2)
def _expt(a: Any, b: Any) -> Any:
    return _number("expt", a) ** _number("expt", b)


@_define("sqrt", 1, 1)
def _sqrt(a: Any) -> Any:
    x = _number("sqrt", a)
    if isinstance(x, int) and x >= 0:
        r = math.isqrt(x)
        if r * r == x:
            return r
    if x < 0:
        raise PrimitiveError("sqrt", "negative argument")
    return math.sqrt(x)


def _comparison(name: str, cmp: Callable[[Any, Any], bool]):
    @_define(name, 2, None)
    def compare(*args: Any) -> bool:
        for a, b in zip(args, args[1:]):
            if not cmp(_number(name, a), _number(name, b)):
                return False
        return True

    return compare


_comparison("=", lambda a, b: a == b)
_comparison("<", lambda a, b: a < b)
_comparison(">", lambda a, b: a > b)
_comparison("<=", lambda a, b: a <= b)
_comparison(">=", lambda a, b: a >= b)


@_define("zero?", 1, 1)
def _zero_p(a: Any) -> bool:
    return _number("zero?", a) == 0


@_define("positive?", 1, 1)
def _positive_p(a: Any) -> bool:
    return _number("positive?", a) > 0


@_define("negative?", 1, 1)
def _negative_p(a: Any) -> bool:
    return _number("negative?", a) < 0


@_define("even?", 1, 1)
def _even_p(a: Any) -> bool:
    return _integer("even?", a) % 2 == 0


@_define("odd?", 1, 1)
def _odd_p(a: Any) -> bool:
    return _integer("odd?", a) % 2 == 1


@_define("add1", 1, 1)
def _add1(a: Any) -> Any:
    return _number("add1", a) + 1


@_define("sub1", 1, 1)
def _sub1(a: Any) -> Any:
    return _number("sub1", a) - 1


# -- type predicates ---------------------------------------------------------


@_define("number?", 1, 1)
def _number_p(a: Any) -> bool:
    return not isinstance(a, bool) and isinstance(a, (int, float))


@_define("integer?", 1, 1)
def _integer_p(a: Any) -> bool:
    return not isinstance(a, bool) and isinstance(a, int)


@_define("boolean?", 1, 1)
def _boolean_p(a: Any) -> bool:
    return isinstance(a, bool)


@_define("symbol?", 1, 1)
def _symbol_p(a: Any) -> bool:
    return isinstance(a, Symbol)


@_define("string?", 1, 1)
def _string_p(a: Any) -> bool:
    return isinstance(a, str)


@_define("char?", 1, 1)
def _char_p(a: Any) -> bool:
    return isinstance(a, Char)


@_define("pair?", 1, 1)
def _pair_p(a: Any) -> bool:
    return isinstance(a, Pair)


@_define("null?", 1, 1)
def _null_p(a: Any) -> bool:
    return a is NIL


@_define("list?", 1, 1)
def _list_p(a: Any) -> bool:
    return a is NIL or (isinstance(a, Pair) and is_list(a))


@_define("procedure?", 1, 1)
def _procedure_p(a: Any) -> bool:
    return is_procedure_value(a)


@_define("atom?", 1, 1)
def _atom_p(a: Any) -> bool:
    return not isinstance(a, Pair)


@_define("not", 1, 1)
def _not(a: Any) -> bool:
    return not is_truthy(a)


@_define("eq?", 2, 2)
def _eq_p(a: Any, b: Any) -> bool:
    return scheme_eqv(a, b)


@_define("eqv?", 2, 2)
def _eqv_p(a: Any, b: Any) -> bool:
    return scheme_eqv(a, b)


@_define("equal?", 2, 2)
def _equal_p(a: Any, b: Any) -> bool:
    return scheme_equal(a, b)


# -- pairs and lists ----------------------------------------------------------


@_define("cons", 2, 2)
def _cons(a: Any, b: Any) -> Pair:
    return Pair(a, b)


@_define("car", 1, 1)
def _car(a: Any) -> Any:
    return _pair("car", a).car


@_define("cdr", 1, 1)
def _cdr(a: Any) -> Any:
    return _pair("cdr", a).cdr


def _accessor(path: str):
    name = "c" + path + "r"

    @_define(name, 1, 1)
    def access(a: Any) -> Any:
        value = a
        for step in reversed(path):
            value = _pair(name, value)
            value = value.car if step == "a" else value.cdr
        return value

    return access


for _path in ("aa", "ad", "da", "dd", "aaa", "aad", "ada", "add",
              "daa", "dad", "dda", "ddd", "addd"):
    _accessor(_path)


@_define("list", 0, None)
def _list(*args: Any) -> Any:
    return scheme_list(*args)


@_define("length", 1, 1)
def _length(a: Any) -> int:
    n = 0
    node = a
    while isinstance(node, Pair):
        n += 1
        node = node.cdr
    if node is not NIL:
        raise PrimitiveError("length", "improper list")
    return n


@_define("append", 0, None)
def _append(*args: Any) -> Any:
    if not args:
        return NIL
    result = args[-1]
    for lst in reversed(args[:-1]):
        items = []
        node = lst
        while isinstance(node, Pair):
            items.append(node.car)
            node = node.cdr
        if node is not NIL:
            raise PrimitiveError("append", "improper list")
        for item in reversed(items):
            result = Pair(item, result)
    return result


@_define("reverse", 1, 1)
def _reverse(a: Any) -> Any:
    result: Any = NIL
    node = a
    while isinstance(node, Pair):
        result = Pair(node.car, result)
        node = node.cdr
    if node is not NIL:
        raise PrimitiveError("reverse", "improper list")
    return result


@_define("list-ref", 2, 2)
def _list_ref(a: Any, k: Any) -> Any:
    n = _integer("list-ref", k)
    node = a
    while n > 0:
        node = _pair("list-ref", node).cdr
        n -= 1
    return _pair("list-ref", node).car


@_define("list-tail", 2, 2)
def _list_tail(a: Any, k: Any) -> Any:
    n = _integer("list-tail", k)
    node = a
    while n > 0:
        node = _pair("list-tail", node).cdr
        n -= 1
    return node


def _searcher(name: str, eq: Callable[[Any, Any], bool], assoc: bool):
    @_define(name, 2, 2)
    def search(key: Any, lst: Any) -> Any:
        node = lst
        while isinstance(node, Pair):
            entry = node.car
            probe = _pair(name, entry).car if assoc else entry
            if eq(key, probe):
                return entry if assoc else node
            node = node.cdr
        return False

    return search


_searcher("memq", scheme_eqv, assoc=False)
_searcher("memv", scheme_eqv, assoc=False)
_searcher("member", scheme_equal, assoc=False)
_searcher("assq", scheme_eqv, assoc=True)
_searcher("assv", scheme_eqv, assoc=True)
_searcher("assoc", scheme_equal, assoc=True)


# -- strings and symbols -------------------------------------------------------


@_define("symbol->string", 1, 1)
def _symbol_to_string(a: Any) -> str:
    if not isinstance(a, Symbol):
        raise PrimitiveError("symbol->string", "expected a symbol")
    return a.name


@_define("string->symbol", 1, 1)
def _string_to_symbol(a: Any) -> Symbol:
    if not isinstance(a, str):
        raise PrimitiveError("string->symbol", "expected a string")
    return sym(a)


@_define("string-append", 0, None)
def _string_append(*args: Any) -> str:
    for a in args:
        if not isinstance(a, str):
            raise PrimitiveError("string-append", "expected strings")
    return "".join(args)


@_define("string-length", 1, 1)
def _string_length(a: Any) -> int:
    if not isinstance(a, str):
        raise PrimitiveError("string-length", "expected a string")
    return len(a)


@_define("string=?", 2, 2)
def _string_eq(a: Any, b: Any) -> bool:
    if not (isinstance(a, str) and isinstance(b, str)):
        raise PrimitiveError("string=?", "expected strings")
    return a == b


@_define("number->string", 1, 1)
def _number_to_string(a: Any) -> str:
    return write(_number("number->string", a))


@_define("string->number", 1, 1)
def _string_to_number(a: Any) -> Any:
    if not isinstance(a, str):
        raise PrimitiveError("string->number", "expected a string")
    try:
        return int(a)
    except ValueError:
        try:
            return float(a)
        except ValueError:
            return False


# -- effects -------------------------------------------------------------------


@_define("display", 1, 1, pure=False)
def _display(a: Any) -> Any:
    text = a if isinstance(a, str) else write_value(a)
    print(text, end="")
    return UNSPECIFIED


@_define("newline", 0, 0, pure=False)
def _newline() -> Any:
    print()
    return UNSPECIFIED


@_define("write", 1, 1, pure=False)
def _write_prim(a: Any) -> Any:
    print(write_value(a), end="")
    return UNSPECIFIED


@_define("error", 1, None, pure=False)
def _error(message: Any, *irritants: Any) -> Any:
    text = message if isinstance(message, str) else write_value(message)
    if irritants:
        text += " " + " ".join(write_value(i) for i in irritants)
    raise SchemeError(text)


@_define("void", 0, 0)
def _void() -> Any:
    return UNSPECIFIED


# -- cells (introduced by assignment elimination) --------------------------------


class Cell:
    """A mutable reference cell; the target of eliminated ``set!`` forms."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"#<cell {write_value(self.value)}>"


@_define("make-cell", 1, 1, pure=False)
def _make_cell(a: Any) -> Cell:
    return Cell(a)


@_define("cell-ref", 1, 1, pure=False)
def _cell_ref(a: Any) -> Any:
    if not isinstance(a, Cell):
        raise PrimitiveError("cell-ref", "expected a cell")
    return a.value


@_define("cell-set!", 2, 2, pure=False)
def _cell_set(a: Any, value: Any) -> Any:
    if not isinstance(a, Cell):
        raise PrimitiveError("cell-set!", "expected a cell")
    a.value = value
    return UNSPECIFIED
