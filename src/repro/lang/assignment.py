"""Assignment elimination.

Converts every assigned variable into an explicit reference cell so the
rest of the system (the partial evaluator and the compilers) only ever sees
immutable bindings.  After this pass no ``SetBang`` node remains:

* a binder of an assigned variable allocates a cell: ``(make-cell v)``;
* references become ``(cell-ref x)``;
* assignments become ``(cell-set! x e)``.

This is the pass the paper lists among the specializer's front-end duties
("performs lambda lifting and assignment elimination").  The program must
be alpha-renamed first; :func:`eliminate_assignments` does so itself.
"""

from __future__ import annotations

from repro.lang.alpha import alpha_rename
from repro.lang.ast import (
    App,
    Const,
    Def,
    Expr,
    If,
    Lam,
    Let,
    Prim,
    Program,
    SetBang,
    Var,
    walk,
)
from repro.lang.gensym import Gensym
from repro.sexp.datum import Symbol, sym

_MAKE_CELL = sym("make-cell")
_CELL_REF = sym("cell-ref")
_CELL_SET = sym("cell-set!")


def assigned_variables(expr: Expr) -> frozenset[Symbol]:
    """All ``set!`` targets in ``expr``."""
    return frozenset(
        node.var for node in walk(expr) if isinstance(node, SetBang)
    )


def has_assignments(expr: Expr) -> bool:
    return any(isinstance(node, SetBang) for node in walk(expr))


def eliminate_assignments(program: Program, gensym: Gensym | None = None) -> Program:
    """Remove every ``set!`` from ``program`` by introducing cells."""
    gs = gensym or Gensym("a")
    program = alpha_rename(program, gs)
    defs = []
    for d in program.defs:
        assigned = assigned_variables(d.body)
        body = _eliminate(d.body, assigned, gs)
        # Assigned top-level parameters get a cell binding around the body:
        # the raw value arrives under a fresh name; the original name is
        # rebound to a cell, which the rewritten body reads via cell-ref.
        params = list(d.params)
        for i, p in enumerate(params):
            if p in assigned:
                incoming = gs.fresh(p)
                params[i] = incoming
                body = Let(p, Prim(_MAKE_CELL, (Var(incoming),)), body)
        defs.append(Def(d.name, tuple(params), body))
    return Program(tuple(defs), program.goal)


def eliminate_assignments_expr(expr: Expr, gensym: Gensym | None = None) -> Expr:
    """Expression-level variant (free variables must not be assigned)."""
    from repro.lang.alpha import alpha_rename_expr

    gs = gensym or Gensym("a")
    expr = alpha_rename_expr(expr, gs)
    return _eliminate(expr, assigned_variables(expr), gs)


def _eliminate(expr: Expr, assigned: frozenset[Symbol], gensym: Gensym) -> Expr:
    if isinstance(expr, Var):
        if expr.name in assigned:
            return Prim(_CELL_REF, (expr,))
        return expr
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, SetBang):
        rhs = _eliminate(expr.rhs, assigned, gensym)
        return Prim(_CELL_SET, (Var(expr.var), rhs))
    if isinstance(expr, Lam):
        body = _eliminate(expr.body, assigned, gensym)
        # Assigned parameters get rebound to cells on entry.
        params = list(expr.params)
        for i, p in enumerate(params):
            if p in assigned:
                fresh = gensym.fresh(p)
                params[i] = fresh
                body = Let(p, Prim(_MAKE_CELL, (Var(fresh),)), body)
        return Lam(tuple(params), body)
    if isinstance(expr, Let):
        rhs = _eliminate(expr.rhs, assigned, gensym)
        body = _eliminate(expr.body, assigned, gensym)
        if expr.var in assigned:
            rhs = Prim(_MAKE_CELL, (rhs,))
        return Let(expr.var, rhs, body)
    if isinstance(expr, If):
        return If(
            _eliminate(expr.test, assigned, gensym),
            _eliminate(expr.then, assigned, gensym),
            _eliminate(expr.alt, assigned, gensym),
        )
    if isinstance(expr, App):
        return App(
            _eliminate(expr.fn, assigned, gensym),
            tuple(_eliminate(a, assigned, gensym) for a in expr.args),
        )
    if isinstance(expr, Prim):
        return Prim(
            expr.op, tuple(_eliminate(a, assigned, gensym) for a in expr.args)
        )
    raise TypeError(f"assignment elimination does not handle {type(expr).__name__}")
