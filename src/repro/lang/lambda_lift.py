"""Lambda lifting (Johnsson [29], restricted to directly-called bindings).

A ``let``-bound lambda all of whose uses are in operator position is lifted
to a new top-level definition; the lambda's free variables become extra
leading parameters and every call site passes them explicitly.  Lambdas
that escape (are used as values) stay where they are — the VM compiles
them to closures, and the specializer treats them as (static or dynamic)
closures.

The pass expects and preserves alpha-unique bound names; it runs the
renamer itself.  It iterates until no more bindings are liftable (a lifted
body can expose further candidates).
"""

from __future__ import annotations

from repro.lang.alpha import alpha_rename
from repro.lang.ast import (
    App,
    Const,
    Def,
    Expr,
    If,
    Lam,
    Let,
    Prim,
    Program,
    SetBang,
    Var,
)
from repro.lang.freevars import free_variables
from repro.lang.gensym import Gensym
from repro.sexp.datum import Symbol, sym


def lambda_lift(program: Program, gensym: Gensym | None = None) -> Program:
    """Lift directly-called local lambdas to top level."""
    gs = gensym or Gensym("ll")
    program = alpha_rename(program, gs)
    globals_ = {d.name for d in program.defs}

    changed = True
    while changed:
        changed = False
        new_defs: list[Def] = []
        lifted: list[Def] = []
        for d in program.defs:
            body, extra = _lift_in_def(d, globals_, gs)
            new_defs.append(Def(d.name, d.params, body))
            lifted.extend(extra)
        if lifted:
            changed = True
            globals_.update(l.name for l in lifted)
            program = Program(tuple(new_defs) + tuple(lifted), program.goal)
        else:
            program = Program(tuple(new_defs), program.goal)
    return program


def _lift_in_def(
    d: Def, globals_: set[Symbol], gensym: Gensym
) -> tuple[Expr, list[Def]]:
    lifted: list[Def] = []
    body = _lift(d.body, globals_ | set(d.params), lifted, gensym, d.name)
    return body, lifted


def _only_called(name: Symbol, expr: Expr) -> bool:
    """True if every free occurrence of ``name`` in ``expr`` is a call target."""
    ok = True

    def check(e: Expr, shadowed: bool) -> None:
        nonlocal ok
        if not ok or shadowed:
            return
        if isinstance(e, Var):
            if e.name is name:
                ok = False
        elif isinstance(e, App):
            # The operator position is allowed to be the name itself.
            if not (isinstance(e.fn, Var) and e.fn.name is name):
                check(e.fn, shadowed)
            for a in e.args:
                check(a, shadowed)
        elif isinstance(e, Lam):
            check(e.body, shadowed or name in e.params)
        elif isinstance(e, Let):
            check(e.rhs, shadowed)
            check(e.body, shadowed or e.var is name)
        else:
            for c in e.children():
                check(c, shadowed)

    check(expr, False)
    return ok


def _replace_calls(expr: Expr, name: Symbol, extra: tuple[Symbol, ...]) -> Expr:
    """Prepend ``extra`` arguments at every call to ``name``."""

    def rewrite(e: Expr) -> Expr:
        if isinstance(e, App) and isinstance(e.fn, Var) and e.fn.name is name:
            args = tuple(rewrite(a) for a in e.args)
            return App(e.fn, tuple(Var(v) for v in extra) + args)
        if isinstance(e, (Const, Var)):
            return e
        if isinstance(e, Lam):
            return Lam(e.params, rewrite(e.body))
        if isinstance(e, Let):
            return Let(e.var, rewrite(e.rhs), rewrite(e.body))
        if isinstance(e, If):
            return If(rewrite(e.test), rewrite(e.then), rewrite(e.alt))
        if isinstance(e, App):
            return App(rewrite(e.fn), tuple(rewrite(a) for a in e.args))
        if isinstance(e, Prim):
            return Prim(e.op, tuple(rewrite(a) for a in e.args))
        if isinstance(e, SetBang):
            return SetBang(e.var, rewrite(e.rhs))
        raise TypeError(f"lambda lifting does not handle {type(e).__name__}")

    return rewrite(expr)


def _lift(
    expr: Expr,
    in_scope: set[Symbol],
    lifted: list[Def],
    gensym: Gensym,
    host: Symbol,
) -> Expr:
    if isinstance(expr, (Const, Var)):
        return expr
    if isinstance(expr, Lam):
        return Lam(
            expr.params,
            _lift(expr.body, in_scope | set(expr.params), lifted, gensym, host),
        )
    if isinstance(expr, Let):
        rhs = _lift(expr.rhs, in_scope, lifted, gensym, host)
        body = _lift(expr.body, in_scope | {expr.var}, lifted, gensym, host)
        if isinstance(rhs, Lam) and _only_called(expr.var, body):
            fvs = sorted(
                free_variables(rhs) - _globals_of(lifted, host),
                key=lambda s: s.name,
            )
            fvs = [v for v in fvs if v in in_scope]
            top_name = sym(f"{host.name}%{expr.var.name}")
            new_body = _replace_calls(body, expr.var, tuple(fvs))
            # Calls inside the lifted lambda itself (it cannot be
            # self-recursive — let scoping — but may call siblings).
            lifted.append(Def(top_name, tuple(fvs) + rhs.params, rhs.body))
            return _rename_fn(new_body, expr.var, top_name)
        return Let(expr.var, rhs, body)
    if isinstance(expr, If):
        return If(
            _lift(expr.test, in_scope, lifted, gensym, host),
            _lift(expr.then, in_scope, lifted, gensym, host),
            _lift(expr.alt, in_scope, lifted, gensym, host),
        )
    if isinstance(expr, App):
        return App(
            _lift(expr.fn, in_scope, lifted, gensym, host),
            tuple(_lift(a, in_scope, lifted, gensym, host) for a in expr.args),
        )
    if isinstance(expr, Prim):
        return Prim(
            expr.op,
            tuple(_lift(a, in_scope, lifted, gensym, host) for a in expr.args),
        )
    if isinstance(expr, SetBang):
        return SetBang(expr.var, _lift(expr.rhs, in_scope, lifted, gensym, host))
    raise TypeError(f"lambda lifting does not handle {type(expr).__name__}")


def _globals_of(lifted: list[Def], host: Symbol) -> frozenset[Symbol]:
    return frozenset(l.name for l in lifted) | {host}


def _rename_fn(expr: Expr, old: Symbol, new: Symbol) -> Expr:
    """Rename operator occurrences of ``old`` to the top-level name ``new``."""

    def rewrite(e: Expr) -> Expr:
        if isinstance(e, Var):
            return Var(new) if e.name is old else e
        if isinstance(e, Const):
            return e
        if isinstance(e, Lam):
            return Lam(e.params, rewrite(e.body))
        if isinstance(e, Let):
            return Let(e.var, rewrite(e.rhs), rewrite(e.body))
        if isinstance(e, If):
            return If(rewrite(e.test), rewrite(e.then), rewrite(e.alt))
        if isinstance(e, App):
            return App(rewrite(e.fn), tuple(rewrite(a) for a in e.args))
        if isinstance(e, Prim):
            return Prim(e.op, tuple(rewrite(a) for a in e.args))
        if isinstance(e, SetBang):
            return SetBang(e.var, rewrite(e.rhs))
        raise TypeError(f"lambda lifting does not handle {type(e).__name__}")

    return rewrite(expr)
