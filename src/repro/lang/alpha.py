"""Alpha renaming: make every bound variable name unique.

Several later passes (assignment elimination, lambda lifting, binding-time
analysis) assume unique bound names so they can use global maps instead of
scoped environments.
"""

from __future__ import annotations

from repro.lang.ast import (
    App,
    Const,
    Def,
    Expr,
    If,
    Lam,
    Let,
    Prim,
    Program,
    SetBang,
    Var,
)
from repro.lang.gensym import Gensym
from repro.sexp.datum import Symbol


def alpha_rename_expr(
    expr: Expr,
    gensym: Gensym,
    env: dict[Symbol, Symbol] | None = None,
    keep_free: bool = True,
) -> Expr:
    """Rename bound variables in ``expr`` to fresh names.

    Free variables are left alone (they refer to parameters or globals that
    the caller controls).
    """
    return _rename(expr, dict(env or {}), gensym)


def _rename(expr: Expr, env: dict[Symbol, Symbol], gensym: Gensym) -> Expr:
    if isinstance(expr, Const):
        return expr
    if isinstance(expr, Var):
        return Var(env.get(expr.name, expr.name))
    if isinstance(expr, Lam):
        fresh = [gensym.fresh(p) for p in expr.params]
        inner = dict(env)
        inner.update(zip(expr.params, fresh))
        return Lam(tuple(fresh), _rename(expr.body, inner, gensym))
    if isinstance(expr, Let):
        rhs = _rename(expr.rhs, env, gensym)
        fresh_var = gensym.fresh(expr.var)
        inner = dict(env)
        inner[expr.var] = fresh_var
        return Let(fresh_var, rhs, _rename(expr.body, inner, gensym))
    if isinstance(expr, If):
        return If(
            _rename(expr.test, env, gensym),
            _rename(expr.then, env, gensym),
            _rename(expr.alt, env, gensym),
        )
    if isinstance(expr, App):
        return App(
            _rename(expr.fn, env, gensym),
            tuple(_rename(a, env, gensym) for a in expr.args),
        )
    if isinstance(expr, Prim):
        return Prim(expr.op, tuple(_rename(a, env, gensym) for a in expr.args))
    if isinstance(expr, SetBang):
        return SetBang(env.get(expr.var, expr.var), _rename(expr.rhs, env, gensym))
    raise TypeError(f"alpha renaming does not handle {type(expr).__name__}")


def alpha_rename(
    program: Program,
    gensym: Gensym | None = None,
    rename_params: bool = False,
) -> Program:
    """Alpha-rename every definition body.

    With ``rename_params=False`` top-level parameter names are left intact
    (they are already unique per definition and keeping them makes residual
    programs readable); all inner binders get fresh names.  With
    ``rename_params=True`` parameters are renamed too, so every bound name
    in the whole program is globally unique — the precondition of the
    binding-time analysis.
    """
    gs = gensym or Gensym("r")
    defs = []
    for d in program.defs:
        if rename_params:
            params = tuple(gs.fresh(p) for p in d.params)
            env = dict(zip(d.params, params))
        else:
            params = d.params
            env = {}
        body = _rename(d.body, env, gs)
        defs.append(Def(d.name, params, body))
    return Program(tuple(defs), program.goal)
