"""Desugaring the surface Scheme subset into core forms.

The paper's specializer "desugars input programs to Core Scheme" before
anything else.  This pass is a source-to-source macro expander over reader
data: every derived form is rewritten into the core forms understood by
:mod:`repro.lang.parser` — ``quote``, ``lambda``, single-binding ``let``,
three-armed ``if``, ``set!``, applications, and primitive calls.

Supported derived forms: multi-binding ``let``, named ``let``, ``let*``,
``letrec``, ``begin``, ``cond`` (with ``else``), ``case``, ``and``, ``or``,
``when``, ``unless``, ``quasiquote`` (with ``unquote`` and
``unquote-splicing``), two-armed ``if``, and both ``define`` forms.

Keyword symbols (``let``, ``cond``, ...) are reserved in operator position;
the desugarer is not hygienic in the R5RS sense, but every temporary it
introduces contains ``%``, which user programs cannot bind.
"""

from __future__ import annotations

from typing import Any

from repro.lang.gensym import Gensym
from repro.sexp.datum import Symbol, sym

_QUOTE = sym("quote")
_QUASIQUOTE = sym("quasiquote")
_UNQUOTE = sym("unquote")
_UNQUOTE_SPLICING = sym("unquote-splicing")
_LAMBDA = sym("lambda")
_LET = sym("let")
_LETSTAR = sym("let*")
_LETREC = sym("letrec")
_IF = sym("if")
_COND = sym("cond")
_CASE = sym("case")
_ELSE = sym("else")
_AND = sym("and")
_OR = sym("or")
_WHEN = sym("when")
_UNLESS = sym("unless")
_BEGIN = sym("begin")
_DEFINE = sym("define")
_SETBANG = sym("set!")
_VOID = sym("void")
_CONS = sym("cons")
_APPEND = sym("append")
_LIST = sym("list")


class DesugarError(ValueError):
    """Raised when a derived form is malformed."""


_gensym = Gensym("t")


def desugar(datum: Any) -> Any:
    """Expand every derived form in ``datum``, recursively."""
    if not isinstance(datum, list) or not datum:
        return datum
    head = datum[0]
    if isinstance(head, Symbol):
        expander = _EXPANDERS.get(head)
        if expander is not None:
            return expander(datum)
    return [desugar(item) for item in datum]


def desugar_program(data: list) -> list:
    """Desugar a list of top-level forms into core ``define`` forms."""
    return [_desugar_define(d) for d in data]


# -- helpers -----------------------------------------------------------------


def _body_to_expr(body: list, form: str) -> Any:
    """Convert a define/lambda/let body (1+ expressions) to one expression."""
    if not body:
        raise DesugarError(f"{form}: empty body")
    if len(body) == 1:
        return body[0]
    return [_BEGIN, *body]


def _expect(cond: bool, message: str) -> None:
    if not cond:
        raise DesugarError(message)


# -- define -------------------------------------------------------------------


def _desugar_define(datum: Any) -> Any:
    _expect(
        isinstance(datum, list) and len(datum) >= 2 and datum[0] is _DEFINE,
        "top level: (define ...) expected",
    )
    header = datum[1]
    if isinstance(header, Symbol):
        # (define name expr) -- only for (define name (lambda ...)).
        _expect(len(datum) == 3, "define: (define name expr) expected")
        value = datum[2]
        _expect(
            isinstance(value, list) and value and value[0] is _LAMBDA,
            "define: only procedure definitions are supported at top level",
        )
        expanded = desugar(value)
        return [_DEFINE, [header, *expanded[1]], expanded[2]]
    _expect(
        isinstance(header, list) and header and isinstance(header[0], Symbol),
        "define: (define (name params...) body...) expected",
    )
    body = desugar(_body_to_expr(datum[2:], "define"))
    return [_DEFINE, header, body]


# -- expanders ------------------------------------------------------------------


def _expand_quote(datum: list) -> Any:
    _expect(len(datum) == 2, "quote: one subform expected")
    return datum


def _expand_lambda(datum: list) -> Any:
    _expect(len(datum) >= 3, "lambda: (lambda (params...) body...) expected")
    return [_LAMBDA, datum[1], desugar(_body_to_expr(datum[2:], "lambda"))]


def _expand_if(datum: list) -> Any:
    if len(datum) == 3:
        return [_IF, desugar(datum[1]), desugar(datum[2]), [_VOID]]
    _expect(len(datum) == 4, "if: two or three subforms expected")
    return [_IF, desugar(datum[1]), desugar(datum[2]), desugar(datum[3])]


def _expand_begin(datum: list) -> Any:
    body = datum[1:]
    if not body:
        return [_VOID]
    if len(body) == 1:
        return desugar(body[0])
    ignored = _gensym.fresh("seq")
    return [
        _LET,
        [ignored, desugar(body[0])],
        desugar([_BEGIN, *body[1:]]),
    ]


def _expand_let(datum: list) -> Any:
    _expect(len(datum) >= 3, "let: bindings and body expected")
    if isinstance(datum[1], Symbol):
        return _expand_named_let(datum)
    if (
        isinstance(datum[1], list)
        and len(datum[1]) == 2
        and isinstance(datum[1][0], Symbol)
        and len(datum) == 3
    ):
        # Already in core shape: (let (x rhs) body).
        return [_LET, [datum[1][0], desugar(datum[1][1])], desugar(datum[2])]
    bindings = datum[1]
    _expect(
        isinstance(bindings, list)
        and all(
            isinstance(b, list) and len(b) == 2 and isinstance(b[0], Symbol)
            for b in bindings
        ),
        "let: bindings must be ((name expr) ...)",
    )
    body = _body_to_expr(datum[2:], "let")
    if not bindings:
        return desugar(body)
    if len(bindings) == 1:
        name, rhs = bindings[0]
        return [_LET, [name, desugar(rhs)], desugar(body)]
    # Parallel multi-binding let becomes an application of a lambda.
    names = [b[0] for b in bindings]
    rhss = [desugar(b[1]) for b in bindings]
    return [[_LAMBDA, names, desugar(body)], *rhss]


def _expand_named_let(datum: list) -> Any:
    name = datum[1]
    _expect(len(datum) >= 4, "named let: bindings and body expected")
    bindings = datum[2]
    _expect(
        isinstance(bindings, list)
        and all(
            isinstance(b, list) and len(b) == 2 and isinstance(b[0], Symbol)
            for b in bindings
        ),
        "named let: bindings must be ((name expr) ...)",
    )
    body = _body_to_expr(datum[3:], "named let")
    lam = [_LAMBDA, [b[0] for b in bindings], body]
    call = [name, *[b[1] for b in bindings]]
    return desugar([_LETREC, [[name, lam]], call])


def _expand_letstar(datum: list) -> Any:
    _expect(len(datum) >= 3, "let*: bindings and body expected")
    bindings = datum[1]
    _expect(isinstance(bindings, list), "let*: bindings must be a list")
    body = _body_to_expr(datum[2:], "let*")
    if not bindings:
        return desugar(body)
    first, rest = bindings[0], bindings[1:]
    return desugar([_LET, [first], [_LETSTAR, rest, body]])


def _expand_letrec(datum: list) -> Any:
    _expect(len(datum) >= 3, "letrec: bindings and body expected")
    bindings = datum[1]
    _expect(
        isinstance(bindings, list)
        and all(
            isinstance(b, list) and len(b) == 2 and isinstance(b[0], Symbol)
            for b in bindings
        ),
        "letrec: bindings must be ((name expr) ...)",
    )
    body = _body_to_expr(datum[2:], "letrec")
    if not bindings:
        return desugar(body)
    # Standard expansion: bind names to placeholders, assign, run the body.
    # Assignment elimination later converts the set! forms to cells.
    outer = [[b[0], [_VOID]] for b in bindings]
    assignments = [[_SETBANG, b[0], b[1]] for b in bindings]
    return desugar([_LET, outer, [_BEGIN, *assignments, body]])


def _expand_cond(datum: list) -> Any:
    clauses = datum[1:]
    _expect(bool(clauses), "cond: at least one clause expected")
    return desugar(_cond_clauses(clauses))


def _cond_clauses(clauses: list) -> Any:
    if not clauses:
        return [_VOID]
    clause = clauses[0]
    _expect(isinstance(clause, list) and clause, "cond: malformed clause")
    if clause[0] is _ELSE:
        _expect(len(clauses) == 1, "cond: else clause must be last")
        return _body_to_expr(clause[1:], "cond")
    if len(clause) == 1:
        tmp = _gensym.fresh("cond")
        return [
            _LET,
            [[tmp, clause[0]]],
            [_IF, tmp, tmp, _cond_clauses(clauses[1:])],
        ]
    return [
        _IF,
        clause[0],
        _body_to_expr(clause[1:], "cond"),
        _cond_clauses(clauses[1:]),
    ]


def _expand_case(datum: list) -> Any:
    _expect(len(datum) >= 3, "case: key and clauses expected")
    key = _gensym.fresh("case")
    clauses = []
    for clause in datum[2:]:
        _expect(isinstance(clause, list) and len(clause) >= 2, "case: malformed clause")
        if clause[0] is _ELSE:
            clauses.append(clause)
        else:
            _expect(isinstance(clause[0], list), "case: datum list expected")
            test = [sym("memv"), key, [_QUOTE, clause[0]]]
            clauses.append([test, *clause[1:]])
    return desugar([_LET, [[key, datum[1]]], [_COND, *clauses]])


def _expand_and(datum: list) -> Any:
    args = datum[1:]
    if not args:
        return True
    if len(args) == 1:
        return desugar(args[0])
    return [_IF, desugar(args[0]), desugar([_AND, *args[1:]]), False]


def _expand_or(datum: list) -> Any:
    args = datum[1:]
    if not args:
        return False
    if len(args) == 1:
        return desugar(args[0])
    tmp = _gensym.fresh("or")
    return [
        _LET,
        [tmp, desugar(args[0])],
        [_IF, tmp, tmp, desugar([_OR, *args[1:]])],
    ]


def _expand_when(datum: list) -> Any:
    _expect(len(datum) >= 3, "when: test and body expected")
    return desugar([_IF, datum[1], [_BEGIN, *datum[2:]], [_VOID]])


def _expand_unless(datum: list) -> Any:
    _expect(len(datum) >= 3, "unless: test and body expected")
    return desugar([_IF, datum[1], [_VOID], [_BEGIN, *datum[2:]]])


def _expand_quasiquote(datum: list) -> Any:
    _expect(len(datum) == 2, "quasiquote: one subform expected")
    return desugar(_qq(datum[1], 1))


def _qq(template: Any, depth: int) -> Any:
    """Expand one quasiquote template at nesting ``depth``."""
    if not isinstance(template, list):
        return [_QUOTE, template]
    if template and template[0] is _UNQUOTE:
        _expect(len(template) == 2, "unquote: one subform expected")
        if depth == 1:
            return template[1]
        return [_LIST, [_QUOTE, _UNQUOTE], _qq(template[1], depth - 1)]
    if template and template[0] is _QUASIQUOTE:
        _expect(len(template) == 2, "quasiquote: one subform expected")
        return [_LIST, [_QUOTE, _QUASIQUOTE], _qq(template[1], depth + 1)]
    if not template:
        return [_QUOTE, []]
    first = template[0]
    if (
        isinstance(first, list)
        and first
        and first[0] is _UNQUOTE_SPLICING
        and depth == 1
    ):
        _expect(len(first) == 2, "unquote-splicing: one subform expected")
        return [_APPEND, first[1], _qq(template[1:], depth)]
    return [_CONS, _qq(first, depth), _qq(template[1:], depth)]


def _expand_setbang(datum: list) -> Any:
    _expect(
        len(datum) == 3 and isinstance(datum[1], Symbol),
        "set!: (set! name expr) expected",
    )
    return [_SETBANG, datum[1], desugar(datum[2])]


_EXPANDERS = {
    _QUOTE: _expand_quote,
    _QUASIQUOTE: _expand_quasiquote,
    _LAMBDA: _expand_lambda,
    _IF: _expand_if,
    _BEGIN: _expand_begin,
    _LET: _expand_let,
    _LETSTAR: _expand_letstar,
    _LETREC: _expand_letrec,
    _COND: _expand_cond,
    _CASE: _expand_case,
    _AND: _expand_and,
    _OR: _expand_or,
    _WHEN: _expand_when,
    _UNLESS: _expand_unless,
    _SETBANG: _expand_setbang,
}
