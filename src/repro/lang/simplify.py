"""Local simplifications run before analysis.

Currently one rewrite, *beta-let*: an application whose operator is a
literal lambda becomes a chain of ``let`` bindings::

    ((lambda (x1 ... xn) M) A1 ... An)  ==>  (let (x1 A1) ... (let (xn An) M))

The desugarer produces this shape for multi-binding ``let``; converting it
back to ``let`` lets the binding-time analysis give each binding its own
binding time instead of approximating through a closure.

Safety: with alpha-unique names the nesting cannot capture (``Ai`` cannot
reference ``xj``), and evaluation order of the arguments is preserved.
"""

from __future__ import annotations

from repro.lang.ast import (
    App,
    Const,
    Def,
    Expr,
    If,
    Lam,
    Let,
    Prim,
    Program,
    SetBang,
    Var,
)


def beta_let(expr: Expr) -> Expr:
    """Apply the beta-let rewrite everywhere in ``expr`` (bottom-up)."""
    expr = _map_children(expr, beta_let)
    if isinstance(expr, App) and isinstance(expr.fn, Lam):
        lam = expr.fn
        if len(lam.params) == len(expr.args):
            body = lam.body
            for param, arg in zip(reversed(lam.params), reversed(expr.args)):
                body = Let(param, arg, body)
            return body
    return expr


def beta_let_program(program: Program) -> Program:
    return Program(
        tuple(Def(d.name, d.params, beta_let(d.body)) for d in program.defs),
        program.goal,
    )


def _map_children(expr: Expr, f) -> Expr:
    if isinstance(expr, (Const, Var)):
        return expr
    if isinstance(expr, Lam):
        return Lam(expr.params, f(expr.body))
    if isinstance(expr, Let):
        return Let(expr.var, f(expr.rhs), f(expr.body))
    if isinstance(expr, If):
        return If(f(expr.test), f(expr.then), f(expr.alt))
    if isinstance(expr, App):
        return App(f(expr.fn), tuple(f(a) for a in expr.args))
    if isinstance(expr, Prim):
        return Prim(expr.op, tuple(f(a) for a in expr.args))
    if isinstance(expr, SetBang):
        return SetBang(expr.var, f(expr.rhs))
    raise TypeError(f"simplify does not handle {type(expr).__name__}")
