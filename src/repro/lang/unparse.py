"""Unparsing CS/ACS expressions back to s-expressions.

The inverse of the parser for core forms.  Annotated constructs render in
the paper's notation: ``lift``, ``(O^D ...)``, ``lambda^D``, ``@^D``,
``if^D``, and ``(memo-call f ...)``, so annotated programs can be printed
and inspected.  ``parse_expr(unparse(e)) == e`` holds for pure CS
expressions (tested), which is what the source backend relies on.
"""

from __future__ import annotations

from typing import Any

from repro.lang.ast import (
    App,
    Const,
    DApp,
    DIf,
    DLam,
    DPrim,
    Def,
    Expr,
    If,
    Lam,
    Let,
    Lift,
    MemoCall,
    Prim,
    Program,
    SetBang,
    Var,
)
from repro.sexp.datum import Symbol, sym

_QUOTE = sym("quote")
_LAMBDA = sym("lambda")
_LET = sym("let")
_IF = sym("if")
_SETBANG = sym("set!")
_DEFINE = sym("define")
_LIFT = sym("lift")
_DLAMBDA = sym("lambda^D")
_DAPP = sym("@^D")
_DIF = sym("if^D")
_MEMO = sym("memo-call")


def _thaw(value: Any) -> Any:
    """Convert frozen constant data (tuples) back to reader lists."""
    if isinstance(value, tuple):
        return [_thaw(item) for item in value]
    return value


def _const_datum(value: Any) -> Any:
    """Render a constant, quoting when the datum is not self-evaluating."""
    if isinstance(value, (Symbol, tuple)):
        return [_QUOTE, _thaw(value)]
    return value


def unparse(expr: Expr) -> Any:
    """Convert an expression to reader data."""
    if isinstance(expr, Const):
        return _const_datum(expr.value)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Lam):
        return [_LAMBDA, list(expr.params), unparse(expr.body)]
    if isinstance(expr, Let):
        return [_LET, [expr.var, unparse(expr.rhs)], unparse(expr.body)]
    if isinstance(expr, If):
        return [_IF, unparse(expr.test), unparse(expr.then), unparse(expr.alt)]
    if isinstance(expr, App):
        return [unparse(expr.fn), *[unparse(a) for a in expr.args]]
    if isinstance(expr, Prim):
        return [expr.op, *[unparse(a) for a in expr.args]]
    if isinstance(expr, SetBang):
        return [_SETBANG, expr.var, unparse(expr.rhs)]
    if isinstance(expr, Lift):
        return [_LIFT, unparse(expr.expr)]
    if isinstance(expr, DPrim):
        return [sym(expr.op.name + "^D"), *[unparse(a) for a in expr.args]]
    if isinstance(expr, DLam):
        return [_DLAMBDA, list(expr.params), unparse(expr.body)]
    if isinstance(expr, DApp):
        return [_DAPP, unparse(expr.fn), *[unparse(a) for a in expr.args]]
    if isinstance(expr, DIf):
        return [_DIF, unparse(expr.test), unparse(expr.then), unparse(expr.alt)]
    if isinstance(expr, MemoCall):
        return [_MEMO, expr.name, *[unparse(a) for a in expr.args]]
    raise TypeError(f"cannot unparse {type(expr).__name__}")


def unparse_def(d: Def) -> Any:
    return [_DEFINE, [d.name, *d.params], unparse(d.body)]


def unparse_program(program: Program) -> list:
    """Convert a program to a list of top-level ``define`` forms."""
    return [unparse_def(d) for d in program.defs]
