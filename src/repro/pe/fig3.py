"""A literal transliteration of the specializer of Fig. 3.

This is the paper's formal specializer, kept as close to the figure as
Python allows: an expression-level, continuation-based partial evaluator
for Annotated Core Scheme producing Core Scheme in ANF.  It has none of
the production engine's machinery — no memoization, no backend
parameterization, no tail-position refinement (Fig. 3 let-wraps *every*
serious computation, even in tail position).

Its role in the repository is validation: the test suite checks that the
production engine (:mod:`repro.pe.specializer`) and this transliteration
produce semantically identical residual code on expression-level inputs.

Correspondence with the figure (S[[·]]ρ = λk. ...):

====================  =====================================================
Figure                Here
====================  =====================================================
S[[c]]ρ              = λk. k c                              ``Const``
S[[x]]ρ              = λk. k (ρ x)                          ``Var``
S[[(O E₁…Eₙ)]]ρ      = λk. S[[E₁]]ρ (λy₁. … k (O y₁…yₙ))    ``Prim``
S[[(λx…E)]]ρ         = λk. k (closure)                      ``Lam``
S[[(@ E₀ E₁…)]]ρ     = unfold                               ``App``
S[[(let (x E₁) E₂)]]ρ = λk. S[[E₁]]ρ (λy. S[[E₂]]ρ[y/x] k)  ``Let``
S[[(if E₁ E₂ E₃)]]ρ  = static choice                        ``If``
S[[(lift E)]]ρ       = λk. S[[E]]ρ (λy. k y̲)               ``Lift``
S[[(O^D E₁…)]]ρ      = let-wrapped dynamic primitive        ``DPrim``
S[[(λ^D x…E)]]ρ      = λk. k (λ̲x′. S[[E]]ρ[x′/x](λy.y))     ``DLam``
S[[(@^D E₀ E₁…)]]ρ   = let-wrapped dynamic application      ``DApp``
S[[(if^D E₁ E₂ E₃)]]ρ = λk. S[[E₁]]ρ (λy₁. i̲f̲ y₁ (S[[E₂]]ρ k) (S[[E₃]]ρ k))  ``DIf``
====================  =====================================================
"""

from __future__ import annotations

from typing import Any, Callable

from repro.lang.ast import (
    App,
    Const,
    DApp,
    DIf,
    DLam,
    DPrim,
    Expr,
    If,
    Lam,
    Let,
    Lift,
    Prim,
    Var,
)
from repro.lang.gensym import Gensym
from repro.lang.prims import PRIMITIVES
from repro.pe.errors import BindingTimeError, SpecializationError
from repro.pe.values import Dynamic, SpecClosure, Static, is_first_order
from repro.runtime.values import datum_to_value, is_truthy, value_to_datum
from repro.sexp.datum import Symbol

Value = Static | Dynamic
Cont = Callable[[Value], Expr]


class Fig3Specializer:
    """The specializer of Fig. 3, verbatim."""

    def __init__(self) -> None:
        self.gensym = Gensym("x")

    # S[[E]]ρ k
    def spec(self, e: Expr, rho: dict[Symbol, Value], k: Cont) -> Expr:
        if isinstance(e, Const):
            # S[[c]]ρ = λk. k c
            return k(Static(datum_to_value(e.value)))

        if isinstance(e, Var):
            # S[[x]]ρ = λk. k (ρ x)
            try:
                return k(rho[e.name])
            except KeyError:
                raise SpecializationError(f"unbound variable {e.name}") from None

        if isinstance(e, Prim):
            # S[[(O E₁…Eₙ)]]ρ = λk. S[[E₁]]ρ (λy₁. … k ([O] y₁ … yₙ))
            def finish(ys: list[Value]) -> Expr:
                spec = PRIMITIVES[e.op]
                args = []
                for y in ys:
                    if not isinstance(y, Static):
                        raise BindingTimeError("dynamic arg to static prim")
                    args.append(y.value)
                return k(Static(spec.apply(args)))

            return self._spec_seq(list(e.args), rho, finish)

        if isinstance(e, Lam):
            # S[[(λ x₁…xₙ. E)]]ρ = λk. k (λ y₁…yₙ. S[[E]]… )  — a static
            # closure, unfolded at application time.
            return k(Static(SpecClosure(e.params, e.body, dict(rho))))

        if isinstance(e, App):
            # S[[(@ E₀ E₁…Eₙ)]]ρ = λk. S[[E₀]]ρ (λf. S[[E₁]]ρ (λy₁. … f y₁…yₙ k))
            def apply(vals: list[Value]) -> Expr:
                f, args = vals[0], vals[1:]
                if not (isinstance(f, Static) and isinstance(f.value, SpecClosure)):
                    raise BindingTimeError("static application of non-closure")
                clo = f.value
                inner = dict(clo.env)
                inner.update(zip(clo.params, args))
                return self.spec(clo.body, inner, k)

            return self._spec_seq([e.fn, *e.args], rho, apply)

        if isinstance(e, Let):
            # S[[(let (x E₁) E₂)]]ρ = λk. S[[E₁]]ρ (λy. S[[E₂]]ρ[y/x] k)
            return self.spec(
                e.rhs, rho, lambda y: self.spec(e.body, {**rho, e.var: y}, k)
            )

        if isinstance(e, If):
            # Static conditional: choose the branch.
            def choose(y: Value) -> Expr:
                if not isinstance(y, Static):
                    raise BindingTimeError("dynamic test in static if")
                return self.spec(
                    e.then if is_truthy(y.value) else e.alt, rho, k
                )

            return self.spec(e.test, rho, choose)

        if isinstance(e, Lift):
            # S[[(lift E)]]ρ = λk. S[[E]]ρ (λy. k y̲)
            return self.spec(e.expr, rho, lambda y: k(Dynamic(self._lift(y))))

        if isinstance(e, DPrim):
            # S[[(O^D E₁…Eₙ)]]ρ = … (l̲e̲t̲ (x′ (O̲ y₁…yₙ)) k x′)
            def wrap(ys: list[Value]) -> Expr:
                fresh = self.gensym.fresh()
                serious = Prim(e.op, tuple(self._code(y) for y in ys))
                return Let(fresh, serious, k(Dynamic(Var(fresh))))

            return self._spec_seq(list(e.args), rho, wrap)

        if isinstance(e, DLam):
            # S[[(λ^D x₁…xₙ. E)]]ρ = λk. k ((λ̲ x′₁…x′ₙ. S[[E]]ρ[x′ᵢ/xᵢ](λy.y)))
            fresh = tuple(self.gensym.fresh(p) for p in e.params)
            inner = dict(rho)
            for p, f in zip(e.params, fresh):
                inner[p] = Dynamic(Var(f))
            body = self.spec(e.body, inner, self._identity)
            return k(Dynamic(Lam(fresh, body)))

        if isinstance(e, DApp):
            # S[[(@^D E₀ E₁…Eₙ)]]ρ = … (l̲e̲t̲ (x′ (@̲ y y₁…yₙ)) k x′)
            def wrap_app(ys: list[Value]) -> Expr:
                fresh = self.gensym.fresh()
                serious = App(
                    self._code(ys[0]), tuple(self._code(y) for y in ys[1:])
                )
                return Let(fresh, serious, k(Dynamic(Var(fresh))))

            return self._spec_seq([e.fn, *e.args], rho, wrap_app)

        if isinstance(e, DIf):
            # S[[(if^D E₁ E₂ E₃)]]ρ = λk. S[[E₁]]ρ (λy₁. (i̲f̲ y₁ (S[[E₂]]ρ k)
            #                                                   (S[[E₃]]ρ k)))
            def wrap_if(y: Value) -> Expr:
                return If(
                    self._code(y),
                    self.spec(e.then, rho, k),
                    self.spec(e.alt, rho, k),
                )

            return self.spec(e.test, rho, wrap_if)

        raise SpecializationError(f"Fig. 3 has no rule for {type(e).__name__}")

    # -- helpers --------------------------------------------------------------

    def spec_expr(self, e: Expr, rho: dict[Symbol, Value] | None = None) -> Expr:
        """Specialize a whole expression with the identity continuation."""
        return self.spec(e, dict(rho or {}), self._identity)

    def _identity(self, y: Value) -> Expr:
        # (λy. y): the final continuation returns the code for the value.
        return self._code(y)

    def _spec_seq(
        self, es: list[Expr], rho: dict, k: Callable[[list[Value]], Expr]
    ) -> Expr:
        def go(i: int, acc: list[Value]) -> Expr:
            if i == len(es):
                return k(acc)
            return self.spec(es[i], rho, lambda y: go(i + 1, acc + [y]))

        return go(0, [])

    def _code(self, y: Value) -> Expr:
        if isinstance(y, Dynamic):
            return y.code
        return self._lift(y)

    def _lift(self, y: Value) -> Expr:
        if isinstance(y, Dynamic):
            return y.code
        if not is_first_order(y.value):
            raise BindingTimeError(f"cannot lift {y.value!r}")
        datum = value_to_datum(y.value)
        return Const(_tupleize(datum))


def _tupleize(datum: Any) -> Any:
    if isinstance(datum, list):
        return tuple(_tupleize(d) for d in datum)
    return datum
