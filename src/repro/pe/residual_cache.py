"""A cross-invocation cache for generated residual programs.

The paper's central payoff is that a generating extension is "built once
... then applied any number of times to static inputs" (§3).  Amortizing
the build cost requires the *application* side to be cheap too: applying
an extension twice to the same static input should not re-run the
specializer and re-assemble identical object code.  This module provides
the memo table that makes repeated application a lookup.

:class:`ResidualCache` is a bounded LRU keyed by

    ``(frozen static arguments, dif strategy, backend kind)``

where the static arguments are frozen with §6.4's static-value freezing
(:func:`repro.pe.values.freeze_static` — fully hashable canonical
tuples), so two structurally equal static inputs share one entry.

Concurrency: a single lock guards the table, and generation is
*single-flight* — when several threads miss on the same key at once,
exactly one runs the specializer while the others wait and receive the
same :class:`~repro.pe.backend.ResidualProgram` object.  This both
avoids duplicated work and guarantees byte-identical residual code per
static input under concurrent load.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Hashable

from repro import obs


class _Flight:
    """One in-progress generation, awaited by late-arriving threads."""

    __slots__ = ("done", "result", "error")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None


class ResidualCache:
    """A bounded, thread-safe LRU of generated residual programs.

    ``maxsize`` bounds the number of retained residual programs; the
    least recently used entry is evicted first.  ``maxsize <= 0``
    disables the cache (every :meth:`get_or_generate` generates).
    """

    def __init__(self, maxsize: int = 128) -> None:
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()
        self._inflight: dict[Hashable, _Flight] = {}
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._generation_seconds = 0.0
        self._last_generation_seconds = 0.0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def peek(self, key: Hashable) -> Any | None:
        """A read-only probe that does **not** promote LRU recency.

        :meth:`lookup` and :meth:`get_or_generate` move a hit to the
        most-recently-used end — correct for callers that *use* the
        residual, wrong for stats/inspection paths: a monitor polling
        the cache would keep every polled key artificially warm and
        reshape eviction order.  ``peek`` reads the entry (no recency
        update, no hit/miss counters), so observing the cache never
        perturbs it.
        """
        with self._lock:
            return self._entries.get(key)

    def lookup(self, key: Hashable) -> Any | None:
        """A bare probe (no generation, no single-flight wait)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
        if entry is not None:
            obs.count("cache.l1.hit")
        return entry

    def get_or_generate(
        self, key: Hashable, produce: Callable[[], Any]
    ) -> tuple[Any, bool]:
        """Return ``(residual, hit)`` for ``key``, generating on a miss.

        Concurrent misses on one key coalesce: one caller runs
        ``produce``, the rest block until it completes and share its
        result (counted as hits — they did not generate).  If the
        producer raises, every waiter sees the same exception and
        nothing is cached.
        """
        if self.maxsize <= 0:
            return produce(), False
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._hits += 1
                obs.count("cache.l1.hit")
                return entry, True
            flight = self._inflight.get(key)
            if flight is None:
                flight = _Flight()
                self._inflight[key] = flight
                leader = True
            else:
                leader = False
        if not leader:
            # Single-flight failure discipline: the leader pops the key
            # from ``_inflight`` *before* setting ``done``, so a waiter
            # that observes the error re-raises it, while a thread
            # arriving after the pop starts a fresh flight — the key is
            # never poisoned and nobody can deadlock on a dead flight.
            obs.count("cache.l1.wait")
            with obs.span("cache.l1.wait"):
                flight.done.wait()
            if flight.error is not None:
                raise flight.error
            with self._lock:
                self._hits += 1
            obs.count("cache.l1.hit")
            return flight.result, True
        obs.count("cache.l1.miss")
        try:
            t0 = time.perf_counter()
            result = produce()
            elapsed = time.perf_counter() - t0
        except BaseException as exc:
            flight.error = exc
            with self._lock:
                self._inflight.pop(key, None)
            flight.done.set()
            raise
        flight.result = result
        with self._lock:
            self._misses += 1
            self._generation_seconds += elapsed
            self._last_generation_seconds = elapsed
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1
            self._inflight.pop(key, None)
        flight.done.set()
        return result, False

    def stats(self) -> dict[str, Any]:
        """A snapshot of the cache counters."""
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "entries": len(self._entries),
                "maxsize": self.maxsize,
                "generation_seconds": self._generation_seconds,
                "last_generation_seconds": self._last_generation_seconds,
            }

    def clear(self) -> None:
        """Drop all entries (counters are kept)."""
        with self._lock:
            self._entries.clear()
