"""Binding-time analysis (BTA).

"Notably, the binding-time analysis, which is a vital part of every offline
partial evaluator, can automatically determine a proper staging of
computations" (§1).  Given a program and a binding-time signature for the
goal function's parameters, the analysis computes a congruent division and
produces Annotated Core Scheme for the specializer.

Two division disciplines are available (``bta="mono"|"poly"``):

* **monovariant** — one binding time per parameter per function: every
  call site's argument binding times join into the same division, so a
  function called with ``(S,D)`` *and* ``(S,S)`` sees the lattice join
  ``(S,D)`` everywhere;
* **polyvariant** (the default) — top-level functions are *cloned* per
  distinct abstract binding-time signature reaching their call sites.
  The abstract signature of a call site is the pair (argument binding
  times, role), where the role records whether the site memoizes the
  callee (making it a residual specialization point whose body must
  become code) or unfolds it (so its body is consumed as a
  specialization-time value).  Cloning by role is what removes the
  classic lift infelicity on fully static non-tail recursion: the goal's
  residual variant gets lifts in its branches while the unfolded value
  variant stays lift-free.  Variant fan-out is bounded by a configurable
  cap (``max_variants``); a function whose request set overflows the cap
  is *widened* back to its monovariant join (a single clone receiving
  every call site).  The joint closure/binding-time/demand fixpoint is
  re-run over the cloned program — the variant graph — until the variant
  set and every call-site target stabilise.

The analysis is a joint fixpoint over three interleaved, monotone maps:

* **abstract values** (a 0-CFA-style closure analysis): which lambdas,
  top-level functions, and primitives can reach each expression and
  variable — needed to propagate binding times through higher-order code;
* **binding times** on the two-point lattice S ⊑ D;
* **code demand**: positions whose value must become residual code.  A
  static first-order value in a demanded position is lifted at annotation
  time; a *lambda* reaching a demanded position is forced dynamic
  (lambdas cannot be lifted), which feeds back into the binding times of
  its parameters.

Call sites to top-level functions are classified **unfold** or **memoize**
per site:

* calls to non-recursive functions, and calls whose callee has only static
  parameters, unfold;
* calls within a recursive component unfold when some static argument is a
  structural *descent* (a chain of list destructors) of an enclosing
  static variable — the classic criterion that lets an interpreter's
  expression walk be unfolded while its function-call loop is memoized;
* everything else is a memoization point (a residual specialization
  point), as are all calls to functions listed in ``memo_hints``.

The front-end pipeline (the paper's §4: desugaring, lambda lifting,
assignment elimination) runs first, followed by eta-expansion of top-level
functions used as values, so that function names only ever appear in
operator position.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

import networkx as nx

from repro.obs import traced
from repro.lang.alpha import alpha_rename
from repro.lang.assignment import eliminate_assignments
from repro.lang.ast import (
    App,
    Const,
    DApp,
    DIf,
    DLam,
    DPrim,
    Def,
    Expr,
    If,
    Lam,
    Let,
    Lift,
    MemoCall,
    Prim,
    Program,
    Var,
)
from repro.lang.gensym import Gensym
from repro.lang.lambda_lift import lambda_lift
from repro.lang.prims import PRIMITIVES
from repro.lang.simplify import beta_let_program
from repro.pe.annprog import AnnDef, AnnotatedProgram, BindingTime, parse_signature
from repro.pe.errors import BindingTimeError
from repro.sexp.datum import Symbol, sym

S = BindingTime.STATIC
D = BindingTime.DYNAMIC

# Primitives whose application to a static variable counts as structural
# descent for the unfold/memoize decision.
_DESTRUCTORS = frozenset(
    name
    for name in (
        sym(n)
        for n in (
            "car", "cdr", "caar", "cadr", "cdar", "cddr",
            "caaa", "caad", "cada", "cadd", "cdaa", "cdad", "cdda", "cddd",
            "caddr", "cdddr", "cadddr", "list-ref", "list-tail",
        )
    )
    if name in PRIMITIVES
)

_QUOTIENT = sym("quotient")
_SUB1 = sym("sub1")
_NUMERIC_DESCENT = frozenset({sym("-"), _QUOTIENT})

# Primitives that are *transparent* to the closure analysis: a closure
# stored in a pair can come back out of car/cdr, so abstract values flow
# through these operations ("smushing").  Without this, an interpreter
# that keeps thunks in an environment list would leak static closures
# into residual code.
_CONTAINER_OPS = frozenset(
    name
    for name in (
        sym(n)
        for n in (
            "cons", "list", "append", "reverse", "car", "cdr",
            "caar", "cadr", "cdar", "cddr", "caddr", "cdddr", "cadddr",
            "list-ref", "list-tail", "memq", "memv", "member",
            "assq", "assv", "assoc",
        )
    )
    if name in PRIMITIVES
)


@dataclass(frozen=True)
class LamSite:
    """A static (specialization-time) lambda in the annotated program."""

    node: Lam
    host: Symbol
    param_bts: tuple


@dataclass(frozen=True)
class ClosureInfo:
    """Closure-analysis results transferred onto the annotated tree.

    The annotator rebuilds every node, so the analysis's own maps (keyed
    by prepared-node identity) are useless to clients holding only the
    annotated program.  This re-keys the interesting part — which static
    lambdas may be applied at which static closure-application sites —
    by the identity of *annotated* nodes, for whole-program analyses
    (:mod:`repro.analysis`) that walk ACS.

    ``lams`` maps ``id(annotated Lam)`` to its :class:`LamSite`;
    ``apps`` maps ``id(annotated App)`` (closure applications only —
    apps whose operator is not a top-level function) to the ids of the
    annotated lambdas that may be applied there.
    """

    lams: dict
    apps: dict

    def targets(self, app: App) -> tuple[LamSite, ...]:
        return tuple(
            self.lams[lid]
            for lid in self.apps.get(id(app), ())
            if lid in self.lams
        )


@dataclass(frozen=True)
class VariantInfo:
    """Metadata for one polyvariant clone of a top-level function.

    ``origin`` is the prepared-program function the clone was split from;
    ``signature`` is the abstract argument binding-time signature the
    clone was keyed on (``"SD"`` style, or ``"mono"`` when the function
    was widened back to the monovariant join); ``role`` says whether the
    clone is a residual specialization point (``"residual"``), an
    unfold-only value (``"value"``), or the widened join (``"widened"``);
    ``call_sites`` lists the originating call sites (``host:path``) that
    requested the variant.
    """

    origin: Symbol
    signature: str
    role: str
    call_sites: tuple = ()

    @property
    def display(self) -> str:
        """``function@variant`` label used in diagnostics."""
        if self.role == "widened":
            return f"{self.origin}@mono"
        tag = "r" if self.role == "residual" else "v"
        return f"{self.origin}@{self.signature}{tag}"


@dataclass
class BTAResult:
    """The analysis output: the annotated program plus diagnostics.

    For ``mode="poly"``, ``prepared`` is the *expanded* variant program
    (the clone graph the annotation was computed over), ``variants`` maps
    each definition name to its :class:`VariantInfo`, and ``widened``
    names the origins whose variant fan-out overflowed the cap.
    """

    annotated: AnnotatedProgram
    prepared: Program
    division: dict
    residual_defs: frozenset
    decisions: dict = field(default_factory=dict)
    closure: ClosureInfo | None = None
    mode: str = "mono"
    variants: dict = field(default_factory=dict)
    widened: frozenset = frozenset()

    def origin_of(self, name: Symbol) -> Symbol:
        """The prepared-program function a definition was cloned from."""
        info = self.variants.get(name)
        return info.origin if info is not None else name


def prepare(program: Program) -> Program:
    """The specializer's front-end pipeline (§4).

    Beta-let conversion, lambda lifting, assignment elimination, and a
    final alpha renaming making every bound name globally unique; then
    eta-expansion of top-level function names used as values.
    """
    gs = Gensym("p")
    program = beta_let_program(program)
    program = lambda_lift(program, gs)
    program = eliminate_assignments(program, gs)
    program = beta_let_program(program)
    program = alpha_rename(program, gs, rename_params=True)
    return _eta_expand_def_values(program, gs)


def _eta_expand_def_values(program: Program, gs: Gensym) -> Program:
    """Rewrite non-operator references to top-level functions.

    ``f`` becomes ``(lambda (x ...) (f x ...))`` so that analysis and
    specializer only ever see direct calls to top-level functions.
    """
    def_names = {d.name: d for d in program.defs}

    def rewrite(e: Expr, operator: bool = False) -> Expr:
        if isinstance(e, Var):
            d = def_names.get(e.name)
            if d is not None and not operator:
                params = tuple(gs.fresh(p) for p in d.params)
                return Lam(params, App(e, tuple(Var(p) for p in params)))
            return e
        if isinstance(e, Const):
            return e
        if isinstance(e, Lam):
            return Lam(e.params, rewrite(e.body))
        if isinstance(e, Let):
            return Let(e.var, rewrite(e.rhs), rewrite(e.body))
        if isinstance(e, If):
            return If(rewrite(e.test), rewrite(e.then), rewrite(e.alt))
        if isinstance(e, App):
            return App(
                rewrite(e.fn, operator=isinstance(e.fn, Var)),
                tuple(rewrite(a) for a in e.args),
            )
        if isinstance(e, Prim):
            return Prim(e.op, tuple(rewrite(a) for a in e.args))
        raise BindingTimeError(
            f"front end left a {type(e).__name__} node for the analysis"
        )

    return Program(
        tuple(Def(d.name, d.params, rewrite(d.body)) for d in program.defs),
        program.goal,
    )


class _Analysis:
    """The joint CFA / binding-time / demand fixpoint."""

    def __init__(
        self,
        program: Program,
        signature: tuple[BindingTime, ...],
        memo_hints: frozenset[Symbol],
        unfold_hints: frozenset[Symbol],
        origin_of: dict | None = None,
    ):
        self.program = program
        self.defs = {d.name: d for d in program.defs}
        self.signature = signature
        self.memo_hints = memo_hints
        self.unfold_hints = unfold_hints
        # Polyvariant clones project onto their origin function for every
        # question about the *recursion structure* (SCCs, hints): splitting
        # a self-loop into variants must not make it look non-recursive.
        self._origin = origin_of or {}

        goal = program.lookup(program.goal)
        if len(signature) != len(goal.params):
            raise BindingTimeError(
                f"signature length {len(signature)} does not match goal"
                f" arity {len(goal.params)}"
            )

        # Keys: id(node) for expression occurrences, Symbol for variables,
        # ('result', defname) for definition results.
        self.aval: dict[Any, set] = {}
        self.bt: dict[Any, BindingTime] = {}
        self.demand: set[Any] = set()
        self.node_of: dict[int, Expr] = {}
        self.lam_forced: set[int] = set()
        self._memo_called_set: set[Symbol] = set()
        self.changed = False
        # Annotation-time recordings for ClosureInfo: prepared-lam id ->
        # (annotated Lam, host def), annotated-App id -> prepared-lam ids.
        self.ann_lams: dict[int, tuple[Lam, Symbol]] = {}
        self.ann_closure_apps: dict[int, tuple[int, ...]] = {}

        graph = self._call_graph()
        self.sccs = [set(c) for c in nx.strongly_connected_components(graph)]
        self.recursive: set[Symbol] = set()
        for comp in self.sccs:
            if len(comp) > 1:
                self.recursive |= comp
            else:
                (f,) = comp
                if graph.has_edge(f, f):
                    self.recursive.add(f)
        self.scc_of: dict[Symbol, frozenset] = {}
        for comp in self.sccs:
            for f in comp:
                self.scc_of[f] = frozenset(comp)

        # Goal parameters get their signature binding times.
        for p, bt in zip(goal.params, signature):
            if bt is D:
                self._raise_bt(p)

        # Per-node structural-descent status, recomputed each pass.
        self.chain: dict[int, str | None] = {}

    # -- small lattice helpers -------------------------------------------------

    def _get_bt(self, key: Any) -> BindingTime:
        return self.bt.get(key, S)

    def _raise_bt(self, key: Any) -> None:
        if self.bt.get(key, S) is not D:
            self.bt[key] = D
            self.changed = True

    def _flow_bt(self, src: Any, dst: Any) -> None:
        if self._get_bt(src) is D:
            self._raise_bt(dst)

    def _avals(self, key: Any) -> set:
        return self.aval.setdefault(key, set())

    def _flow_aval(self, src: Any, dst: Any) -> None:
        s, d = self._avals(src), self._avals(dst)
        extra = s - d
        if extra:
            d |= extra
            self.changed = True

    def _add_aval(self, key: Any, item: tuple) -> None:
        s = self._avals(key)
        if item not in s:
            s.add(item)
            self.changed = True

    def _demand(self, key: Any) -> None:
        if key not in self.demand:
            self.demand.add(key)
            self.changed = True

    def _force_lam(self, lam_id: int) -> None:
        if lam_id not in self.lam_forced:
            self.lam_forced.add(lam_id)
            self.changed = True
            lam = self.node_of[lam_id]
            for p in lam.params:
                self._raise_bt(p)

    # -- call graph ---------------------------------------------------------------

    def _o(self, f: Symbol) -> Symbol:
        """The origin function of a (possibly cloned) definition name."""
        return self._origin.get(f, f)

    def _call_graph(self) -> "nx.DiGraph":
        """The call graph over *origin* functions."""
        from repro.lang.ast import walk

        graph = nx.DiGraph()
        graph.add_nodes_from(self._o(name) for name in self.defs)
        for name, d in self.defs.items():
            for node in walk(d.body):
                if (
                    isinstance(node, App)
                    and isinstance(node.fn, Var)
                    and node.fn.name in self.defs
                ):
                    graph.add_edge(self._o(name), self._o(node.fn.name))
        return graph

    # -- the fixpoint ----------------------------------------------------------------

    def solve(self) -> None:
        for _round in range(1000):
            self.changed = False
            for d in self.program.defs:
                self.chain = {}
                self._chain_pass(d.body, {})
                self._analyze(d.body, d.name)
                # A definition's result.
                self._flow_aval(id(d.body), ("result", d.name))
                self._flow_bt(id(d.body), ("result", d.name))
                if self.is_residual(d.name):
                    self._demand(id(d.body))
            # Demanded positions force their lambdas dynamic.
            for key in list(self.demand):
                for item in self._avals(key):
                    if item[0] == "lam":
                        self._force_lam(item[1])
            if not self.changed:
                return
        raise BindingTimeError("binding-time analysis did not converge")

    # -- residual / unfold decisions -----------------------------------------------------

    def has_dynamic_param(self, f: Symbol) -> bool:
        return any(self._get_bt(p) is D for p in self.defs[f].params)

    def call_decision(self, caller: Symbol, callee: Symbol, app: App) -> str:
        """'unfold' or 'memo' for this call site.

        Recursion structure (hints, SCC membership) is judged on *origin*
        functions so polyvariant cloning cannot flip decisions between
        rounds; only ``has_dynamic_param`` is per-clone.
        """
        if self._o(callee) in self.unfold_hints:
            return "unfold"
        if self._o(callee) not in self.recursive:
            return "unfold"
        if not self.has_dynamic_param(callee):
            return "unfold"
        if self._o(callee) in self.memo_hints:
            return "memo"
        if self.scc_of[self._o(callee)] != self.scc_of.get(self._o(caller)):
            # Entering a recursive component from outside cannot by itself
            # build an infinite unfolding chain.
            return "unfold"
        # Within the component: unfold only on structural descent of a
        # static argument.
        callee_def = self.defs[callee]
        for arg, p in zip(app.args, callee_def.params):
            if self._get_bt(p) is S and self.chain.get(id(arg)) == "desc":
                return "unfold"
        return "memo"

    def is_residual(self, f: Symbol) -> bool:
        if f is self.program.goal:
            return True
        return f in self._memo_called_set

    # -- structural descent ---------------------------------------------------------------

    def _chain_pass(self, e: Expr, env: dict[Symbol, str | None]) -> str | None:
        """Compute descent status: 'var' (a static variable), 'desc'
        (a destructor chain over a static variable), or None."""
        status: str | None = None
        if isinstance(e, Var):
            if e.name in env:
                status = env[e.name]
            elif self._get_bt(e.name) is S and e.name not in self.defs:
                status = "var"
        elif isinstance(e, Prim):
            for a in e.args:
                self._chain_pass(a, env)
            if e.op in _DESTRUCTORS and e.args:
                first = self.chain.get(id(e.args[0]))
                if first in ("var", "desc"):
                    status = "desc"
            elif e.op in _NUMERIC_DESCENT and len(e.args) == 2:
                # (- n k) / (quotient n k) with a positive constant k is
                # treated as numeric descent (the usual induction pattern).
                first = self.chain.get(id(e.args[0]))
                step = e.args[1]
                if (
                    first in ("var", "desc")
                    and isinstance(step, Const)
                    and isinstance(step.value, int)
                    and not isinstance(step.value, bool)
                    and step.value >= 1
                    and (e.op is not _QUOTIENT or step.value >= 2)
                ):
                    status = "desc"
            elif e.op is _SUB1 and e.args:
                first = self.chain.get(id(e.args[0]))
                if first in ("var", "desc"):
                    status = "desc"
        elif isinstance(e, Let):
            rhs_status = self._chain_pass(e.rhs, env)
            self._chain_pass(e.body, {**env, e.var: rhs_status})
            status = self.chain.get(id(e.body))
        elif isinstance(e, If):
            self._chain_pass(e.test, env)
            self._chain_pass(e.then, env)
            self._chain_pass(e.alt, env)
        else:
            for c in e.children():
                self._chain_pass(c, env)
        self.chain[id(e)] = status
        return status

    # -- per-node analysis -------------------------------------------------------------------

    def _analyze(self, e: Expr, host: Symbol) -> None:
        nid = id(e)
        self.node_of[nid] = e

        if isinstance(e, Const):
            return

        if isinstance(e, Var):
            name = e.name
            if name in self.defs:
                self._add_aval(nid, ("def", name))
                return
            if name in PRIMITIVES and "%" not in name.name:
                # A free reference to a primitive used as a value (every
                # bound name carries a '%' after the renaming pipeline).
                self._add_aval(nid, ("prim", name))
                return
            self._flow_aval(name, nid)
            self._flow_bt(name, nid)
            return

        if isinstance(e, Lam):
            self._add_aval(nid, ("lam", nid))
            self._analyze(e.body, host)
            if nid in self.lam_forced:
                self._raise_bt(nid)
                self._demand(id(e.body))
            return

        if isinstance(e, Let):
            self._analyze(e.rhs, host)
            self._analyze(e.body, host)
            self._flow_aval(id(e.rhs), e.var)
            self._flow_bt(id(e.rhs), e.var)
            self._flow_aval(id(e.body), nid)
            self._flow_bt(id(e.body), nid)
            if nid in self.demand:
                self._demand(id(e.body))
            return

        if isinstance(e, If):
            self._analyze(e.test, host)
            self._analyze(e.then, host)
            self._analyze(e.alt, host)
            for br in (e.then, e.alt):
                self._flow_aval(id(br), nid)
                self._flow_bt(id(br), nid)
            if self._get_bt(id(e.test)) is D:
                self._raise_bt(nid)
                self._demand(id(e.test))
                self._demand(id(e.then))
                self._demand(id(e.alt))
            elif nid in self.demand:
                self._demand(id(e.then))
                self._demand(id(e.alt))
            return

        if isinstance(e, Prim):
            for a in e.args:
                self._analyze(a, host)
            spec = PRIMITIVES.get(e.op)
            impure = spec is not None and not spec.pure
            any_dynamic = any(self._get_bt(id(a)) is D for a in e.args)
            if e.op in _CONTAINER_OPS:
                # Closures may travel through containers.
                for a in e.args:
                    self._flow_aval(id(a), nid)
            if impure or any_dynamic:
                self._raise_bt(nid)
                for a in e.args:
                    self._demand(id(a))
            elif nid in self.demand and e.op in _CONTAINER_OPS:
                # Lifting a constructed value lifts its components.
                for a in e.args:
                    self._demand(id(a))
            return

        if isinstance(e, App):
            self._analyze(e.fn, host)
            for a in e.args:
                self._analyze(a, host)
            fn_id = id(e.fn)
            callables = self._avals(fn_id)
            forced_lam_present = any(
                item[0] == "lam" and item[1] in self.lam_forced
                for item in callables
            )
            if self._get_bt(fn_id) is D or forced_lam_present:
                # Residual application.
                self._raise_bt(nid)
                self._demand(fn_id)
                for a in e.args:
                    self._demand(id(a))
                return
            for item in callables:
                if item[0] == "lam":
                    lam = self.node_of[item[1]]
                    for a, p in zip(e.args, lam.params):
                        self._flow_aval(id(a), p)
                        self._flow_bt(id(a), p)
                    self._flow_aval(id(lam.body), nid)
                    self._flow_bt(id(lam.body), nid)
                    if nid in self.demand:
                        self._demand(id(lam.body))
                elif item[0] == "def":
                    f = item[1]
                    callee = self.defs[f]
                    decision = self.call_decision(host, f, e)
                    for a, p in zip(e.args, callee.params):
                        self._flow_aval(id(a), p)
                        self._flow_bt(id(a), p)
                    if decision == "memo":
                        self._memo_called_set.add(f)
                        self._raise_bt(nid)
                        for a, p in zip(e.args, callee.params):
                            if self._get_bt(p) is D:
                                self._demand(id(a))
                    else:
                        self._flow_aval(("result", f), nid)
                        self._flow_bt(("result", f), nid)
                        if nid in self.demand:
                            self._demand(id(self.defs[f].body))
                elif item[0] == "prim":
                    spec = PRIMITIVES.get(item[1])
                    impure = spec is not None and not spec.pure
                    if impure or any(
                        self._get_bt(id(a)) is D for a in e.args
                    ):
                        self._raise_bt(nid)
                        for a in e.args:
                            self._demand(id(a))
            return

        raise BindingTimeError(
            f"analysis cannot handle {type(e).__name__} nodes"
        )


# -- polyvariant expansion ----------------------------------------------------------------

# Sentinel variant key for a function widened back to its monovariant join.
_WIDENED_KEY = ("widened",)

# Outer clone/retarget rounds before giving up and falling back to the
# monovariant division (the variant request set then failed to stabilise).
_MAX_POLY_ROUNDS = 12


@dataclass(frozen=True)
class _Site:
    """One direct call to a top-level function, in a definition body."""

    host: Symbol
    app: App
    callee: Symbol
    key: tuple          # (argument-bt tuple, role) — the abstract signature
    path: str


def _sig_str(bts: Iterable[BindingTime]) -> str:
    return "".join(bt.value for bt in bts)


def _collect_sites(analysis: _Analysis) -> dict[Symbol, list[_Site]]:
    """Every direct def call site per host, keyed by abstract signature."""
    sites: dict[Symbol, list[_Site]] = {}

    def walk(host: Symbol, e: Expr, path: tuple[str, ...]) -> None:
        if isinstance(e, (Const, Var)):
            return
        if isinstance(e, Lam):
            walk(host, e.body, path + ("lam.body",))
            return
        if isinstance(e, Let):
            walk(host, e.rhs, path + ("let.rhs",))
            walk(host, e.body, path + ("let.body",))
            return
        if isinstance(e, If):
            walk(host, e.test, path + ("if.test",))
            walk(host, e.then, path + ("if.then",))
            walk(host, e.alt, path + ("if.alt",))
            return
        if isinstance(e, Prim):
            for i, a in enumerate(e.args):
                walk(host, a, path + (f"prim.arg{i}",))
            return
        if isinstance(e, App):
            if isinstance(e.fn, Var) and e.fn.name in analysis.defs:
                callee = e.fn.name
                decision = analysis.call_decision(host, callee, e)
                role = "residual" if decision == "memo" else "value"
                argsig = tuple(analysis._get_bt(id(a)) for a in e.args)
                sites.setdefault(host, []).append(
                    _Site(host, e, callee, (argsig, role), "/".join(path))
                )
            else:
                walk(host, e.fn, path + ("app.fn",))
            for i, a in enumerate(e.args):
                walk(host, a, path + (f"app.arg{i}",))
            return
        for i, c in enumerate(e.children()):
            walk(host, c, path + (f"child{i}",))

    for d in analysis.program.defs:
        analysis.chain = {}
        analysis._chain_pass(d.body, {})
        sites.setdefault(d.name, [])
        walk(d.name, d.body, ())
    return sites


def _variant_name(
    origin: Symbol, keys: set, key: tuple, goal: Symbol, goal_key: tuple
) -> Symbol:
    """Deterministic clone name for ``origin`` under ``key``.

    The goal's residual variant — and any function with a single variant —
    keeps its bare name, so programs that are monovariant in practice
    come out of the polyvariant pass unchanged.
    """
    if len(keys) == 1:
        return origin
    if origin is goal and key == goal_key:
        return origin
    if key == _WIDENED_KEY:
        return sym(f"{origin}@mono")
    argsig, role = key
    tag = "r" if role == "residual" else "v"
    return sym(f"{origin}@{_sig_str(argsig)}{tag}")


def _key_order(key: tuple):
    if key == _WIDENED_KEY:
        return (0, "", "")
    argsig, role = key
    return (1, role, _sig_str(argsig))


def _clone_body(
    e: Expr,
    env: dict[Symbol, Symbol],
    gs: Gensym,
    site_target: dict[int, Symbol],
) -> Expr:
    """Copy ``e`` with fresh binders, retargeting direct def calls."""
    if isinstance(e, Const):
        return e
    if isinstance(e, Var):
        return Var(env.get(e.name, e.name))
    if isinstance(e, Lam):
        fresh = tuple(gs.fresh(p) for p in e.params)
        inner = {**env, **dict(zip(e.params, fresh))}
        return Lam(fresh, _clone_body(e.body, inner, gs, site_target))
    if isinstance(e, Let):
        rhs = _clone_body(e.rhs, env, gs, site_target)
        fresh_var = gs.fresh(e.var)
        inner = {**env, e.var: fresh_var}
        return Let(fresh_var, rhs, _clone_body(e.body, inner, gs, site_target))
    if isinstance(e, If):
        return If(
            _clone_body(e.test, env, gs, site_target),
            _clone_body(e.then, env, gs, site_target),
            _clone_body(e.alt, env, gs, site_target),
        )
    if isinstance(e, Prim):
        return Prim(
            e.op, tuple(_clone_body(a, env, gs, site_target) for a in e.args)
        )
    if isinstance(e, App):
        target = site_target.get(id(e))
        fn = (
            Var(target)
            if target is not None
            else _clone_body(e.fn, env, gs, site_target)
        )
        return App(
            fn, tuple(_clone_body(a, env, gs, site_target) for a in e.args)
        )
    raise BindingTimeError(
        f"polyvariant cloning cannot handle {type(e).__name__} nodes"
    )


def _polyvariant_solve(
    prepared: Program,
    signature: tuple[BindingTime, ...],
    memo: frozenset,
    unfold: frozenset,
    max_variants: int,
) -> tuple[_Analysis, dict, frozenset]:
    """The outer clone/retarget fixpoint around :class:`_Analysis`.

    Returns the converged analysis (over the expanded variant program),
    the ``name -> VariantInfo`` map, and the set of widened origins.
    """
    goal = prepared.goal
    goal_key = (tuple(signature), "residual")
    origin_order = [d.name for d in prepared.defs]

    program = prepared
    origin_of = {name: name for name in origin_order}
    # origin -> {variant key (or None pre-analysis) -> def name}
    current: dict[Symbol, dict] = {name: {None: name} for name in origin_order}
    capped: set[Symbol] = set()
    gs = Gensym("v")

    for _round in range(_MAX_POLY_ROUNDS):
        analysis = _Analysis(program, signature, memo, unfold, origin_of)
        analysis.solve()

        sites_by_host = _collect_sites(analysis)

        # Worklist over donor bodies: which (origin, key) variants are
        # reachable from the goal?  Restart whenever an origin newly
        # overflows the cap (its keys collapse to the widened join).
        def donor_for(o: Symbol, k: tuple) -> Symbol:
            cur = current[o]
            if k in cur:
                return cur[k]
            for d in program.defs:   # first clone of o, in def order
                if origin_of[d.name] is o:
                    return d.name
            raise BindingTimeError(f"no clone of {o} to derive {k} from")

        while True:
            needed: dict[Symbol, set] = {}
            requesters: dict[tuple, list] = {}
            overflow = None
            work: list[tuple] = [(goal, goal_key, "<goal>")]
            seen: set[tuple] = set()
            while work:
                o, k, where = work.pop()
                if o in capped:
                    k = _WIDENED_KEY
                requesters.setdefault((o, k), []).append(where)
                if (o, k) in seen:
                    continue
                seen.add((o, k))
                needed.setdefault(o, set()).add(k)
                if len(needed[o]) > max_variants and o not in capped:
                    overflow = o
                    break
                for s in sites_by_host.get(donor_for(o, k), ()):
                    work.append(
                        (origin_of[s.callee], s.key, f"{s.host}:{s.path}")
                    )
            if overflow is None:
                break
            capped.add(overflow)

        # Name every needed variant.
        new_names: dict[Symbol, dict] = {
            o: {
                k: _variant_name(o, keys, k, goal, goal_key)
                for k in sorted(keys, key=_key_order)
            }
            for o, keys in needed.items()
        }

        def resolve(o: Symbol, k: tuple) -> Symbol:
            if o in capped:
                k = _WIDENED_KEY
            return new_names[o][k]

        # Converged when the clone name sets and every call-site target
        # in a surviving clone are already what we would rebuild.
        stable = {
            nm for km in new_names.values() for nm in km.values()
        } == {d.name for d in program.defs}
        if stable:
            for o, km in new_names.items():
                for k, nm in km.items():
                    for s in sites_by_host.get(nm, ()):
                        if s.callee is not resolve(origin_of[s.callee], s.key):
                            stable = False
        if stable:
            info = {
                nm: _variant_info(o, k, requesters.get((o, k), ()))
                for o, km in new_names.items()
                for k, nm in km.items()
            }
            return analysis, info, frozenset(capped)

        # Rebuild the variant program.
        defs = []
        origin_of_new: dict[Symbol, Symbol] = {}
        for o in origin_order:
            if o not in needed:
                continue
            for k, nm in new_names[o].items():
                donor = program.lookup(donor_for(o, k))
                site_target = {
                    id(s.app): resolve(origin_of[s.callee], s.key)
                    for s in sites_by_host.get(donor.name, ())
                }
                params = tuple(gs.fresh(p) for p in donor.params)
                env = dict(zip(donor.params, params))
                defs.append(
                    Def(nm, params, _clone_body(donor.body, env, gs, site_target))
                )
                origin_of_new[nm] = o
        program = Program(tuple(defs), goal)
        origin_of = origin_of_new
        current = new_names

    # The variant request set failed to stabilise: fall back to the
    # monovariant join for every function.
    analysis = _Analysis(prepared, signature, memo, unfold)
    analysis.solve()
    info = {
        name: VariantInfo(origin=name, signature="mono", role="widened")
        for name in origin_order
    }
    return analysis, info, frozenset(origin_order)


def _variant_info(origin: Symbol, key: tuple, where: Iterable[str]) -> VariantInfo:
    call_sites = tuple(w for w in where if w != "<goal>")
    if key == _WIDENED_KEY:
        return VariantInfo(origin, "mono", "widened", call_sites)
    argsig, role = key
    return VariantInfo(origin, _sig_str(argsig), role, call_sites)


@traced("pe.bta")
def analyze(
    program: Program,
    signature: str | tuple[BindingTime, ...],
    memo_hints: Iterable[str | Symbol] = (),
    unfold_hints: Iterable[str | Symbol] = (),
    bta: str = "poly",
    max_variants: int = 8,
) -> BTAResult:
    """Run the front end and binding-time analysis; return annotated output.

    ``signature`` gives the binding time of each goal parameter, e.g.
    ``"SD"`` for a two-argument goal with a static first argument.
    ``bta`` selects the division discipline: ``"poly"`` (the default)
    clones functions per abstract call-site signature, bounded by
    ``max_variants`` per function; ``"mono"`` computes the classic
    monovariant join division.
    """
    if bta not in ("mono", "poly"):
        raise BindingTimeError(f"unknown bta mode {bta!r} (use 'mono' or 'poly')")
    if isinstance(signature, str):
        signature = parse_signature(signature)
    prepared = prepare(program)
    memo = frozenset(sym(h) if isinstance(h, str) else h for h in memo_hints)
    unfold = frozenset(sym(h) if isinstance(h, str) else h for h in unfold_hints)
    variants: dict = {}
    widened: frozenset = frozenset()
    if bta == "poly" and max_variants >= 1:
        analysis, variants, widened = _polyvariant_solve(
            prepared, signature, memo, unfold, max_variants
        )
    else:
        bta = "mono"
        analysis = _Analysis(prepared, signature, memo, unfold)
        analysis.solve()
    annotated = _annotate_program(analysis)
    division = {
        name: analysis._get_bt(name)
        for d in analysis.program.defs
        for name in d.params
    }
    decisions = {
        host: tuple(
            (s.path, s.callee, "memo" if s.key[1] == "residual" else "unfold")
            for s in host_sites
        )
        for host, host_sites in _collect_sites(analysis).items()
        if host_sites
    }
    lams = {
        id(node): LamSite(
            node=node,
            host=host,
            param_bts=tuple(analysis._get_bt(p) for p in node.params),
        )
        for node, host in analysis.ann_lams.values()
    }
    prepared_to_ann = {
        pid: id(node) for pid, (node, _) in analysis.ann_lams.items()
    }
    apps = {
        app_id: tuple(
            prepared_to_ann[pid] for pid in pids if pid in prepared_to_ann
        )
        for app_id, pids in analysis.ann_closure_apps.items()
    }
    return BTAResult(
        annotated=annotated,
        prepared=analysis.program,
        division=division,
        residual_defs=frozenset(
            d.name for d in annotated.defs if d.residual
        ),
        decisions=decisions,
        closure=ClosureInfo(lams=lams, apps=apps),
        mode=bta,
        variants=variants,
        widened=widened,
    )


# -- annotation ---------------------------------------------------------------------------


def _annotate_program(analysis: _Analysis) -> AnnotatedProgram:
    program = analysis.program
    reachable = _reachable_defs(program)
    ann_defs = []
    for d in program.defs:
        if d.name not in reachable:
            continue
        analysis.chain = {}
        analysis._chain_pass(d.body, {})
        annotator = _Annotator(analysis, d.name)
        residual = analysis.is_residual(d.name)
        body = annotator.annotate(d.body, demand=residual)
        bts = tuple(analysis._get_bt(p) for p in d.params)
        ann_defs.append(AnnDef(d.name, d.params, bts, body, residual))
    return AnnotatedProgram(tuple(ann_defs), program.goal)


def _reachable_defs(program: Program) -> set[Symbol]:
    from repro.lang.ast import walk

    names = {d.name for d in program.defs}
    seen: set[Symbol] = set()
    work = [program.goal]
    while work:
        f = work.pop()
        if f in seen:
            continue
        seen.add(f)
        for node in walk(program.lookup(f).body):
            if isinstance(node, Var) and node.name in names:
                work.append(node.name)
    return seen


class _Annotator:
    """Produces ACS from the solved analysis."""

    def __init__(self, analysis: _Analysis, host: Symbol):
        self.a = analysis
        self.host = host

    def _is_dynamic(self, e: Expr) -> bool:
        return self.a._get_bt(id(e)) is D

    def _wrap(self, annotated: Expr, original: Expr, demand: bool) -> Expr:
        """Insert a lift when a static value sits in a code position."""
        if demand and not self._is_dynamic(original):
            return Lift(annotated)
        return annotated

    def annotate(self, e: Expr, demand: bool) -> Expr:
        a = self.a
        if isinstance(e, Const):
            return self._wrap(e, e, demand)

        if isinstance(e, Var):
            return self._wrap(e, e, demand)

        if isinstance(e, Lam):
            if id(e) in a.lam_forced:
                return DLam(e.params, self.annotate(e.body, demand=True))
            if demand:
                raise BindingTimeError(
                    "a static lambda reached a dynamic context without"
                    " being forced; analysis bug"
                )
            new = Lam(e.params, self.annotate(e.body, demand=False))
            a.ann_lams[id(e)] = (new, self.host)
            return new

        if isinstance(e, Let):
            return Let(
                e.var,
                self.annotate(e.rhs, demand=False),
                self.annotate(e.body, demand=demand),
            )

        if isinstance(e, If):
            if self._is_dynamic(e.test):
                return DIf(
                    self.annotate(e.test, demand=True),
                    self.annotate(e.then, demand=True),
                    self.annotate(e.alt, demand=True),
                )
            return If(
                self.annotate(e.test, demand=False),
                self.annotate(e.then, demand=demand),
                self.annotate(e.alt, demand=demand),
            )

        if isinstance(e, Prim):
            spec = PRIMITIVES.get(e.op)
            impure = spec is not None and not spec.pure
            any_dynamic = any(self._is_dynamic(x) for x in e.args)
            if impure or any_dynamic:
                return DPrim(
                    e.op,
                    tuple(self.annotate(x, demand=True) for x in e.args),
                )
            return self._wrap(
                Prim(e.op, tuple(self.annotate(x, demand=False) for x in e.args)),
                e,
                demand,
            )

        if isinstance(e, App):
            fn_id = id(e.fn)
            callables = a._avals(fn_id)
            forced_lam_present = any(
                item[0] == "lam" and item[1] in a.lam_forced
                for item in callables
            )
            if a._get_bt(fn_id) is D or forced_lam_present:
                return DApp(
                    self.annotate(e.fn, demand=True),
                    tuple(self.annotate(x, demand=True) for x in e.args),
                )
            defs_reached = [i[1] for i in callables if i[0] == "def"]
            if defs_reached:
                if len(callables) != 1:
                    raise BindingTimeError(
                        f"call site in {self.host} may reach several"
                        " targets including a top-level function; the"
                        " monovariant analysis cannot annotate it"
                    )
                f = defs_reached[0]
                decision = a.call_decision(self.host, f, e)
                callee = a.defs[f]
                if decision == "memo":
                    args = tuple(
                        self.annotate(x, demand=(a._get_bt(p) is D))
                        for x, p in zip(e.args, callee.params)
                    )
                    return MemoCall(f, args)
                return self._wrap(
                    App(
                        e.fn,
                        tuple(self.annotate(x, demand=False) for x in e.args),
                    ),
                    e,
                    demand,
                )
            # Static closure application (unfolding).
            new = App(
                self.annotate(e.fn, demand=False),
                tuple(self.annotate(x, demand=False) for x in e.args),
            )
            lam_ids = tuple(i[1] for i in callables if i[0] == "lam")
            if lam_ids:
                a.ann_closure_apps[id(new)] = lam_ids
            return self._wrap(new, e, demand)

        raise BindingTimeError(f"cannot annotate {type(e).__name__}")
