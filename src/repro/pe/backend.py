"""The residual-code constructor interface and the source backend.

The specializer is parameterized over the functions that construct residual
code — the paper's point (§5.4): "we parameterize [the specializer] over
the (standard) syntax constructors and provide alternative implementations
for them: one that constructs syntax and another one that corresponds to
the compiler".

:class:`SourceBackend` is the first implementation: it builds residual
*source* programs (CS abstract syntax in ANF).  The second implementation —
the object-code backend assembled from the compiler's code-generation
combinators — lives in :mod:`repro.compiler.fusion`; it is the composition
the paper is about.

Handle disciplines a backend must obey (the specializer relies on them):

* ``var``/``const``/``lam``/``global_ref`` produce *trivial* handles;
* ``prim``/``call`` produce *serious* handles, which the specializer
  immediately puts into ``let`` or ``tail`` position (the ANF discipline);
* ``let``/``if_``/``ret``/``tail`` produce *body* handles;
* ``define`` consumes a body for one residual top-level function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Protocol, Sequence

from repro.lang.ast import (
    App,
    Const,
    Def,
    Expr,
    If,
    Lam,
    Let,
    Prim,
    Program,
    Var,
)
from repro.runtime.values import value_to_datum
from repro.sexp.datum import Symbol


class Backend(Protocol):
    """What the specializer needs from a residual-code constructor set."""

    #: Cache-key discriminator: which artifact this backend produces
    #: (``"source"``, ``"object"``, ...).  Residual programs generated
    #: through different kinds must never share a memo-cache entry.
    kind: str

    def const(self, value: Any) -> Any: ...

    def var(self, name: Symbol) -> Any: ...

    def global_ref(self, name: Symbol) -> Any: ...

    def lam(self, params: Sequence[Symbol], body: Any) -> Any: ...

    def prim(self, op: Symbol, args: Sequence[Any]) -> Any: ...

    def call(self, fn: Any, args: Sequence[Any]) -> Any: ...

    def let(self, var: Symbol, rhs: Any, body: Any) -> Any: ...

    def if_(self, test: Any, then: Any, alt: Any) -> Any: ...

    def ret(self, triv: Any) -> Any: ...

    def tail(self, serious: Any) -> Any: ...

    def define(self, name: Symbol, params: Sequence[Symbol], body: Any) -> None: ...


@dataclass
class ResidualProgram:
    """What specialization produces, in backend-independent terms.

    ``goal`` names the entry point; ``goal_params`` are its (dynamic)
    parameters.  The concrete artifact depends on the backend:
    :attr:`program` for source, :attr:`machine` for object code.

    **Immutability contract**: once a ``ResidualProgram`` enters the
    residual cache it is shared across callers and threads and must
    never be mutated — in particular, ``stats`` on a cached object
    holds only *production* facts (``disk_hit``, image digest,
    residual size), written before publication.  Per-call facts
    (``cache_hit``, cache snapshots) belong on the shallow views
    minted by :meth:`with_call_stats`.
    """

    goal: Symbol
    goal_params: tuple[Symbol, ...]
    program: Program | None = None      # source backend
    machine: Any = None                 # object-code backend
    stats: dict = field(default_factory=dict)
    #: Optional tiering delegate (``run(residual, args)``), attached by
    #: ``GeneratingExtension`` when ``tier_threshold`` is set.  It lives
    #: on the per-call views, never on the cached object itself, so the
    #: immutability contract below is untouched; shared promotion state
    #: is keyed inside the extension.
    tier: Any = field(default=None, repr=False, compare=False)

    def run(self, args: Sequence[Any]) -> Any:
        """Run the residual program on dynamic arguments.

        With a tiering delegate attached, the run is routed through it:
        cold residuals interpret on the base machine while the delegate
        counts runs, and hot ones (past the extension's
        ``tier_threshold``) execute on a validated
        superinstruction-fused machine.
        """
        if self.tier is not None:
            return self.tier.run(self, args)
        if self.machine is not None:
            return self.machine.call_named(self.goal, list(args))
        from repro.interp import run_program

        return run_program(self.program, list(args))

    def run_profiled(self, args: Sequence[Any], profile: Any) -> Any:
        """Run under the VM's counting dispatch loop (object code only).

        ``profile`` is a :class:`repro.vm.profile.VMProfile`; it
        accumulates per-opcode and per-template execution counts.  Raises
        for source-backed residual programs, which have no templates to
        profile.
        """
        if self.machine is None:
            raise ValueError(
                f"{self.goal}: run_profiled requires an object-code"
                " residual program (this one is source-backed)"
            )
        from repro.vm.profile import call_named_profiled

        return call_named_profiled(self.machine, self.goal, list(args), profile)

    def with_call_stats(self, **per_call: Any) -> "ResidualProgram":
        """A shallow per-call view with extra stats entries.

        Cached residual programs are **immutable after insertion** —
        concurrent callers share them, so per-call facts (``cache_hit``,
        cache snapshots) must never be written into the shared ``stats``
        dict.  This returns a new :class:`ResidualProgram` sharing the
        artifact (``program``/``machine``) but owning a fresh merged
        ``stats`` dict, so each caller sees its own metadata.
        """
        merged = dict(self.stats)
        merged.update(per_call)
        return ResidualProgram(
            goal=self.goal,
            goal_params=self.goal_params,
            program=self.program,
            machine=self.machine,
            stats=merged,
        )

    def fingerprint(self) -> str:
        """A stable textual identity for the residual artifact.

        Two residual programs with equal fingerprints contain the same
        code, byte for byte: the disassembly of every installed template
        (object code) or the unparsed definitions (source).  Used by the
        cache/concurrency tests to assert that regeneration and cache
        hits produce identical code.
        """
        if self.machine is not None:
            from repro.vm.disasm import disassemble
            from repro.vm.machine import VmClosure

            parts = []
            for name in sorted(self.machine.globals, key=lambda s: s.name):
                value = self.machine.globals[name]
                if isinstance(value, VmClosure):
                    parts.append(disassemble(value.template))
            return "\n".join(parts)
        from repro.lang.unparse import unparse_program
        from repro.sexp.writer import write

        return "\n".join(write(d) for d in unparse_program(self.program))


class SourceBackend:
    """Builds residual programs as CS abstract syntax (always in ANF)."""

    kind = "source"

    def __init__(self) -> None:
        self.defs: list[Def] = []

    # -- trivial constructors ------------------------------------------------

    def const(self, value: Any) -> Expr:
        return Const(_freeze_datum(value))

    def var(self, name: Symbol) -> Expr:
        return Var(name)

    def global_ref(self, name: Symbol) -> Expr:
        return Var(name)

    def lam(self, params: Sequence[Symbol], body: Expr) -> Expr:
        return Lam(tuple(params), body)

    # -- serious constructors ---------------------------------------------------

    def prim(self, op: Symbol, args: Sequence[Expr]) -> Expr:
        return Prim(op, tuple(args))

    def call(self, fn: Expr, args: Sequence[Expr]) -> Expr:
        return App(fn, tuple(args))

    # -- body constructors ---------------------------------------------------------

    def let(self, var: Symbol, rhs: Expr, body: Expr) -> Expr:
        return Let(var, rhs, body)

    def if_(self, test: Expr, then: Expr, alt: Expr) -> Expr:
        return If(test, then, alt)

    def ret(self, triv: Expr) -> Expr:
        return triv

    def tail(self, serious: Expr) -> Expr:
        return serious

    # -- definitions ------------------------------------------------------------------

    def define(self, name: Symbol, params: Sequence[Symbol], body: Expr) -> None:
        self.defs.append(Def(name, tuple(params), body))

    def finish(self, goal: Symbol, goal_params: tuple[Symbol, ...]) -> ResidualProgram:
        program = Program(tuple(self.defs), goal)
        return ResidualProgram(goal=goal, goal_params=goal_params, program=program)


def _freeze_datum(value: Any) -> Any:
    """Convert a run-time value into frozen constant data for a Const."""
    datum = value_to_datum(value)
    return _tupleize(datum)


def _tupleize(datum: Any) -> Any:
    if isinstance(datum, list):
        return tuple(_tupleize(d) for d in datum)
    return datum
