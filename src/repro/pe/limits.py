"""Process-wide interpreter limits for deep specialization runs.

The continuation-passing specializer and the compiled generating
extensions recurse to a depth proportional to the residual program, so
they need a large Python recursion limit.  Early versions saved the
current limit, raised it, and restored it in a ``finally`` — which is
not reentrant: a nested run (a generating extension invoked from inside
a backend callback) or two concurrent runs clobber each other's restore,
leaving the process with whichever stale value happened to be written
last.

Instead the limit is treated as a **one-time process-wide floor**: every
run calls :func:`ensure_recursion_limit`, which only ever *raises* the
limit (never lowers, never restores).  The operation is monotone and
idempotent, so nesting and concurrency are trivially safe.
"""

from __future__ import annotations

import sys
import threading

#: The recursion depth the specialization engines are entitled to.
RECURSION_FLOOR = 100_000

_lock = threading.Lock()


def ensure_recursion_limit(floor: int = RECURSION_FLOOR) -> None:
    """Raise the interpreter recursion limit to at least ``floor``.

    Never lowers the limit and never restores a previous value; safe to
    call from nested runs and from multiple threads.
    """
    with _lock:
        if sys.getrecursionlimit() < floor:
            sys.setrecursionlimit(floor)
