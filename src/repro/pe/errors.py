"""Errors raised by the partial evaluation system."""

from __future__ import annotations


class PEError(Exception):
    """Base class for partial evaluation errors."""


class BindingTimeError(PEError):
    """The binding-time analysis found an inconsistency (or an annotated
    program violates the congruence discipline at specialization time)."""


class SpecializationError(PEError):
    """Specialization failed (spec-time error, or resource bound hit)."""
