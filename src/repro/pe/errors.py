"""Errors raised by the partial evaluation system."""

from __future__ import annotations


class PEError(Exception):
    """Base class for partial evaluation errors."""


class BindingTimeError(PEError):
    """The binding-time analysis found an inconsistency (or an annotated
    program violates the congruence discipline at specialization time)."""


class SpecializationError(PEError):
    """Specialization failed (spec-time error, or resource bound hit)."""


class BudgetExceeded(SpecializationError):
    """A specialization resource budget ran out.

    ``budget`` names the exhausted knob (``"max_unfold_depth"``,
    ``"max_residual_size"``, or ``"python-recursion-limit"``), ``limit``
    its value, and ``cycle`` the repeating static call cycle the
    specializer was inside when the budget tripped — the names the
    static analyzer would have flagged.
    """

    def __init__(self, budget: str, limit: int, cycle: tuple = ()):
        self.budget = budget
        self.limit = limit
        self.cycle = tuple(cycle)
        msg = f"specialization exceeded {budget}={limit}"
        if self.cycle:
            msg += (
                " while specializing the static call cycle "
                + " -> ".join(self.cycle)
            )
        msg += (
            "; specialization probably does not terminate"
            " (run `repro analyze` for a static diagnosis)"
        )
        super().__init__(msg)
