"""Compiled generating extensions (the PGG path, after Thiemann [59]).

:func:`compile_generating_extension` translates an annotated program into a
*generating extension*: the syntactic dispatch over Annotated Core Scheme
is performed **once**, at translation time, producing a tree of composed
Python closures.  Running the extension on static input then executes only
the staged actions — no AST traversal remains.  This mirrors the paper's
PGG [59] ("Cogen in six lines"): a compiler from annotated programs to
program generators, as opposed to interpreting annotations at each
specialization (which is what :mod:`repro.pe.specializer` does).

The generated extension is parameterized over the same residual-code
backend as the specializer, so it can produce source *or* object code —
composing the cogen path with the fused backend realizes §9's outlook of
making generating extensions that directly emit object code.

The test suite checks extension ≡ specializer (identical residual
programs modulo fresh names, same results).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Sequence

from repro.lang.ast import (
    App,
    Const,
    DApp,
    DIf,
    DLam,
    DPrim,
    Expr,
    If,
    Lam,
    Let,
    Lift,
    MemoCall,
    Prim,
    Var,
)
from repro.lang.gensym import Gensym
from repro.lang.prims import PRIMITIVES, PrimSpec
from repro.interp import PrimProcedure
from repro.obs import traced
from repro.pe.annprog import AnnDef, AnnotatedProgram, BindingTime
from repro.pe.backend import Backend, ResidualProgram, SourceBackend
from repro.pe.errors import BindingTimeError, BudgetExceeded, SpecializationError
from repro.pe.limits import ensure_recursion_limit
from repro.pe.residual_cache import ResidualCache
from repro.pe.values import (
    Dynamic,
    FreezeCache,
    Static,
    freeze_static,
    is_first_order,
)
from repro.runtime.errors import SchemeError
from repro.runtime.values import datum_to_value, is_truthy
from repro.sexp.datum import Symbol

S = BindingTime.STATIC
D = BindingTime.DYNAMIC

# A compiled expression: (environment, runtime, continuation) -> body code.
GenCode = Callable[[dict, "_Runtime", Callable], Any]


class _Runtime:
    """The per-specialization state of a running generating extension."""

    __slots__ = (
        "backend",
        "gensym",
        "name_gensym",
        "memo",
        "pending",
        "max_residual_defs",
        "residual_def_count",
        "freeze_cache",
        "max_unfold_depth",
        "max_residual_size",
        "residual_size",
        "unfold_stack",
        "draining",
    )

    def __init__(
        self,
        backend: Backend,
        max_residual_defs: int,
        name_gensym: Gensym,
        max_unfold_depth: int = 5_000,
        max_residual_size: int = 1_000_000,
    ):
        self.backend = backend
        self.gensym = Gensym("y")
        self.name_gensym = name_gensym
        self.memo: dict[tuple, tuple[Symbol, tuple[Symbol, ...]]] = {}
        self.pending: deque = deque()
        self.max_residual_defs = max_residual_defs
        self.residual_def_count = 0
        self.freeze_cache = FreezeCache()
        # Same runtime backstop as the interpretive specializer.
        self.max_unfold_depth = max_unfold_depth
        self.max_residual_size = max_residual_size
        self.residual_size = 0
        self.unfold_stack: list[str] = []
        self.draining: Symbol | None = None

    def charge(self, n: int = 1) -> None:
        self.residual_size += n
        if self.residual_size > self.max_residual_size:
            raise BudgetExceeded(
                "max_residual_size",
                self.max_residual_size,
                cycle=self.repeating_cycle(),
            )

    def repeating_cycle(self) -> tuple[str, ...]:
        stack = self.unfold_stack
        if not stack:
            if self.draining is not None:
                return (str(self.draining),)
            return ()
        top = stack[-1]
        for i in range(len(stack) - 2, -1, -1):
            if stack[i] == top:
                return tuple(stack[i:][:32])
        return (top,)


class _TailCont:
    """Return continuation of a residual body (shares the specializer's
    tail-position discipline)."""

    __slots__ = ("rt",)

    def __init__(self, rt: _Runtime):
        self.rt = rt

    def __call__(self, value: Any) -> Any:
        return self.rt.backend.ret(_triv(self.rt, value))


class GenClosure:
    """A static closure of the generating extension: a *compiled* body."""

    __slots__ = ("params", "code", "env", "name")

    def __init__(self, params, code, env, name="lambda"):
        self.params = params
        self.code = code
        self.env = env
        self.name = name


def _triv(rt: _Runtime, value: Any) -> Any:
    if isinstance(value, Dynamic):
        return value.code
    v = value.value
    if isinstance(v, GenClosure):
        raise BindingTimeError(
            "cannot lift a static closure to code (generating extension)"
        )
    if isinstance(v, (PrimSpec, PrimProcedure)):
        name = v.spec.name if isinstance(v, PrimProcedure) else v.name
        return rt.backend.global_ref(name)
    if not is_first_order(v):
        raise BindingTimeError(f"cannot lift value {v!r} to code")
    return rt.backend.const(v)


def _insert_let(rt: _Runtime, serious: Any, k: Callable) -> Any:
    rt.charge()
    if isinstance(k, _TailCont):
        return rt.backend.tail(serious)
    fresh = rt.gensym.fresh("t")
    return rt.backend.let(
        fresh, serious, k(Dynamic(rt.backend.var(fresh)))
    )


class CompiledGeneratingExtension:
    """An annotated program compiled to a generating extension.

    ``cache_size`` bounds an optional cross-invocation residual-code
    cache (see :mod:`repro.pe.residual_cache`); ``generate`` consults it
    only when asked (``use_cache=True``), so timing-sensitive callers
    keep measuring real generation by default.
    """

    def __init__(self, annotated: AnnotatedProgram, cache_size: int = 128):
        self.annotated = annotated
        self.cache = ResidualCache(cache_size)
        self._defs: dict[Symbol, tuple[AnnDef, GenCode]] = {}
        for d in annotated.defs:
            self._defs[d.name] = (d, self._comp(d.body))

    # -- running the extension --------------------------------------------------

    def generate(
        self,
        static_args: Sequence[Any],
        backend: Backend | None = None,
        max_residual_defs: int = 10_000,
        name_gensym: Gensym | None = None,
        use_cache: bool = False,
        max_unfold_depth: int = 5_000,
        max_residual_size: int = 1_000_000,
    ) -> ResidualProgram:
        """Map static input to a residual program.

        With ``use_cache=True`` the result is served from (and stored
        into) the extension's residual-code cache, keyed by the frozen
        static arguments and the backend kind; the ``backend`` argument
        then only determines the key's kind on a hit.
        """
        if use_cache and self.cache.maxsize > 0:
            kind = getattr(backend, "kind", None) or (
                "source" if backend is None else type(backend).__name__
            )
            key = (
                tuple(freeze_static(a) for a in static_args),
                "duplicate",  # the cogen path always duplicates (Fig. 3)
                kind,
            )
            result, hit = self.cache.get_or_generate(
                key,
                lambda: self._generate(
                    static_args,
                    backend,
                    max_residual_defs,
                    name_gensym,
                    max_unfold_depth,
                    max_residual_size,
                ),
            )
            # The cached residual program is shared by every caller that
            # hits this key; per-call facts go on a shallow view, never
            # into the shared stats dict (same contract as
            # GeneratingExtension._generate).
            return result.with_call_stats(
                cache_hit=hit, cache=self.cache.stats()
            )
        return self._generate(
            static_args,
            backend,
            max_residual_defs,
            name_gensym,
            max_unfold_depth,
            max_residual_size,
        )

    @traced("pe.cogen.generate")
    def _generate(
        self,
        static_args: Sequence[Any],
        backend: Backend | None = None,
        max_residual_defs: int = 10_000,
        name_gensym: Gensym | None = None,
        max_unfold_depth: int = 5_000,
        max_residual_size: int = 1_000_000,
    ) -> ResidualProgram:
        backend = backend if backend is not None else SourceBackend()
        from repro.pe.specializer import Specializer

        rt = _Runtime(
            backend,
            max_residual_defs,
            name_gensym or Specializer._shared_names,
            max_unfold_depth=max_unfold_depth,
            max_residual_size=max_residual_size,
        )
        goal, _ = self._defs[self.annotated.goal]
        statics = list(static_args)
        if len(statics) != len(goal.static_params()):
            raise SpecializationError(
                f"goal {goal.name} expects {len(goal.static_params())}"
                f" static arguments, got {len(statics)}"
            )
        args: list[Any] = []
        it = iter(statics)
        for bt, p in zip(goal.bts, goal.params):
            if bt is S:
                args.append(Static(next(it)))
            else:
                args.append(Dynamic(backend.var(p)))
        # One-time process-wide floor; never restored (see pe.limits).
        ensure_recursion_limit()
        try:
            residual_goal, dyn_params = self._memoize(rt, goal, args)
            self._drain(rt)
        except RecursionError:
            import sys

            raise BudgetExceeded(
                "python-recursion-limit",
                sys.getrecursionlimit(),
                cycle=rt.repeating_cycle(),
            ) from None
        result = backend.finish(residual_goal, dyn_params)
        result.stats["residual_defs"] = rt.residual_def_count
        result.stats["residual_size"] = rt.residual_size
        return result

    __call__ = generate

    # -- memoization ----------------------------------------------------------------

    def _memoize(self, rt: _Runtime, d: AnnDef, args: list) -> tuple:
        static_key = []
        for bt, p, a in zip(d.bts, d.params, args):
            if bt is S:
                if not isinstance(a, Static):
                    raise BindingTimeError(
                        f"{d.name}: static parameter {p} received dynamic"
                        " value"
                    )
                static_key.append(_freeze(a.value, rt.freeze_cache))
        key = (d.name, tuple(static_key))
        hit = rt.memo.get(key)
        if hit is not None:
            return hit
        residual_name = rt.name_gensym.fresh(d.name)
        dyn_params = tuple(rt.gensym.fresh(p) for p in d.dynamic_params())
        rt.memo[key] = (residual_name, dyn_params)
        env: dict[Symbol, Any] = {}
        dyn_iter = iter(dyn_params)
        for bt, p, a in zip(d.bts, d.params, args):
            if bt is S:
                env[p] = a
            else:
                env[p] = Dynamic(rt.backend.var(next(dyn_iter)))
        rt.pending.append((residual_name, dyn_params, d, env))
        return rt.memo[key]

    def _drain(self, rt: _Runtime) -> None:
        while rt.pending:
            residual_name, dyn_params, d, env = rt.pending.popleft()
            rt.draining = d.name
            rt.residual_def_count += 1
            if rt.residual_def_count > rt.max_residual_defs:
                raise BudgetExceeded(
                    "max_residual_defs",
                    rt.max_residual_defs,
                    cycle=rt.repeating_cycle(),
                )
            rt.charge()
            _, code = self._defs[d.name]
            body = code(env, rt, _TailCont(rt))
            rt.backend.define(residual_name, dyn_params, body)

    # -- the compiler: ACS -> composed closures ------------------------------------

    def _comp(self, e: Expr) -> GenCode:
        if isinstance(e, Const):
            value = Static(datum_to_value(e.value))
            return lambda env, rt, k: k(value)

        if isinstance(e, Var):
            name = e.name
            if self.annotated.has(name):
                d = self.annotated.lookup(name)
                code = None

                def def_ref(env, rt, k, d=d):
                    nonlocal code
                    if code is None:
                        _, code = self._defs[d.name]
                    return k(Static(GenClosure(d.params, code, {}, d.name.name)))

                return def_ref
            spec = PRIMITIVES.get(name)
            if spec is not None:
                prim_value = Static(PrimProcedure(spec))

                def var_or_prim(env, rt, k):
                    hit = env.get(name)
                    return k(hit if hit is not None else prim_value)

                return var_or_prim

            def var_ref(env, rt, k):
                try:
                    return k(env[name])
                except KeyError:
                    raise SpecializationError(
                        f"unbound variable at generation: {name}"
                    ) from None

            return var_ref

        if isinstance(e, Lam):
            params, body_code = e.params, self._comp(e.body)
            return lambda env, rt, k: k(
                Static(GenClosure(params, body_code, dict(env)))
            )

        if isinstance(e, Lift):
            inner = self._comp(e.expr)
            return lambda env, rt, k: inner(
                env, rt, lambda v: k(Dynamic(_triv(rt, v)))
            )

        if isinstance(e, Let):
            var, rhs, body = e.var, self._comp(e.rhs), self._comp(e.body)

            def let_code(env, rt, k):
                return rhs(
                    env, rt, lambda v: body({**env, var: v}, rt, k)
                )

            return let_code

        if isinstance(e, If):
            test = self._comp(e.test)
            then, alt = self._comp(e.then), self._comp(e.alt)

            def if_code(env, rt, k):
                def branch(v):
                    if not isinstance(v, Static):
                        raise BindingTimeError(
                            "dynamic test in static conditional"
                        )
                    chosen = then if is_truthy(v.value) else alt
                    return chosen(env, rt, k)

                return test(env, rt, branch)

            return if_code

        if isinstance(e, DIf):
            test = self._comp(e.test)
            then, alt = self._comp(e.then), self._comp(e.alt)

            def dif_code(env, rt, k):
                def emit(v):
                    rt.charge()
                    return rt.backend.if_(
                        _triv(rt, v), then(env, rt, k), alt(env, rt, k)
                    )

                return test(env, rt, emit)

            return dif_code

        if isinstance(e, Prim):
            spec = PRIMITIVES.get(e.op)
            if spec is None:
                raise SpecializationError(f"unknown primitive {e.op}")
            arg_codes = [self._comp(a) for a in e.args]
            apply_ = spec.apply
            op = e.op

            def prim_code(env, rt, k):
                def finish(vals):
                    args = []
                    for v in vals:
                        if not isinstance(v, Static):
                            raise BindingTimeError(
                                f"dynamic argument to static primitive {op}"
                            )
                        args.append(v.value)
                    try:
                        return k(Static(apply_(args)))
                    except SchemeError as exc:
                        raise SpecializationError(
                            f"generation-time error in ({op} ...): {exc}"
                        ) from exc

                return _seq(arg_codes, env, rt, finish)

            return prim_code

        if isinstance(e, DPrim):
            op = e.op
            arg_codes = [self._comp(a) for a in e.args]

            def dprim_code(env, rt, k):
                def finish(vals):
                    serious = rt.backend.prim(
                        op, [_triv(rt, v) for v in vals]
                    )
                    return _insert_let(rt, serious, k)

                return _seq(arg_codes, env, rt, finish)

            return dprim_code

        if isinstance(e, DLam):
            params = e.params
            body_code = self._comp(e.body)

            def dlam_code(env, rt, k):
                rt.charge()
                fresh = tuple(rt.gensym.fresh(p) for p in params)
                inner = dict(env)
                for p, f in zip(params, fresh):
                    inner[p] = Dynamic(rt.backend.var(f))
                body = body_code(inner, rt, _TailCont(rt))
                return k(Dynamic(rt.backend.lam(fresh, body)))

            return dlam_code

        if isinstance(e, App):
            fn_code = self._comp(e.fn)
            arg_codes = [self._comp(a) for a in e.args]

            def app_code(env, rt, k):
                def finish(vals):
                    fn, args = vals[0], vals[1:]
                    if isinstance(fn, Static) and isinstance(
                        fn.value, GenClosure
                    ):
                        clo = fn.value
                        if len(args) != len(clo.params):
                            raise SpecializationError(
                                f"{clo.name}: arity mismatch during"
                                " unfolding"
                            )
                        inner = dict(clo.env)
                        inner.update(zip(clo.params, args))
                        rt.unfold_stack.append(clo.name)
                        if len(rt.unfold_stack) > rt.max_unfold_depth:
                            raise BudgetExceeded(
                                "max_unfold_depth",
                                rt.max_unfold_depth,
                                cycle=rt.repeating_cycle(),
                            )
                        try:
                            return clo.code(inner, rt, k)
                        finally:
                            rt.unfold_stack.pop()
                    if isinstance(fn, Static) and isinstance(
                        fn.value, (PrimSpec, PrimProcedure)
                    ):
                        spec = (
                            fn.value.spec
                            if isinstance(fn.value, PrimProcedure)
                            else fn.value
                        )
                        if spec.pure and all(
                            isinstance(a, Static) for a in args
                        ):
                            try:
                                return k(
                                    Static(
                                        spec.apply([a.value for a in args])
                                    )
                                )
                            except SchemeError as exc:
                                raise SpecializationError(
                                    f"generation-time error in"
                                    f" ({spec.name} ...): {exc}"
                                ) from exc
                        serious = rt.backend.prim(
                            spec.name, [_triv(rt, a) for a in args]
                        )
                        return _insert_let(rt, serious, k)
                    raise BindingTimeError(
                        "application of a non-closure in a static"
                        " application"
                    )

                return _seq([fn_code, *arg_codes], env, rt, finish)

            return app_code

        if isinstance(e, DApp):
            fn_code = self._comp(e.fn)
            arg_codes = [self._comp(a) for a in e.args]

            def dapp_code(env, rt, k):
                def finish(vals):
                    serious = rt.backend.call(
                        _triv(rt, vals[0]), [_triv(rt, v) for v in vals[1:]]
                    )
                    return _insert_let(rt, serious, k)

                return _seq([fn_code, *arg_codes], env, rt, finish)

            return dapp_code

        if isinstance(e, MemoCall):
            callee = self.annotated.lookup(e.name)
            arg_codes = [self._comp(a) for a in e.args]
            dyn_positions = [i for i, bt in enumerate(callee.bts) if bt is D]

            def memo_code(env, rt, k):
                def finish(vals):
                    residual_name, _ = self._memoize(rt, callee, vals)
                    dyn_args = [_triv(rt, vals[i]) for i in dyn_positions]
                    serious = rt.backend.call(
                        rt.backend.global_ref(residual_name), dyn_args
                    )
                    return _insert_let(rt, serious, k)

                return _seq(arg_codes, env, rt, finish)

            return memo_code

        raise SpecializationError(
            f"cogen cannot compile {type(e).__name__}"
        )


def _seq(codes: list, env: dict, rt: _Runtime, k: Callable) -> Any:
    """Run compiled argument codes left to right, collecting values."""

    def go(i: int, acc: list) -> Any:
        if i == len(codes):
            return k(acc)
        return codes[i](env, rt, lambda v: go(i + 1, acc + [v]))

    return go(0, [])


def _freeze(value: Any, cache: FreezeCache) -> Any:
    if isinstance(value, GenClosure):
        return ("closure", id(value))
    return cache.freeze(value)


@traced("pe.cogen.compile")
def compile_generating_extension(
    annotated: AnnotatedProgram, cache_size: int = 128
) -> CompiledGeneratingExtension:
    """Compile an annotated program into a generating extension."""
    return CompiledGeneratingExtension(annotated, cache_size=cache_size)
