"""The continuation-based specializer (Fig. 3) with memoization.

The engine implements the specializer of Fig. 3: a continuation-passing
traversal of Annotated Core Scheme in which every *serious* piece of
residual code (a dynamic primitive or application) is wrapped in a ``let``
with a fresh variable — so residual programs are in A-normal form by
construction.

Beyond Fig. 3 (which the paper elides as "standard" [30, 60]):

* **Memoization** — :class:`~repro.pe.annprog.AnnDef`\\ s marked
  ``residual`` are specialization points.  A call is looked up in a memo
  table keyed by (function, static argument values); a hit reuses the
  specialized name, a miss schedules a new residual definition.
* **Tail positions** — when the continuation is the function-body return
  continuation, serious code is emitted in tail position instead of
  let-wrapped, preserving ANF's tail-call forms (the VM relies on them).

The engine is parameterized over the residual-code constructors
(:class:`~repro.pe.backend.Backend`): handing it the source backend gives a
classical partial evaluator; handing it the fused object-code backend gives
the paper's run-time code generator.  The engine itself cannot tell the
difference — that is the point.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Sequence

from repro.lang.ast import (
    App,
    Const,
    DApp,
    DIf,
    DLam,
    DPrim,
    Expr,
    If,
    Lam,
    Let,
    Lift,
    MemoCall,
    Prim,
    Var,
)
from repro import obs
from repro.lang.gensym import Gensym
from repro.lang.prims import PRIMITIVES, PrimSpec
from repro.pe.annprog import AnnDef, AnnotatedProgram, BindingTime
from repro.pe.backend import Backend, ResidualProgram, SourceBackend
from repro.pe.errors import BindingTimeError, BudgetExceeded, SpecializationError
from repro.pe.limits import ensure_recursion_limit
from repro.pe.values import (
    Dynamic,
    FreezeCache,
    SpecClosure,
    Static,
    is_first_order,
)
from repro.interp import PrimProcedure
from repro.runtime.errors import SchemeError
from repro.runtime.values import datum_to_value, is_truthy
from repro.sexp.datum import Symbol

S = BindingTime.STATIC
D = BindingTime.DYNAMIC

Value = Static | Dynamic
Cont = Callable[[Value], Any]


class _TailCont:
    """The return continuation of a residual function body.

    Marked so serious residual code lands in tail position (``(f x)``)
    rather than being let-wrapped (``(let (t (f x)) t)``).
    """

    __slots__ = ("specializer",)

    def __init__(self, specializer: "Specializer"):
        self.specializer = specializer

    def __call__(self, value: Value) -> Any:
        backend = self.specializer.backend
        return backend.ret(self.specializer.coerce_trivial(value))


class Specializer:
    """One specialization run over an annotated program."""

    _shared_names = Gensym("f")

    def __init__(
        self,
        annotated: AnnotatedProgram,
        backend: Backend | None = None,
        max_residual_defs: int = 10_000,
        name_gensym: Gensym | None = None,
        dif_strategy: str = "duplicate",
        max_unfold_depth: int = 5_000,
        max_residual_size: int = 1_000_000,
    ):
        """``dif_strategy`` controls dynamic conditionals in *value*
        position.  ``"duplicate"`` is Fig. 3's rule: the continuation is
        specialized into both branches — faithful, but exponential for
        chains of value-position conditionals.  ``"join"`` instead binds
        the continuation once as a residual join-point lambda that both
        branches tail-call — the standard binding-time-improvement fix.
        """
        if dif_strategy not in ("duplicate", "join"):
            raise ValueError(f"unknown dif_strategy {dif_strategy!r}")
        self.dif_strategy = dif_strategy
        self.annotated = annotated
        self.backend = backend if backend is not None else SourceBackend()
        self.gensym = Gensym("y")
        # Residual function names come from a shared supply by default, so
        # that several specializations may target one machine (incremental
        # specialization, §1) without name clashes.  Pass a private Gensym
        # for reproducible naming.
        self.name_gensym = name_gensym or Specializer._shared_names
        self.memo: dict[tuple, tuple[Symbol, tuple[Symbol, ...]]] = {}
        self.freeze_cache = FreezeCache()
        self.pending: deque[tuple[Symbol, AnnDef, dict]] = deque()
        self.max_residual_defs = max_residual_defs
        self.residual_def_count = 0
        # Runtime backstop for the static termination analysis: budgets
        # on unfold nesting and on emitted residual code, so a diverging
        # specialization stops with a diagnosis instead of eating the
        # interpreter stack or all available memory.
        self.max_unfold_depth = max_unfold_depth
        self.max_residual_size = max_residual_size
        self.residual_size = 0
        self._unfold_stack: list[str] = []
        self._draining: Symbol | None = None

    # -- entry point -------------------------------------------------------------

    def run(self, static_args: Sequence[Any]) -> ResidualProgram:
        """Specialize the goal function to ``static_args``.

        ``static_args`` supplies values for the goal's *static* parameters,
        in parameter order.
        """
        goal = self.annotated.goal_def()
        with obs.span(
            "pe.specialize",
            goal=str(goal.name),
            backend=getattr(self.backend, "kind", "?"),
        ) as sp:
            result = self._run(static_args, goal)
            sp.set(
                residual_defs=self.residual_def_count,
                residual_size=self.residual_size,
            )
            obs.observe("pe.residual_size", self.residual_size)
            return result

    def _run(self, static_args: Sequence[Any], goal: AnnDef) -> ResidualProgram:
        statics = list(static_args)
        if len(statics) != len(goal.static_params()):
            raise SpecializationError(
                f"goal {goal.name} expects {len(goal.static_params())}"
                f" static arguments, got {len(statics)}"
            )
        args: list[Value] = []
        it = iter(statics)
        for bt, p in zip(goal.bts, goal.params):
            if bt is S:
                args.append(Static(next(it)))
            else:
                args.append(Dynamic(self.backend.var(p)))
        # One-time process-wide floor: never saved/restored, so nested
        # and concurrent runs cannot clobber each other (see pe.limits).
        ensure_recursion_limit()
        try:
            residual_goal, dyn_params = self._memoize(goal, args, entry=True)
            self._drain()
        except RecursionError:
            # Deep non-unfold structure (long let chains, etc.) blew the
            # interpreter stack before max_unfold_depth tripped; report
            # it with the same diagnosis instead of a bare traceback.
            import sys

            raise BudgetExceeded(
                "python-recursion-limit",
                sys.getrecursionlimit(),
                cycle=self._repeating_cycle(),
            ) from None
        result = self.backend.finish(residual_goal, dyn_params)
        result.stats["residual_defs"] = self.residual_def_count
        result.stats["memo_entries"] = len(self.memo)
        result.stats["residual_size"] = self.residual_size
        return result

    # -- memoization ----------------------------------------------------------------

    def _memoize(
        self, d: AnnDef, args: list[Value], entry: bool = False
    ) -> tuple[Symbol, tuple[Symbol, ...]]:
        """Look up / create the specialized version of ``d`` for ``args``.

        Returns the residual function's name and its parameter names.
        ``args`` follow ``d.params`` order; static positions must hold
        :class:`Static`, dynamic positions :class:`Dynamic`.
        """
        static_key = []
        for bt, p, a in zip(d.bts, d.params, args):
            if bt is S:
                if not isinstance(a, Static):
                    raise BindingTimeError(
                        f"{d.name}: static parameter {p} received dynamic value"
                    )
                static_key.append(self.freeze_cache.freeze(a.value))
        key = (d.name, tuple(static_key))
        hit = self.memo.get(key)
        if hit is not None:
            return hit
        residual_name = self.name_gensym.fresh(d.name)
        dyn_params = tuple(self.gensym.fresh(p) for p in d.dynamic_params())
        self.memo[key] = (residual_name, dyn_params)
        env: dict[Symbol, Value] = {}
        dyn_iter = iter(dyn_params)
        for bt, p, a in zip(d.bts, d.params, args):
            if bt is S:
                env[p] = a
            else:
                env[p] = Dynamic(self.backend.var(next(dyn_iter)))
        self.pending.append((residual_name, dyn_params, d, env))
        return self.memo[key]

    def _drain(self) -> None:
        while self.pending:
            residual_name, dyn_params, d, env = self.pending.popleft()
            self._draining = d.name
            self.residual_def_count += 1
            if self.residual_def_count > self.max_residual_defs:
                raise BudgetExceeded(
                    "max_residual_defs",
                    self.max_residual_defs,
                    cycle=self._repeating_cycle(),
                )
            self._charge()
            body = self.spec(d.body, env, _TailCont(self))
            self.backend.define(residual_name, dyn_params, body)

    # -- the specializer proper -------------------------------------------------------

    def spec(self, expr: Expr, env: dict[Symbol, Value], k: Cont) -> Any:
        """Specialize ``expr`` under ``env``, continuing with ``k``."""
        backend = self.backend

        if isinstance(expr, Const):
            return k(Static(datum_to_value(expr.value)))

        if isinstance(expr, Var):
            value = env.get(expr.name)
            if value is None:
                value = self._global_value(expr.name)
            return k(value)

        if isinstance(expr, Lam):
            return k(Static(SpecClosure(expr.params, expr.body, dict(env))))

        if isinstance(expr, Lift):
            return self.spec(
                expr.expr,
                env,
                lambda v: k(Dynamic(self._lift(v))),
            )

        if isinstance(expr, Let):
            return self.spec(
                expr.rhs,
                env,
                lambda v: self.spec(expr.body, {**env, expr.var: v}, k),
            )

        if isinstance(expr, If):
            def branch(v: Value) -> Any:
                if not isinstance(v, Static):
                    raise BindingTimeError(
                        "dynamic test in a static conditional"
                    )
                chosen = expr.then if is_truthy(v.value) else expr.alt
                return self.spec(chosen, env, k)

            return self.spec(expr.test, env, branch)

        if isinstance(expr, DIf):
            def emit_dif(v: Value) -> Any:
                self._charge()
                test = self.coerce_trivial(v)
                if self.dif_strategy == "join" and not isinstance(
                    k, _TailCont
                ):
                    # Bind the continuation once as a join-point lambda;
                    # both branches tail-call it.
                    join_name = self.gensym.fresh("join")
                    result_name = self.gensym.fresh("r")
                    join_body = k(Dynamic(backend.var(result_name)))
                    join_lam = backend.lam((result_name,), join_body)

                    def branch_k(bv: Value) -> Any:
                        return backend.tail(
                            backend.call(
                                backend.var(join_name),
                                [self.coerce_trivial(bv)],
                            )
                        )

                    return backend.let(
                        join_name,
                        join_lam,
                        backend.if_(
                            test,
                            self.spec(expr.then, env, branch_k),
                            self.spec(expr.alt, env, branch_k),
                        ),
                    )
                # Fig. 3 duplicates the continuation into both branches.
                return backend.if_(
                    test,
                    self.spec(expr.then, env, k),
                    self.spec(expr.alt, env, k),
                )

            return self.spec(expr.test, env, emit_dif)

        if isinstance(expr, Prim):
            spec_ = PRIMITIVES.get(expr.op)
            if spec_ is None:
                raise SpecializationError(f"unknown primitive {expr.op}")

            def apply_prim(values: list[Value]) -> Any:
                args = []
                for v in values:
                    if not isinstance(v, Static):
                        raise BindingTimeError(
                            f"dynamic argument to static primitive {expr.op}"
                        )
                    args.append(v.value)
                try:
                    return k(Static(spec_.apply(args)))
                except SchemeError as exc:
                    raise SpecializationError(
                        f"specialization-time error in ({expr.op} ...): {exc}"
                    ) from exc

            return self._spec_list(list(expr.args), env, apply_prim)

        if isinstance(expr, DPrim):
            def emit_prim(values: list[Value]) -> Any:
                args = [self.coerce_trivial(v) for v in values]
                serious = backend.prim(expr.op, args)
                return self._insert_let(serious, k)

            return self._spec_list(list(expr.args), env, emit_prim)

        if isinstance(expr, DLam):
            self._charge()
            fresh = tuple(self.gensym.fresh(p) for p in expr.params)
            inner_env = dict(env)
            for p, f in zip(expr.params, fresh):
                inner_env[p] = Dynamic(backend.var(f))
            body = self.spec(expr.body, inner_env, _TailCont(self))
            return k(Dynamic(backend.lam(fresh, body)))

        if isinstance(expr, App):
            def apply_static(values: list[Value]) -> Any:
                fn = values[0]
                args = values[1:]
                if isinstance(fn, Static) and isinstance(fn.value, SpecClosure):
                    clo = fn.value
                    if len(args) != len(clo.params):
                        raise SpecializationError(
                            f"{clo.name}: arity mismatch during unfolding"
                        )
                    inner = dict(clo.env)
                    inner.update(zip(clo.params, args))
                    # The continuation runs inside this call (CPS), so
                    # stack depth tracks unfold nesting exactly.
                    self._unfold_stack.append(clo.name)
                    if len(self._unfold_stack) > self.max_unfold_depth:
                        raise BudgetExceeded(
                            "max_unfold_depth",
                            self.max_unfold_depth,
                            cycle=self._repeating_cycle(),
                        )
                    try:
                        return self.spec(clo.body, inner, k)
                    finally:
                        self._unfold_stack.pop()
                if isinstance(fn, Static) and isinstance(
                    fn.value, (PrimSpec, PrimProcedure)
                ):
                    spec_ = (
                        fn.value.spec
                        if isinstance(fn.value, PrimProcedure)
                        else fn.value
                    )
                    if spec_.pure and all(
                        isinstance(a, Static) for a in args
                    ):
                        try:
                            return k(
                                Static(spec_.apply([a.value for a in args]))
                            )
                        except SchemeError as exc:
                            raise SpecializationError(
                                f"specialization-time error in"
                                f" ({spec_.name} ...): {exc}"
                            ) from exc
                    # Dynamic (or impure) primitive-value application:
                    # residualize as a primitive operation.
                    serious = self.backend.prim(
                        spec_.name, [self.coerce_trivial(a) for a in args]
                    )
                    return self._insert_let(serious, k)
                raise BindingTimeError(
                    "application of a non-closure in a static application"
                )

            return self._spec_list([expr.fn, *expr.args], env, apply_static)

        if isinstance(expr, DApp):
            def emit_app(values: list[Value]) -> Any:
                fn = self.coerce_trivial(values[0])
                args = [self.coerce_trivial(v) for v in values[1:]]
                serious = backend.call(fn, args)
                return self._insert_let(serious, k)

            return self._spec_list([expr.fn, *expr.args], env, emit_app)

        if isinstance(expr, MemoCall):
            callee = self.annotated.lookup(expr.name)

            def do_call(values: list[Value]) -> Any:
                residual_name, _ = self._memoize(callee, values)
                dyn_args = [
                    self.coerce_trivial(v)
                    for v, bt in zip(values, callee.bts)
                    if bt is D
                ]
                serious = backend.call(
                    backend.global_ref(residual_name), dyn_args
                )
                return self._insert_let(serious, k)

            return self._spec_list(list(expr.args), env, do_call)

        raise SpecializationError(
            f"specializer cannot handle {type(expr).__name__}"
        )

    # -- helpers ---------------------------------------------------------------------

    def _spec_list(
        self, exprs: list[Expr], env: dict[Symbol, Value], k: Callable[[list], Any]
    ) -> Any:
        """Specialize ``exprs`` left to right, collecting their values."""

        def go(i: int, acc: list[Value]) -> Any:
            if i == len(exprs):
                return k(acc)
            return self.spec(exprs[i], env, lambda v: go(i + 1, acc + [v]))

        return go(0, [])

    def _charge(self, n: int = 1) -> None:
        """Account for ``n`` serious residual constructs being emitted."""
        self.residual_size += n
        if self.residual_size > self.max_residual_size:
            raise BudgetExceeded(
                "max_residual_size",
                self.max_residual_size,
                cycle=self._repeating_cycle(),
            )

    def _repeating_cycle(self) -> tuple[str, ...]:
        """The repeating suffix of the unfold stack, innermost cycle."""
        stack = self._unfold_stack
        if not stack:
            # No unfold in flight: a memo-driven blow-up; name the
            # specialization point being drained.
            if self._draining is not None:
                return (str(self._draining),)
            return ()
        top = stack[-1]
        for i in range(len(stack) - 2, -1, -1):
            if stack[i] == top:
                return tuple(stack[i:][:32])
        return (top,)

    def _insert_let(self, serious: Any, k: Cont) -> Any:
        """Fig. 3's let-wrapping, with the tail-position refinement."""
        self._charge()
        if isinstance(k, _TailCont):
            return self.backend.tail(serious)
        fresh = self.gensym.fresh("t")
        return self.backend.let(
            fresh, serious, k(Dynamic(self.backend.var(fresh)))
        )

    def coerce_trivial(self, value: Value) -> Any:
        """The trivial residual code for ``value`` (lifting if static)."""
        if isinstance(value, Dynamic):
            return value.code
        return self._lift(value)

    def _lift(self, value: Value) -> Any:
        if isinstance(value, Dynamic):
            # (lift e) where e turned out dynamic: already code.
            return value.code
        v = value.value
        if isinstance(v, SpecClosure):
            raise BindingTimeError(
                "cannot lift a static closure to code; binding-time analysis"
                " should have made the lambda dynamic"
            )
        if isinstance(v, (PrimSpec, PrimProcedure)):
            name = v.spec.name if isinstance(v, PrimProcedure) else v.name
            return self.backend.global_ref(name)
        if not is_first_order(v):
            raise BindingTimeError(f"cannot lift value {v!r} to code")
        return self.backend.const(v)

    def _global_value(self, name: Symbol) -> Value:
        """The specialization-time meaning of a free variable."""
        if self.annotated.has(name):
            # A top-level function in operator position of an unfold call.
            # (Residual functions may be unfolded too: the annotator emits
            # MemoCall for the call sites that must memoize.)
            d = self.annotated.lookup(name)
            return Static(SpecClosure(d.params, d.body, {}, d.name.name))
        spec_ = PRIMITIVES.get(name)
        if spec_ is not None:
            return Static(PrimProcedure(spec_))
        raise SpecializationError(f"unbound variable at specialization: {name}")


def specialize(
    annotated: AnnotatedProgram,
    static_args: Sequence[Any],
    backend: Backend | None = None,
    max_residual_defs: int = 10_000,
    max_unfold_depth: int = 5_000,
    max_residual_size: int = 1_000_000,
) -> ResidualProgram:
    """Specialize ``annotated``'s goal to the given static arguments."""
    return Specializer(
        annotated,
        backend=backend,
        max_residual_defs=max_residual_defs,
        max_unfold_depth=max_unfold_depth,
        max_residual_size=max_residual_size,
    ).run(static_args)
