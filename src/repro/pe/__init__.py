"""The offline partial evaluation system (the PGG).

Subsystems:

* :mod:`repro.pe.values` — specialization-time values (static / dynamic);
* :mod:`repro.pe.backend` — the residual-code constructor interface (the
  "syntax constructors" that deforestation replaces, §5.4) and the source
  backend that builds residual CS programs;
* :mod:`repro.pe.specializer` — the continuation-based specializer of
  Fig. 3 with standard memoization [30, 60];
* :mod:`repro.pe.fig3` — a literal, expression-level transliteration of
  Fig. 3 used to validate the production engine;
* :mod:`repro.pe.bta` — binding-time analysis with a closure analysis;
* :mod:`repro.pe.check` — the independent congruence linter over the
  BTA's output (well-annotatedness re-checked after the fact);
* :mod:`repro.pe.annotate` — producing Annotated Core Scheme;
* :mod:`repro.pe.cogen` — generating extensions (compiled specializers).
"""

from repro.pe.annprog import (
    AnnDef,
    AnnotatedProgram,
    BindingTime,
    parse_signature,
)
from repro.pe.backend import Backend, ResidualProgram, SourceBackend
from repro.pe.bta import BTAResult, analyze, prepare
from repro.pe.check import (
    AnnotationViolation,
    CongruenceKind,
    CongruenceViolation,
    check_annotated,
    check_bta,
    verify_annotated,
)
from repro.pe.errors import BindingTimeError, PEError, SpecializationError
from repro.pe.limits import ensure_recursion_limit
from repro.pe.residual_cache import ResidualCache
from repro.pe.specializer import Specializer, specialize
from repro.pe.values import Dynamic, SpecClosure, Static

__all__ = [
    "AnnDef",
    "AnnotatedProgram",
    "AnnotationViolation",
    "Backend",
    "BindingTime",
    "BindingTimeError",
    "BTAResult",
    "CongruenceKind",
    "CongruenceViolation",
    "Dynamic",
    "PEError",
    "ResidualCache",
    "ResidualProgram",
    "SourceBackend",
    "SpecClosure",
    "Specializer",
    "SpecializationError",
    "Static",
    "analyze",
    "check_annotated",
    "check_bta",
    "ensure_recursion_limit",
    "parse_signature",
    "prepare",
    "specialize",
    "verify_annotated",
]
