"""Well-annotatedness linting for Annotated Core Scheme.

Offline partial evaluation comes with a static obligation: the division
must be *congruent* — no dynamic value may flow into a static position,
every static value landing in a code position must pass through ``lift``,
and only first-order values may be lifted (lambdas cannot).  The
binding-time analysis (:mod:`repro.pe.bta`) is supposed to deliver exactly
that discipline; this module re-checks its output *after the fact*, as an
independent, redundant linter, so that a BTA bug is caught here as a
structured :class:`AnnotationViolation` with an expression path instead of
surfacing as a mis-specialized program (or a crash in the specializer's
guts).

The linter re-derives binding times syntactically from the annotation
itself, on a three-point domain S / D / unknown:

* ``lift``, dynamic primitives/applications/conditionals/lambdas, and
  memoized calls are definitely dynamic;
* constants, lambdas, and static primitive applications are definitely
  static;
* variables take the binding time of their binder (top-level parameter
  binding times from the division, ``lambda^D`` parameters dynamic,
  ``let``-bound variables their right-hand side's); static ``lambda``
  parameters — whose binding times only a whole-program analysis knows —
  are *unknown*, so the linter reports only definite violations, never
  false positives.

Each position is checked against what the specializer will demand there:

* **value positions** (static primitive arguments, static conditional
  tests, static operators, ``lift`` bodies, memoized static arguments)
  reject definitely-dynamic expressions;
* **code positions** (dynamic primitive/application arguments, dynamic
  conditional tests and branches, ``lambda^D`` and residual-definition
  bodies, memoized dynamic arguments) reject definitely-static
  expressions — an unlifted constant or a static lambda there means the
  annotator failed to insert a coercion;
* **memoization points** must be closed under the division: the callee
  exists, is marked residual, has matching arity, and receives static
  values in its static parameter positions.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable

from repro.obs import traced
from repro.lang.ast import (
    App,
    Const,
    DApp,
    DIf,
    DLam,
    DPrim,
    Expr,
    If,
    Lam,
    Let,
    Lift,
    MemoCall,
    Prim,
    Var,
)
from repro.lang.prims import PRIMITIVES
from repro.pe.annprog import AnnotatedProgram, BindingTime
from repro.pe.errors import BindingTimeError
from repro.sexp.datum import Symbol

S = BindingTime.STATIC
D = BindingTime.DYNAMIC
_UNKNOWN = None   # binding time the linter cannot determine locally


class CongruenceKind(Enum):
    """The linter's violation classes."""

    STATIC_PRIM_DYNAMIC_ARG = "static-prim-dynamic-arg"
    STATIC_IF_DYNAMIC_TEST = "static-if-dynamic-test"
    STATIC_APP_DYNAMIC_OPERATOR = "static-app-dynamic-operator"
    LIFT_OF_DYNAMIC = "lift-of-dynamic"
    LIFT_OF_LAMBDA = "lift-of-lambda"
    UNLIFTED_STATIC = "unlifted-static-in-code-position"
    STATIC_LAMBDA_IN_CODE = "static-lambda-in-code-position"
    MEMO_UNKNOWN_FUNCTION = "memo-unknown-function"
    MEMO_ARITY_MISMATCH = "memo-arity-mismatch"
    MEMO_STATIC_ARG_DYNAMIC = "memo-static-arg-dynamic"
    MEMO_TO_UNFOLDED = "memo-to-unfolded-function"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.value


@dataclass(frozen=True, slots=True)
class CongruenceViolation:
    """One congruence finding, anchored to an expression path."""

    kind: CongruenceKind
    def_name: Symbol
    path: str                # e.g. "if.then/let.rhs/prim.arg0"
    message: str
    # Polyvariant context: the variant display name ("fn@SDr") and the
    # call-site paths whose abstract signatures created the variant, so a
    # finding in a clone can be traced back to the calls responsible.
    variant: str = ""
    call_sites: tuple[str, ...] = ()

    def __str__(self) -> str:
        name = self.variant or str(self.def_name)
        text = f"[{self.kind.value}] {name} at {self.path or '<body>'}: {self.message}"
        if self.call_sites:
            text += f" (variant from {', '.join(self.call_sites)})"
        return text


class AnnotationViolation(BindingTimeError):
    """An annotated program violates the congruence discipline."""

    def __init__(self, violations: tuple[CongruenceViolation, ...]):
        self.violations = violations
        summary = "; ".join(str(v) for v in violations)
        super().__init__(f"annotation is not congruent: {summary}")


@traced("pe.congruence")
def check_annotated(
    annotated: AnnotatedProgram, variants: dict | None = None
) -> list[CongruenceViolation]:
    """Lint ``annotated``; return every violation instead of raising.

    ``variants`` is the ``name -> VariantInfo`` map from a polyvariant
    :class:`~repro.pe.bta.BTAResult`; when given, violations carry the
    variant display name and originating call-site paths.
    """
    out: list[CongruenceViolation] = []
    for d in annotated.defs:
        env: dict[Symbol, BindingTime | None] = {
            p: bt for p, bt in zip(d.params, d.bts)
        }
        info = (variants or {}).get(d.name)
        checker = _Checker(
            annotated,
            d.name,
            out,
            variant=info.display if info is not None else "",
            call_sites=tuple(info.call_sites) if info is not None else (),
        )
        # A residual definition's body becomes residual code; an unfolded
        # definition's body is consumed at specialization time and may be
        # either.
        checker.check(d.body, env, _CODE if d.residual else _ANY, ())
    return out


def verify_annotated(
    annotated: AnnotatedProgram, variants: dict | None = None
) -> None:
    """Lint ``annotated``; raise :class:`AnnotationViolation` on findings."""
    violations = check_annotated(annotated, variants)
    if violations:
        raise AnnotationViolation(tuple(violations))


def check_bta(result) -> list[CongruenceViolation]:
    """Lint a :class:`~repro.pe.bta.BTAResult`'s annotated output."""
    return check_annotated(result.annotated, getattr(result, "variants", None))


def check_specialization_safety(result):
    """Run the specialization-safety analyses on a BTA result.

    Congruence (this module) says the annotation is *consistent*; the
    safety analyses (:mod:`repro.analysis`) say specializing under it
    *terminates with bounded output*.  Returns the
    :class:`~repro.analysis.AnalysisReport` — findings instead of
    exceptions, in the style of :func:`check_annotated`.
    """
    from repro.analysis import analyze_bta

    return analyze_bta(result)


def verify_specialization_safety(result) -> None:
    """Raise :class:`~repro.analysis.UnsafeProgramError` on findings
    (the ``forbid`` discipline, mirroring :func:`verify_annotated`)."""
    from repro.analysis import UnsafeProgramError

    report = check_specialization_safety(result)
    if not report.safe:
        raise UnsafeProgramError(report)


# Position disciplines.
_ANY = "any"        # no local requirement (e.g. unfold-call arguments)
_VALUE = "value"    # must be a specialization-time value: rejects definite D
_CODE = "code"      # must be residual code: rejects definite S


class _Checker:
    """One definition's linting pass."""

    def __init__(
        self,
        annotated: AnnotatedProgram,
        def_name: Symbol,
        out: list[CongruenceViolation],
        variant: str = "",
        call_sites: tuple[str, ...] = (),
    ):
        self.annotated = annotated
        self.def_name = def_name
        self.out = out
        self.variant = variant
        self.call_sites = call_sites

    def _report(
        self, kind: CongruenceKind, path: tuple[str, ...], message: str
    ) -> None:
        self.out.append(
            CongruenceViolation(
                kind,
                self.def_name,
                "/".join(path),
                message,
                variant=self.variant,
                call_sites=self.call_sites,
            )
        )

    def check(
        self,
        e: Expr,
        env: dict[Symbol, BindingTime | None],
        ctx: str,
        path: tuple[str, ...],
    ) -> BindingTime | None:
        """Check ``e`` against its position; return its binding time."""
        bt = self._dispatch(e, env, ctx, path)
        if ctx is _CODE and bt is S:
            if isinstance(e, (Lam, DLam)):
                # DLam never reports S; only a static lambda lands here.
                self._report(
                    CongruenceKind.STATIC_LAMBDA_IN_CODE, path,
                    "static lambda in a code position must be lambda^D",
                )
            else:
                self._report(
                    CongruenceKind.UNLIFTED_STATIC, path,
                    f"static {type(e).__name__} in a code position"
                    " lacks a lift",
                )
        return bt

    # -- per-node rules -------------------------------------------------------

    def _dispatch(
        self,
        e: Expr,
        env: dict[Symbol, BindingTime | None],
        ctx: str,
        path: tuple[str, ...],
    ) -> BindingTime | None:
        if isinstance(e, Const):
            return S

        if isinstance(e, Var):
            if e.name in env:
                return env[e.name]
            # Free names: top-level functions and primitives are static
            # specialization-time values; anything else is unknown.
            if self.annotated.has(e.name) or e.name in PRIMITIVES:
                return S
            return _UNKNOWN

        if isinstance(e, Lam):
            inner = {**env, **{p: _UNKNOWN for p in e.params}}
            self.check(e.body, inner, _ANY, path + ("lam.body",))
            return S

        if isinstance(e, DLam):
            inner = {**env, **{p: D for p in e.params}}
            self.check(e.body, inner, _CODE, path + ("dlam.body",))
            return D

        if isinstance(e, Lift):
            sub = path + ("lift",)
            inner_bt = self.check(e.expr, env, _VALUE, sub)
            if inner_bt is D:
                self._report(
                    CongruenceKind.LIFT_OF_DYNAMIC, sub,
                    "lift applied to an already-dynamic expression",
                )
            if isinstance(e.expr, (Lam, DLam)):
                self._report(
                    CongruenceKind.LIFT_OF_LAMBDA, sub,
                    "lift applied to a lambda; only first-order values"
                    " can be lifted",
                )
            return D

        if isinstance(e, Let):
            rhs_bt = self.check(e.rhs, env, _ANY, path + ("let.rhs",))
            inner = {**env, e.var: rhs_bt}
            return self.check(e.body, inner, ctx, path + ("let.body",))

        if isinstance(e, If):
            test_bt = self.check(e.test, env, _VALUE, path + ("if.test",))
            if test_bt is D:
                self._report(
                    CongruenceKind.STATIC_IF_DYNAMIC_TEST,
                    path + ("if.test",),
                    "static conditional tests a dynamic value"
                    " (should be if^D)",
                )
            then_bt = self.check(e.then, env, ctx, path + ("if.then",))
            alt_bt = self.check(e.alt, env, ctx, path + ("if.alt",))
            if then_bt is alt_bt:
                return then_bt
            return _UNKNOWN

        if isinstance(e, DIf):
            self.check(e.test, env, _CODE, path + ("dif.test",))
            self.check(e.then, env, _CODE, path + ("dif.then",))
            self.check(e.alt, env, _CODE, path + ("dif.alt",))
            return D

        if isinstance(e, Prim):
            for i, a in enumerate(e.args):
                sub = path + (f"prim.arg{i}",)
                if self.check(a, env, _VALUE, sub) is D:
                    self._report(
                        CongruenceKind.STATIC_PRIM_DYNAMIC_ARG, sub,
                        f"dynamic argument to static primitive {e.op}",
                    )
            return S

        if isinstance(e, DPrim):
            for i, a in enumerate(e.args):
                self.check(a, env, _CODE, path + (f"dprim.arg{i}",))
            return D

        if isinstance(e, App):
            fn_bt = self.check(e.fn, env, _VALUE, path + ("app.fn",))
            if fn_bt is D:
                self._report(
                    CongruenceKind.STATIC_APP_DYNAMIC_OPERATOR,
                    path + ("app.fn",),
                    "static application of a dynamic operator"
                    " (should be @^D)",
                )
            for i, a in enumerate(e.args):
                self.check(a, env, _ANY, path + (f"app.arg{i}",))
            # The unfolded body's binding time needs whole-program
            # knowledge; stay agnostic.
            return _UNKNOWN

        if isinstance(e, DApp):
            self.check(e.fn, env, _CODE, path + ("dapp.fn",))
            for i, a in enumerate(e.args):
                self.check(a, env, _CODE, path + (f"dapp.arg{i}",))
            return D

        if isinstance(e, MemoCall):
            return self._check_memo(e, env, path)

        # Unknown node type: nothing to say about congruence.
        for i, c in enumerate(e.children()):
            self.check(c, env, _ANY, path + (f"child{i}",))
        return _UNKNOWN

    def _check_memo(
        self,
        e: MemoCall,
        env: dict[Symbol, BindingTime | None],
        path: tuple[str, ...],
    ) -> BindingTime | None:
        sub = path + (f"memo-call:{e.name}",)
        if not self.annotated.has(e.name):
            self._report(
                CongruenceKind.MEMO_UNKNOWN_FUNCTION, sub,
                f"memoized call to undefined function {e.name}",
            )
            for i, a in enumerate(e.args):
                self.check(a, env, _ANY, sub + (f"arg{i}",))
            return D
        callee = self.annotated.lookup(e.name)
        if not callee.residual:
            self._report(
                CongruenceKind.MEMO_TO_UNFOLDED, sub,
                f"{e.name} is not a memoization point (not residual)",
            )
        if len(e.args) != len(callee.params):
            self._report(
                CongruenceKind.MEMO_ARITY_MISMATCH, sub,
                f"{e.name} takes {len(callee.params)} argument(s),"
                f" call passes {len(e.args)}",
            )
            for i, a in enumerate(e.args):
                self.check(a, env, _ANY, sub + (f"arg{i}",))
            return D
        for i, (a, bt) in enumerate(zip(e.args, callee.bts)):
            arg_path = sub + (f"arg{i}",)
            if bt is S:
                if self.check(a, env, _VALUE, arg_path) is D:
                    self._report(
                        CongruenceKind.MEMO_STATIC_ARG_DYNAMIC, arg_path,
                        f"dynamic value for static parameter"
                        f" {callee.params[i]} of {e.name}: the division is"
                        " not closed at this memoization point",
                    )
            else:
                self.check(a, env, _CODE, arg_path)
        return D


def lint_signature(
    annotated: AnnotatedProgram,
) -> Iterable[str]:  # pragma: no cover - convenience for interactive use
    """Human-readable one-liners for each definition's division."""
    for d in annotated.defs:
        bts = "".join(bt.value for bt in d.bts)
        marker = "memoized" if d.residual else "unfolded"
        yield f"{d.name} [{bts}] ({marker})"
