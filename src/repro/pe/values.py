"""Specialization-time values.

"During ordinary specialization there are two kinds of objects: static
values and pieces of code." (§6.4)

* :class:`Static` wraps an ordinary run-time value available at
  specialization time (a number, a pair, a specialization-time closure).
* :class:`Dynamic` wraps a backend handle for a piece of *trivial* residual
  code (a variable or literal) — serious residual code is always
  let-inserted before it reaches an environment, so dynamic environment
  entries are trivial by construction (the specializer's ANF discipline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.lang.ast import Expr
from repro.runtime.values import NIL, Pair, Unspecified
from repro.sexp.datum import Char, Symbol


@dataclass(frozen=True, slots=True)
class Static:
    """A value known at specialization time."""

    value: Any


@dataclass(frozen=True, slots=True)
class Dynamic:
    """A piece of trivial residual code (backend handle)."""

    code: Any


class SpecClosure:
    """A static closure: a lambda closed over a specialization environment.

    Applying it at specialization time unfolds its body.
    """

    __slots__ = ("params", "body", "env", "name")

    def __init__(
        self,
        params: tuple[Symbol, ...],
        body: Expr,
        env: dict,
        name: str = "lambda",
    ):
        self.params = params
        self.body = body
        self.env = env
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"#<spec-closure {self.name}/{len(self.params)}>"


# Static closures answer #t to procedure? during specialization.
from repro.lang.prims import register_procedure_type  # noqa: E402

register_procedure_type(SpecClosure)


def is_first_order(value: Any) -> bool:
    """True if ``value`` can be lifted to a residual constant.

    Closures cannot be lifted (§3's lift coerces *first-order* values);
    binding-time analysis must have made such lambdas dynamic instead.
    """
    if isinstance(value, (bool, int, float, str, Char, Symbol, Unspecified)):
        return True
    if value is NIL:
        return True
    if isinstance(value, Pair):
        return is_first_order(value.car) and is_first_order(value.cdr)
    return False


def freeze_static(value: Any) -> Any:
    """A fully hashable, canonical key for a static value.

    Equal static values (in the sense of ``equal?`` extended to Python
    containers) freeze to equal keys; unequal values freeze to unequal
    keys (injective up to equality).  Cyclic structures raise
    :class:`~repro.pe.errors.SpecializationError` instead of recursing
    forever — a memo key for an infinite value would be meaningless.
    """
    return _freeze(value, None, set())


def _cycle(value: Any) -> Any:
    from repro.pe.errors import SpecializationError

    raise SpecializationError(
        "cyclic static value cannot be frozen into a memoization key"
        f" (cycle through a {type(value).__name__})"
    )


def _freeze(value: Any, cache: "FreezeCache | None", seen: set[int]) -> Any:
    if isinstance(value, Pair):
        if cache is not None:
            hit = cache._by_id.get(id(value))
            if hit is not None:
                return hit
        items = []
        spine: list[int] = []
        node: Any = value
        while isinstance(node, Pair):
            nid = id(node)
            if nid in seen:
                _cycle(node)
            seen.add(nid)
            spine.append(nid)
            items.append(_freeze(node.car, cache, seen))
            node = node.cdr
        tail = _freeze(node, cache, seen)
        for nid in spine:
            seen.discard(nid)
        result = ("list", tuple(items), tail)
        if cache is not None:
            cache._by_id[id(value)] = result
            cache._keep.append(value)
        return result
    if value is NIL:
        return ("nil",)
    if isinstance(value, Unspecified):
        return ("unspecified",)
    if isinstance(value, SpecClosure):
        # Static closures in memo keys: identity-based.  Two different
        # closure instances specialize separately.
        return ("closure", id(value))
    if isinstance(value, (list, tuple)):
        tag = "pylist" if isinstance(value, list) else "pytuple"
        if id(value) in seen:
            _cycle(value)
        seen.add(id(value))
        result = (tag, tuple(_freeze(v, cache, seen) for v in value))
        seen.discard(id(value))
        return result
    if isinstance(value, dict):
        if id(value) in seen:
            _cycle(value)
        seen.add(id(value))
        entries = tuple(
            sorted(
                (
                    (_freeze(k, cache, seen), _freeze(v, cache, seen))
                    for k, v in value.items()
                ),
                key=repr,
            )
        )
        seen.discard(id(value))
        return ("dict", entries)
    if isinstance(value, (set, frozenset)):
        return ("set", tuple(sorted((_freeze(v, cache, seen) for v in value), key=repr)))
    if isinstance(value, (bytes, bytearray)):
        return ("bytes", bytes(value))
    try:
        hash(value)
    except TypeError:
        # Unknown unhashable object: identity-tag it.  Equal-but-distinct
        # instances memoize separately — sound (over-specialization), and
        # far better than a bare TypeError deep inside ``dict.get``.
        return ("opaque", type(value).__name__, id(value))
    return (type(value).__name__, value)


class FreezeCache:
    """Identity-memoized :func:`freeze_static`.

    Static structures (an interpreter's program, say) are widely shared
    and re-frozen at every memoization point; pairs are immutable in this
    system, so caching by identity is sound.  The cache holds references
    to the pairs it has seen, so ids cannot be recycled underneath it.

    Concurrency: the cache is safe to share between threads without a
    lock.  Its only compound operation is a check-then-set on ``_by_id``
    whose value is a pure function of the (immutable) pair, so a race
    merely recomputes the same key; individual dict/list operations are
    atomic under the GIL.
    """

    __slots__ = ("_by_id", "_keep")

    def __init__(self) -> None:
        self._by_id: dict[int, Any] = {}
        self._keep: list = []

    def freeze(self, value: Any) -> Any:
        return _freeze(value, self, set())
