"""Specialization-time values.

"During ordinary specialization there are two kinds of objects: static
values and pieces of code." (§6.4)

* :class:`Static` wraps an ordinary run-time value available at
  specialization time (a number, a pair, a specialization-time closure).
* :class:`Dynamic` wraps a backend handle for a piece of *trivial* residual
  code (a variable or literal) — serious residual code is always
  let-inserted before it reaches an environment, so dynamic environment
  entries are trivial by construction (the specializer's ANF discipline).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.lang.ast import Expr
from repro.runtime.values import NIL, Pair, Unspecified
from repro.sexp.datum import Char, Symbol


@dataclass(frozen=True, slots=True)
class Static:
    """A value known at specialization time."""

    value: Any


@dataclass(frozen=True, slots=True)
class Dynamic:
    """A piece of trivial residual code (backend handle)."""

    code: Any


class SpecClosure:
    """A static closure: a lambda closed over a specialization environment.

    Applying it at specialization time unfolds its body.
    """

    __slots__ = ("params", "body", "env", "name")

    def __init__(
        self,
        params: tuple[Symbol, ...],
        body: Expr,
        env: dict,
        name: str = "lambda",
    ):
        self.params = params
        self.body = body
        self.env = env
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"#<spec-closure {self.name}/{len(self.params)}>"


# Static closures answer #t to procedure? during specialization.
from repro.lang.prims import register_procedure_type  # noqa: E402

register_procedure_type(SpecClosure)


def is_first_order(value: Any) -> bool:
    """True if ``value`` can be lifted to a residual constant.

    Closures cannot be lifted (§3's lift coerces *first-order* values);
    binding-time analysis must have made such lambdas dynamic instead.
    """
    if isinstance(value, (bool, int, float, str, Char, Symbol, Unspecified)):
        return True
    if value is NIL:
        return True
    if isinstance(value, Pair):
        return is_first_order(value.car) and is_first_order(value.cdr)
    return False


def freeze_static(value: Any) -> Any:
    """A hashable key for a static value (for the memoization table)."""
    if isinstance(value, Pair):
        items = []
        node: Any = value
        while isinstance(node, Pair):
            items.append(freeze_static(node.car))
            node = node.cdr
        return ("list", tuple(items), freeze_static(node))
    if value is NIL:
        return ("nil",)
    if isinstance(value, Unspecified):
        return ("unspecified",)
    if isinstance(value, SpecClosure):
        # Static closures in memo keys: identity-based.  Two different
        # closure instances specialize separately.
        return ("closure", id(value))
    return (type(value).__name__, value)


class FreezeCache:
    """Identity-memoized :func:`freeze_static`.

    Static structures (an interpreter's program, say) are widely shared
    and re-frozen at every memoization point; pairs are immutable in this
    system, so caching by identity is sound.  The cache holds references
    to the pairs it has seen, so ids cannot be recycled underneath it.
    """

    __slots__ = ("_by_id", "_keep")

    def __init__(self) -> None:
        self._by_id: dict[int, Any] = {}
        self._keep: list = []

    def freeze(self, value: Any) -> Any:
        if isinstance(value, Pair):
            key = id(value)
            hit = self._by_id.get(key)
            if hit is None:
                items = []
                node: Any = value
                while isinstance(node, Pair):
                    items.append(self.freeze(node.car))
                    node = node.cdr
                hit = ("list", tuple(items), self.freeze(node))
                self._by_id[key] = hit
                self._keep.append(value)
            return hit
        return freeze_static(value)
