"""Annotated programs: what binding-time analysis hands the specializer."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Tuple

from repro.lang.ast import Expr
from repro.sexp.datum import Symbol


class BindingTime(Enum):
    """The two-point binding-time lattice, S below D."""

    STATIC = "S"
    DYNAMIC = "D"

    def __or__(self, other: "BindingTime") -> "BindingTime":
        if self is BindingTime.DYNAMIC or other is BindingTime.DYNAMIC:
            return BindingTime.DYNAMIC
        return BindingTime.STATIC

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return self.value


S = BindingTime.STATIC
D = BindingTime.DYNAMIC


def parse_signature(text: str) -> tuple[BindingTime, ...]:
    """Parse a signature like ``"SD"`` or ``"s d"`` into binding times."""
    bts = []
    for ch in text.replace(" ", "").upper():
        if ch == "S":
            bts.append(S)
        elif ch == "D":
            bts.append(D)
        else:
            raise ValueError(f"bad binding-time character {ch!r}")
    return tuple(bts)


@dataclass(frozen=True, slots=True)
class AnnDef:
    """An annotated top-level definition.

    ``bts`` gives the binding time of each parameter.  ``residual`` marks
    definitions whose calls are memoization points (specialization
    points); calls to non-residual definitions are unfolded.
    """

    name: Symbol
    params: Tuple[Symbol, ...]
    bts: Tuple[BindingTime, ...]
    body: Expr
    residual: bool

    def static_params(self) -> tuple[Symbol, ...]:
        return tuple(p for p, bt in zip(self.params, self.bts) if bt is S)

    def dynamic_params(self) -> tuple[Symbol, ...]:
        return tuple(p for p, bt in zip(self.params, self.bts) if bt is D)


@dataclass(frozen=True, slots=True)
class AnnotatedProgram:
    """A whole binding-time-annotated program."""

    defs: Tuple[AnnDef, ...]
    goal: Symbol
    _index: dict = field(default=None, compare=False, repr=False, hash=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_index", {d.name: d for d in self.defs})

    def lookup(self, name: Symbol) -> AnnDef:
        return self._index[name]

    def has(self, name: Symbol) -> bool:
        return name in self._index

    def goal_def(self) -> AnnDef:
        return self._index[self.goal]
