"""A writer (printer) for s-expressions: the inverse of the reader."""

from __future__ import annotations

from typing import Any

from repro.sexp.datum import Char, Symbol
from repro.sexp.reader import _CHAR_NAMES


def write(datum: Any) -> str:
    """Render ``datum`` so that ``read(write(d)) == d``."""
    chunks: list[str] = []
    _write_into(datum, chunks)
    return "".join(chunks)


def _write_into(datum: Any, out: list[str]) -> None:
    if isinstance(datum, bool):
        out.append("#t" if datum else "#f")
    elif isinstance(datum, Symbol):
        out.append(datum.name)
    elif isinstance(datum, int):
        out.append(repr(datum))
    elif isinstance(datum, float):
        out.append(repr(datum))
    elif isinstance(datum, str):
        out.append(_write_string(datum))
    elif isinstance(datum, Char):
        out.append(_write_char(datum))
    elif isinstance(datum, (list, tuple)):
        out.append("(")
        for i, item in enumerate(datum):
            if i:
                out.append(" ")
            _write_into(item, out)
        out.append(")")
    else:
        raise TypeError(f"cannot write datum of type {type(datum).__name__}")


def _write_string(text: str) -> str:
    body = text.replace("\\", "\\\\").replace('"', '\\"')
    body = body.replace("\n", "\\n").replace("\t", "\\t")
    return f'"{body}"'


def _write_char(ch: Char) -> str:
    name = _CHAR_NAMES.get(ch.value)
    if name is not None:
        return f"#\\{name}"
    return f"#\\{ch.value}"
