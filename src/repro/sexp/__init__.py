"""S-expression substrate: symbols, reading, and writing.

Scheme data is represented with plain Python values:

* symbols       -- interned :class:`Symbol` objects
* numbers       -- ``int`` / ``float``
* booleans      -- ``bool``  (checked *before* ``int`` everywhere)
* strings       -- ``str``
* characters    -- :class:`Char`
* proper lists  -- Python ``list``  (the reader never produces dotted pairs
                   at the datum level; ``cons`` pairs only exist as run-time
                   values inside the interpreter and VM)
* empty list    -- the empty Python ``list``

This keeps the front end simple and hashable-enough for memoization while
the run-time value model (:mod:`repro.interp.values`) supports real mutable
pairs.
"""

from repro.sexp.datum import Char, Symbol, is_self_evaluating, sym
from repro.sexp.reader import ReaderError, read, read_all
from repro.sexp.writer import write

__all__ = [
    "Char",
    "ReaderError",
    "Symbol",
    "is_self_evaluating",
    "read",
    "read_all",
    "sym",
    "write",
]
