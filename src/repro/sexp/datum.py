"""Datum model: interned symbols and characters."""

from __future__ import annotations

from typing import Any


class Symbol:
    """An interned Scheme symbol.

    Symbols compare (and hash) by identity, which the interning in
    :func:`sym` makes equivalent to comparing by name.  Use :func:`sym` to
    obtain instances; the constructor is not meant to be called directly
    except by the intern table.
    """

    __slots__ = ("name",)
    _table: dict[str, "Symbol"] = {}

    def __init__(self, name: str):
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Symbol({self.name!r})"

    def __str__(self) -> str:
        return self.name

    # Identity-based equality/hash are inherited from object; interning
    # makes them agree with name equality.


def sym(name: str) -> Symbol:
    """Return the unique :class:`Symbol` with the given name."""
    table = Symbol._table
    s = table.get(name)
    if s is None:
        s = Symbol(name)
        table[name] = s
    return s


class Char:
    """A Scheme character, e.g. ``#\\a`` or ``#\\newline``."""

    __slots__ = ("value",)

    def __init__(self, value: str):
        if len(value) != 1:
            raise ValueError(f"Char needs a single character, got {value!r}")
        self.value = value

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, Char) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("char", self.value))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Char({self.value!r})"


def is_self_evaluating(datum: Any) -> bool:
    """True for data that evaluate to themselves in Scheme source."""
    if isinstance(datum, bool):
        return True
    return isinstance(datum, (int, float, str, Char))
