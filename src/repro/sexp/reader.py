"""A reader (parser) for s-expressions.

Supports the subset of R4RS datum syntax our Scheme front end needs:
proper lists, symbols, exact integers, floats, strings, booleans,
characters, ``quote``/``quasiquote``/``unquote`` shorthands, and ``;``
comments.  Dotted pairs are rejected — the language front end works on
proper lists only.
"""

from __future__ import annotations

from typing import Any

from repro.sexp.datum import Char, Symbol, sym

_DELIMITERS = set("()[]\"; \t\n\r")

_NAMED_CHARS = {
    "space": " ",
    "newline": "\n",
    "tab": "\t",
    "nul": "\0",
    "return": "\r",
}

_CHAR_NAMES = {v: k for k, v in _NAMED_CHARS.items()}


class ReaderError(ValueError):
    """Raised on malformed input, with a position for diagnostics."""

    def __init__(self, message: str, position: int):
        super().__init__(f"{message} (at offset {position})")
        self.position = position


class _Reader:
    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    # -- low-level scanning ------------------------------------------------

    def _peek(self) -> str:
        if self.pos < len(self.text):
            return self.text[self.pos]
        return ""

    def _next(self) -> str:
        ch = self._peek()
        self.pos += 1
        return ch

    def _skip_atmosphere(self) -> None:
        text = self.text
        while self.pos < len(text):
            ch = text[self.pos]
            if ch in " \t\n\r\f":
                self.pos += 1
            elif ch == ";":
                while self.pos < len(text) and text[self.pos] != "\n":
                    self.pos += 1
            elif ch == "#" and text.startswith("#|", self.pos):
                depth = 1
                self.pos += 2
                while self.pos < len(text) and depth:
                    if text.startswith("#|", self.pos):
                        depth += 1
                        self.pos += 2
                    elif text.startswith("|#", self.pos):
                        depth -= 1
                        self.pos += 2
                    else:
                        self.pos += 1
                if depth:
                    raise ReaderError("unterminated block comment", self.pos)
            else:
                return

    # -- datum parsing -----------------------------------------------------

    def read(self) -> Any:
        self._skip_atmosphere()
        if self.pos >= len(self.text):
            raise ReaderError("unexpected end of input", self.pos)
        ch = self._peek()
        if ch == "(" or ch == "[":
            return self._read_list(")" if ch == "(" else "]")
        if ch == ")" or ch == "]":
            raise ReaderError("unexpected closing parenthesis", self.pos)
        if ch == "'":
            self._next()
            return [sym("quote"), self.read()]
        if ch == "`":
            self._next()
            return [sym("quasiquote"), self.read()]
        if ch == ",":
            self._next()
            if self._peek() == "@":
                self._next()
                return [sym("unquote-splicing"), self.read()]
            return [sym("unquote"), self.read()]
        if ch == '"':
            return self._read_string()
        if ch == "#":
            return self._read_hash()
        return self._read_atom()

    def _read_list(self, closer: str) -> list:
        start = self.pos
        self._next()  # opening paren
        items: list[Any] = []
        while True:
            self._skip_atmosphere()
            if self.pos >= len(self.text):
                raise ReaderError("unterminated list", start)
            ch = self._peek()
            if ch in ")]":
                if ch != closer:
                    raise ReaderError("mismatched bracket", self.pos)
                self._next()
                return items
            if ch == "." and self._is_lone_dot():
                raise ReaderError("dotted pairs are not supported", self.pos)
            items.append(self.read())

    def _is_lone_dot(self) -> bool:
        nxt = self.pos + 1
        return nxt >= len(self.text) or self.text[nxt] in _DELIMITERS

    def _read_string(self) -> str:
        start = self.pos
        self._next()  # opening quote
        chunks: list[str] = []
        while True:
            if self.pos >= len(self.text):
                raise ReaderError("unterminated string", start)
            ch = self._next()
            if ch == '"':
                return "".join(chunks)
            if ch == "\\":
                esc = self._next()
                if esc == "n":
                    chunks.append("\n")
                elif esc == "t":
                    chunks.append("\t")
                elif esc in ('"', "\\"):
                    chunks.append(esc)
                else:
                    raise ReaderError(f"bad string escape \\{esc}", self.pos)
            else:
                chunks.append(ch)

    def _read_hash(self) -> Any:
        start = self.pos
        self._next()  # '#'
        ch = self._next()
        if ch == "t":
            return True
        if ch == "f":
            return False
        if ch == "\\":
            return self._read_char()
        raise ReaderError(f"unsupported # syntax: #{ch}", start)

    def _read_char(self) -> Char:
        start = self.pos
        if self.pos >= len(self.text):
            raise ReaderError("unterminated character", start)
        first = self._next()
        name = first
        while self._peek() and self._peek() not in _DELIMITERS:
            name += self._next()
        if len(name) == 1:
            return Char(name)
        lowered = name.lower()
        if lowered in _NAMED_CHARS:
            return Char(_NAMED_CHARS[lowered])
        raise ReaderError(f"unknown character name #\\{name}", start)

    def _read_atom(self) -> Any:
        start = self.pos
        while self._peek() and self._peek() not in _DELIMITERS:
            self._next()
        token = self.text[start : self.pos]
        if not token:
            raise ReaderError("empty token", start)
        return _atom_from_token(token)


def _atom_from_token(token: str) -> Any:
    try:
        return int(token)
    except ValueError:
        pass
    try:
        value = float(token)
    except ValueError:
        return sym(token)
    # '.' alone and '+'/'-' parse as symbols, not floats.
    if token in ("+", "-", "...", "."):
        return sym(token)
    return value


def read(text: str) -> Any:
    """Read a single datum from ``text``; trailing input is an error."""
    reader = _Reader(text)
    datum = reader.read()
    reader._skip_atmosphere()
    if reader.pos < len(text):
        raise ReaderError("trailing input after datum", reader.pos)
    return datum


def read_all(text: str) -> list:
    """Read every datum in ``text``, returning them as a list."""
    reader = _Reader(text)
    data: list[Any] = []
    while True:
        reader._skip_atmosphere()
        if reader.pos >= len(text):
            return data
        data.append(reader.read())


_ = Symbol  # re-exported type for annotations in client modules
