"""Tests for the ANF grammar checker and converter."""

import pytest
from hypothesis import given

from repro.anf import anf_convert, anf_convert_program, check_anf, is_anf
from repro.anf.grammar import ANFViolation
from repro.interp import Interpreter, run_program
from repro.lang import parse_expr, parse_program
from tests.strategies import arith_exprs, higher_order_exprs, list_exprs


class TestGrammar:
    def test_trivial_values_are_anf(self):
        for src in ("1", "x", "(lambda (x) x)", "'(a b)"):
            assert is_anf(parse_expr(src))

    def test_let_of_call_is_anf(self):
        assert is_anf(parse_expr("(let ((x (f 1 2))) x)"))

    def test_let_of_prim_is_anf(self):
        assert is_anf(parse_expr("(let ((x (+ 1 2))) x)"))

    def test_tail_call_is_anf(self):
        assert is_anf(parse_expr("(f 1 2)"))

    def test_if_with_trivial_test_is_anf(self):
        assert is_anf(parse_expr("(if x (f x) (g x))"))

    def test_nested_call_not_anf(self):
        assert not is_anf(parse_expr("(f (g 1))"))

    def test_serious_if_test_not_anf(self):
        assert not is_anf(parse_expr("(if (f 1) 2 3)"))

    def test_serious_let_rhs_chain_not_anf(self):
        assert not is_anf(parse_expr("(let ((x (let ((y 1)) y))) x)"))

    def test_prim_with_serious_arg_not_anf(self):
        assert not is_anf(parse_expr("(+ 1 (f 2))"))

    def test_lambda_bodies_checked(self):
        assert not is_anf(parse_expr("(lambda (x) (f (g x)))"))

    def test_check_raises_with_offender(self):
        with pytest.raises(ANFViolation):
            check_anf(parse_expr("(f (g 1))"))


class TestConversion:
    def test_nested_calls_named(self):
        out = anf_convert(parse_expr("(f (g 1) (h 2))"))
        assert is_anf(out)

    def test_deeply_nested(self):
        out = anf_convert(parse_expr("(+ (* (- 1 2) 3) (if (< 4 5) (f 6) 7))"))
        assert is_anf(out)

    def test_if_in_argument_position(self):
        src = "(+ 1 (if (< 2 3) 10 20))"
        out = anf_convert(parse_expr(src))
        assert is_anf(out)
        assert Interpreter().eval(out, None) == 11

    def test_conversion_idempotent_on_anf(self):
        e = parse_expr("(let ((x (+ 1 2))) (f x))")
        assert anf_convert(e) == e

    def test_program_conversion(self):
        p = parse_program(
            "(define (f x) (+ (* x x) (* 2 x)))"
        )
        out = anf_convert_program(p)
        from repro.anf import is_anf_program

        assert is_anf_program(out)
        assert run_program(out, [5]) == run_program(p, [5]) == 35

    @given(arith_exprs())
    def test_arith_preserved(self, source):
        e = parse_expr(source)
        out = anf_convert(e)
        assert is_anf(out)
        interp = Interpreter()
        assert interp.eval(out, None) == interp.eval(e, None)

    @given(list_exprs())
    def test_lists_preserved(self, source):
        from repro.runtime.values import scheme_equal

        e = parse_expr(source)
        out = anf_convert(e)
        assert is_anf(out)
        interp = Interpreter()
        assert scheme_equal(interp.eval(out, None), interp.eval(e, None))

    @given(higher_order_exprs())
    def test_higher_order_preserved(self, source):
        e = parse_expr(source)
        out = anf_convert(e)
        assert is_anf(out)
        interp = Interpreter()
        assert interp.eval(out, None) == interp.eval(e, None)

    def test_hoisting_does_not_capture(self):
        # Regression: a let in argument position is hoisted over the
        # operator; with duplicate names this used to capture the
        # lambda's free variable.
        src = "(let ((d 1)) ((lambda (a) (+ 0 d)) (let ((d 0)) 0)))"
        e = parse_expr(src)
        out = anf_convert(e)
        assert is_anf(out)
        interp = Interpreter()
        assert interp.eval(out, None) == interp.eval(e, None) == 1

    def test_shadowed_names_renamed_before_conversion(self):
        src = "(let ((x 1)) (let ((x (+ x 1))) ((lambda (x) (* x 10)) x)))"
        e = parse_expr(src)
        out = anf_convert(e)
        assert is_anf(out)
        assert Interpreter().eval(out, None) == 20

    def test_evaluation_order_preserved(self, capsys):
        src = '(+ (let ((a (begin (display "1") 1))) a) (begin (display "2") 2))'
        e = parse_expr(src)
        Interpreter().eval(anf_convert(e), None)
        assert capsys.readouterr().out == "12"
